// Deterministic fault injection for execution services.
//
// The paper's OSG runs fail in ways the campus cluster never does:
// preemption kills attempts part-way, opportunistic slots vanish, and
// per-attempt software installs stretch or stall (§III, §VI). The
// stochastic platform models reproduce those *statistically*; this module
// reproduces them *on demand*. FaultyService decorates any
// ExecutionService (LocalService or SimService alike) and applies a
// scripted FaultPlan — fail attempt k of job j, hang it forever, delay its
// completion, misreport its node — plus a seeded-random chaos mode for
// soak runs. Everything is deterministic: the same plan (and seed) against
// the same workflow produces the same attempt stream, which is what lets
// the chaos suite assert byte-identical jobstate logs across runs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "wms/exec_service.hpp"

namespace pga::wms {

/// What to do to a matched attempt.
enum class FaultAction {
  kFail,         ///< report the attempt failed without running it
  kHang,         ///< swallow the attempt; it never completes
  kDelay,        ///< run it, then stretch its completion by delay_seconds
  kCorruptNode,  ///< run it, but misreport the execution node
};

/// One scripted directive. Matches a (job, attempt-index) pair; attempt
/// indices are 1-based, and attempt == 0 matches every attempt of the job.
struct FaultDirective {
  std::string job_id;
  int attempt = 0;
  FaultAction action = FaultAction::kFail;
  std::string error = "injected fault";  ///< reported error for kFail
  double delay_seconds = 0;              ///< stretch for kDelay
  std::string node;  ///< reported node for kFail / replacement for kCorruptNode
};

/// Seeded-random fault mode for soak/chaos runs. Probabilities are
/// evaluated per submission, in submission order, from one common::Rng —
/// so a fixed seed plus a deterministic engine yields a fixed fault
/// sequence. Probabilities are cumulative-checked in the order
/// fail, hang, delay, corrupt; their sum should stay <= 1.
struct ChaosConfig {
  double fail_probability = 0;
  double hang_probability = 0;
  double delay_probability = 0;
  double corrupt_probability = 0;
  double max_delay_seconds = 60;  ///< kDelay stretch is uniform in (0, max]
  std::uint64_t seed = 1;
};

/// An ordered set of scripted directives plus an optional chaos mode.
/// Scripted directives always win over chaos draws.
class FaultPlan {
 public:
  /// Fail attempt `attempt` of `job` with `error`, reported from `node`
  /// (an empty node is reported as "injected").
  FaultPlan& fail(const std::string& job, int attempt,
                  const std::string& error = "injected fault",
                  const std::string& node = "");
  /// Fail the first `k` attempts of `job` (then let it through).
  FaultPlan& fail_first(const std::string& job, int k,
                        const std::string& error = "injected fault",
                        const std::string& node = "");
  /// Fail every attempt of `job`, forever.
  FaultPlan& always_fail(const std::string& job,
                         const std::string& error = "injected fault",
                         const std::string& node = "");
  /// Hang attempt `attempt` of `job`: it is swallowed and never completes.
  FaultPlan& hang(const std::string& job, int attempt);
  /// Let attempt `attempt` of `job` run, then delay its completion.
  FaultPlan& delay(const std::string& job, int attempt, double seconds);
  /// Let attempt `attempt` of `job` run, but report it from `node`.
  FaultPlan& corrupt_node(const std::string& job, int attempt,
                          const std::string& node);
  /// Enable seeded-random chaos for submissions no directive matches.
  FaultPlan& chaos(const ChaosConfig& config);

  /// All scripted directives matching (job, attempt), in insertion order.
  [[nodiscard]] std::vector<const FaultDirective*> match(const std::string& job,
                                                         int attempt) const;
  [[nodiscard]] const std::optional<ChaosConfig>& chaos_config() const {
    return chaos_;
  }
  [[nodiscard]] bool empty() const { return directives_.empty() && !chaos_; }
  [[nodiscard]] std::size_t directive_count() const { return directives_.size(); }

 private:
  std::vector<FaultDirective> directives_;
  std::optional<ChaosConfig> chaos_;
};

/// ExecutionService decorator applying a FaultPlan.
///
/// Composition rules per submission (attempt indices counted per job id):
///  * a matching kHang swallows the submission — the inner service never
///    sees it and no completion is ever delivered; only an engine attempt
///    timeout recovers from it;
///  * otherwise a matching kFail synthesizes an immediate failed attempt
///    without forwarding (a node that rejected or crashed the job);
///  * otherwise the job is forwarded, and matching kDelay / kCorruptNode
///    directives rewrite the completion on its way back (a delayed
///    completion also holds the attempt until the inner clock reaches the
///    stretched end time, so delays interact honestly with engine
///    timeouts).
///
/// Not thread-safe: call submit()/wait()/wait_for() from one thread (the
/// engine's), exactly like every other ExecutionService. Assumes at most
/// one attempt of a given job id is in flight at a time, which is how the
/// DAGMan engine drives services.
class FaultyService final : public ExecutionService {
 public:
  FaultyService(ExecutionService& inner, FaultPlan plan);

  void submit(const ConcreteJob& job) override;
  std::vector<TaskAttempt> wait() override;
  std::vector<TaskAttempt> wait_for(double timeout_seconds) override;
  /// Non-blocking: one inner harvest plus anything synthesized or newly
  /// due. The wait_for(0) default would bail on its expired deadline
  /// before ever consulting the inner service, which strands completions
  /// when an external clock owner (the WaaS fleet) pumps the queue.
  std::vector<TaskAttempt> poll() override;
  void avoid_node(const std::string& node) override { inner_.avoid_node(node); }
  double now() override { return inner_.now(); }
  /// Delayed completions are parked in held_, invisible to any event
  /// queue; expose the earliest release so cooperative drivers (the WaaS
  /// fleet) can fence their clock advance on it.
  [[nodiscard]] double next_event_time() override {
    const double inner = inner_.next_event_time();
    return held_.empty() ? inner : std::min(inner, earliest_release());
  }
  [[nodiscard]] std::string label() const override {
    return "faulty(" + inner_.label() + ")";
  }

  // ------------------------------------------------ introspection (tests)
  [[nodiscard]] std::size_t injected_failures() const { return injected_failures_; }
  [[nodiscard]] std::size_t injected_hangs() const { return injected_hangs_; }
  [[nodiscard]] std::size_t injected_delays() const { return injected_delays_; }
  [[nodiscard]] std::size_t corrupted_nodes() const { return corrupted_nodes_; }
  /// Submissions seen so far for `job` (the next submission is attempt n+1).
  [[nodiscard]] int attempts_seen(const std::string& job) const;

 private:
  /// Post-processing scheduled at submit time, applied at completion time.
  struct Post {
    double delay_seconds = 0;
    std::string corrupt_node;
  };
  /// A completion being held back by a kDelay directive.
  struct Held {
    TaskAttempt attempt;
    double release_time;
  };

  /// Moves due held completions into due_ and drains due_.
  std::vector<TaskAttempt> take_due();
  /// Applies post directives to one inner completion; returns true when the
  /// attempt was parked in held_ (delayed) instead of being ready now.
  bool apply_post(TaskAttempt& attempt);
  [[nodiscard]] double earliest_release() const;

  ExecutionService& inner_;
  FaultPlan plan_;
  common::Rng rng_;
  std::map<std::string, int> attempt_counts_;
  std::map<std::string, Post> post_;  ///< job id -> pending rewrite
  std::deque<TaskAttempt> due_;       ///< synthesized, ready to deliver
  std::vector<Held> held_;            ///< delayed completions
  std::size_t hung_outstanding_ = 0;
  std::size_t injected_failures_ = 0;
  std::size_t injected_hangs_ = 0;
  std::size_t injected_delays_ = 0;
  std::size_t corrupted_nodes_ = 0;
};

}  // namespace pga::wms
