// Pegasus catalogs: where data lives (replica), where executables live
// (transformation), and what execution sites look like (site).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pga::wms {

/// One physical replica of a logical file.
struct Replica {
  std::string pfn;   ///< physical file name (path/URL)
  std::string site;  ///< site holding it ("local", "sandhills", ...)
  std::uint64_t size_bytes = 0;  ///< 0 = unknown; drives transfer-cost hints
};

/// LFN -> replicas. The planner stages inputs in from here.
class ReplicaCatalog {
 public:
  void add(const std::string& lfn, Replica replica);
  [[nodiscard]] std::vector<Replica> lookup(const std::string& lfn) const;
  /// Deterministic replica selection, independent of insertion order:
  /// the same-site replica with the lexicographically smallest pfn; with
  /// no same-site replica, the replica with the smallest (site, pfn) pair
  /// anywhere; nullopt when the LFN is unknown. Planning and staging both
  /// rely on this contract for seed-stable replays.
  [[nodiscard]] std::optional<Replica> best_for_site(const std::string& lfn,
                                                     const std::string& site) const;
  [[nodiscard]] bool has(const std::string& lfn) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  /// All entries, LFN-ordered (for serialization).
  [[nodiscard]] const std::map<std::string, std::vector<Replica>>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::vector<Replica>> entries_;
};

/// One installed (or stageable) executable.
struct TransformationEntry {
  std::string pfn;        ///< executable path at the site
  bool installed = true;  ///< false = must be staged/installed before use
  std::uint64_t size_bytes = 0;  ///< stageable bundle size (0 = unknown);
                                 ///< drives software-cache accounting
};

/// (transformation, site) -> entry.
class TransformationCatalog {
 public:
  void add(const std::string& transformation, const std::string& site,
           TransformationEntry entry);
  [[nodiscard]] std::optional<TransformationEntry> lookup(
      const std::string& transformation, const std::string& site) const;
  [[nodiscard]] bool available(const std::string& transformation,
                               const std::string& site) const;
  /// All entries, (transformation, site)-ordered (for serialization).
  [[nodiscard]] const std::map<std::pair<std::string, std::string>,
                               TransformationEntry>&
  entries() const {
    return entries_;
  }

 private:
  std::map<std::pair<std::string, std::string>, TransformationEntry> entries_;
};

/// Description of one execution site.
struct SiteEntry {
  std::string name;
  std::size_t slots = 1;              ///< concurrently usable slots
  bool software_preinstalled = true;  ///< Python/Biopython/CAP3 stack present
  std::string scratch_dir = "/scratch";
  /// Sustained transfer bandwidth into the site's scratch (bytes/second);
  /// drives stage-in/out cost hints when replica sizes are known.
  double stage_bandwidth_bps = 50e6;
};

/// Site name -> entry.
class SiteCatalog {
 public:
  void add(SiteEntry site);
  [[nodiscard]] const SiteEntry& site(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, SiteEntry> sites_;
};

}  // namespace pga::wms
