// Pegasus catalogs: where data lives (replica), where executables live
// (transformation), and what execution sites look like (site).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "wms/id_table.hpp"

namespace pga::wms {

/// One physical replica of a logical file.
struct Replica {
  std::string pfn;   ///< physical file name (path/URL)
  std::string site;  ///< site holding it ("local", "sandhills", ...)
  std::uint64_t size_bytes = 0;  ///< 0 = unknown; drives transfer-cost hints
};

/// LFN -> replicas. The planner stages inputs in from here.
///
/// Layout: LFNs are sharded by FNV-1a hash across kShards independent
/// IdTables (string -> dense local id, single hash probe), each backed by
/// a flat vector-of-replica-lists indexed by that id. The string-keyed
/// std::map this replaces paid an allocation plus O(log n) string
/// compares per touch; at 10^6 replicas the lookup path is now an order
/// of magnitude faster (bench/trigger_bench.cpp quantifies it), and the
/// sharding keeps per-table probe chains short.
///
/// The public contract is unchanged from the map-backed catalog:
/// `best_for_site` selection is byte-pinned by the golden fixtures,
/// `entries()` still yields LFN-sorted serialization order (now built on
/// demand), and `has`/`size` count LFNs with at least one replica. One
/// behavioral difference is intentional: the catalog is move-only now
/// (IdTable arenas don't copy), and `remove()` exists so the trigger
/// subsystem can mirror deletions/evictions from the storage-event
/// stream.
class ReplicaCatalog {
 public:
  ReplicaCatalog() = default;
  ReplicaCatalog(const ReplicaCatalog&) = delete;
  ReplicaCatalog& operator=(const ReplicaCatalog&) = delete;
  ReplicaCatalog(ReplicaCatalog&&) = default;
  ReplicaCatalog& operator=(ReplicaCatalog&&) = default;

  void add(const std::string& lfn, Replica replica);
  [[nodiscard]] std::vector<Replica> lookup(const std::string& lfn) const;
  /// Borrowed view of an LFN's replica list, or nullptr when the LFN has
  /// no replicas. Valid until the next mutating call; prefer this over
  /// lookup() on hot paths (no copy).
  [[nodiscard]] const std::vector<Replica>* find(const std::string& lfn) const;
  /// Deterministic replica selection, independent of insertion order:
  /// the same-site replica with the lexicographically smallest pfn; with
  /// no same-site replica, the replica with the smallest (site, pfn) pair
  /// anywhere; nullopt when the LFN is unknown. Planning and staging both
  /// rely on this contract for seed-stable replays.
  [[nodiscard]] std::optional<Replica> best_for_site(const std::string& lfn,
                                                     const std::string& site) const;
  [[nodiscard]] bool has(const std::string& lfn) const;
  /// Drops every replica of `lfn` at `site`; returns how many were
  /// dropped. An LFN whose last replica is removed no longer counts for
  /// has()/size().
  std::size_t remove(const std::string& lfn, const std::string& site);
  /// Number of LFNs with at least one replica.
  [[nodiscard]] std::size_t size() const { return non_empty_; }
  /// All entries with at least one replica, LFN-ordered (for
  /// serialization). Built on demand — O(n log n); not a hot-path call.
  [[nodiscard]] std::map<std::string, std::vector<Replica>> entries() const;
  /// Pre-sizes the shards for about `lfns` distinct LFNs.
  void reserve(std::size_t lfns);

 private:
  static constexpr std::size_t kShards = 16;  ///< power of two (hash & mask)

  struct Shard {
    IdTable lfns;                                ///< lfn -> dense local id
    std::vector<std::vector<Replica>> replicas;  ///< local id -> replicas
  };

  [[nodiscard]] Shard& shard_for(std::string_view lfn);
  [[nodiscard]] const Shard& shard_for(std::string_view lfn) const;

  std::array<Shard, kShards> shards_;
  std::size_t non_empty_ = 0;  ///< LFNs whose replica list is non-empty
};

/// One installed (or stageable) executable.
struct TransformationEntry {
  std::string pfn;        ///< executable path at the site
  bool installed = true;  ///< false = must be staged/installed before use
  std::uint64_t size_bytes = 0;  ///< stageable bundle size (0 = unknown);
                                 ///< drives software-cache accounting
};

/// (transformation, site) -> entry.
class TransformationCatalog {
 public:
  void add(const std::string& transformation, const std::string& site,
           TransformationEntry entry);
  [[nodiscard]] std::optional<TransformationEntry> lookup(
      const std::string& transformation, const std::string& site) const;
  [[nodiscard]] bool available(const std::string& transformation,
                               const std::string& site) const;
  /// All entries, (transformation, site)-ordered (for serialization).
  [[nodiscard]] const std::map<std::pair<std::string, std::string>,
                               TransformationEntry>&
  entries() const {
    return entries_;
  }

 private:
  std::map<std::pair<std::string, std::string>, TransformationEntry> entries_;
};

/// Description of one execution site.
struct SiteEntry {
  std::string name;
  std::size_t slots = 1;              ///< concurrently usable slots
  bool software_preinstalled = true;  ///< Python/Biopython/CAP3 stack present
  std::string scratch_dir = "/scratch";
  /// Sustained transfer bandwidth into the site's scratch (bytes/second);
  /// drives stage-in/out cost hints when replica sizes are known.
  double stage_bandwidth_bps = 50e6;
};

/// Site name -> entry.
class SiteCatalog {
 public:
  void add(SiteEntry site);
  [[nodiscard]] const SiteEntry& site(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, SiteEntry> sites_;
};

}  // namespace pga::wms
