// The planning stage: abstract workflow -> concrete (executable) workflow.
//
// Mirrors pegasus-plan (§III): resolve transformations against the target
// site, insert stage-in/stage-out transfer jobs for external inputs and
// final outputs, flag (or insert) software-setup steps on sites without a
// preinstalled stack (the Fig. 3 red rectangles), and optionally cluster
// small tasks ("Pegasus also allows clustering of small tasks into larger
// clusters that are scheduled and executed to the same remote site").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "wms/catalog.hpp"
#include "wms/dax.hpp"
#include "wms/edge_pattern.hpp"
#include "wms/id_table.hpp"

namespace pga::wms {

/// Role of a concrete job.
enum class JobKind { kCompute, kStageIn, kStageOut, kSetup, kClustered, kCleanup };

/// One schedulable job of the concrete workflow. Kept lean (~128 B): the
/// execution site lives once on ConcreteWorkflow::site() (the planner binds
/// the whole workflow to one site), and clustering metadata lives in side
/// tables keyed by handle — a million-job table pays for none of it.
struct ConcreteJob {
  std::string id;
  std::string transformation;
  std::vector<std::string> args;
  double cpu_seconds_hint = 0;
  /// Size of the stageable software bundle the setup downloads (from
  /// TransformationEntry::size_bytes; 0 = unknown). Drives the per-node
  /// software cache's byte accounting.
  std::uint64_t software_bytes = 0;
  /// For transfer jobs: total bytes moved (0 when replica sizes unknown).
  std::uint64_t staged_bytes = 0;
  /// DAGMan-style priority, honored by the "priority" scheduling policy
  /// (wms/scheduler.hpp): among ready jobs, higher submits first, FIFO
  /// within a priority level. The default FIFO policy ignores it.
  /// Longest-task-first scheduling sets this from the cost hint.
  int priority = 0;
  /// Dense handle assigned by ConcreteWorkflow::add_job (== position in
  /// jobs()). Execution services may echo it back in TaskAttempt::job so
  /// the engine matches completions without a hash lookup; kInvalid until
  /// the job is added to a workflow.
  std::uint32_t index = 0xFFFFFFFFu;
  JobKind kind = JobKind::kCompute;
  /// Pay per-attempt software download/install overhead on the execution
  /// node (OSG-style sites). Mirrors the paper's "modified tasks".
  bool needs_software_setup = false;
};

/// Lazy constituents of one clustered job: members `prefix + tag(begin+i,
/// total)` for i in [0, count) with the generator's zero-padded tag width
/// (digits of total-1). Lets a streamed build describe a k-member cluster
/// in O(1) instead of storing k id strings.
struct ClusterRange {
  std::string prefix;
  std::size_t begin = 0;
  std::size_t count = 0;
  std::size_t total = 0;

  friend bool operator==(const ClusterRange&, const ClusterRange&) = default;
};

/// A planned workflow bound to a site.
class ConcreteWorkflow {
 public:
  ConcreteWorkflow(std::string name, std::string site);

  /// Adds a job and returns its dense handle (== position in jobs()).
  std::uint32_t add_job(ConcreteJob job);
  void add_dependency(const std::string& parent, const std::string& child);
  /// Handle-based edge insertion — no id lookups, for bulk graph builds.
  void add_dependency(std::uint32_t parent, std::uint32_t child);
  /// O(1)-storage arithmetic edge family; see WorkflowGraph::add_pattern.
  void add_edge_pattern(const EdgePattern& pattern);
  [[nodiscard]] const std::vector<EdgePattern>& edge_patterns() const {
    return graph_.patterns();
  }

  // ------------------------------------------------------- streamed build
  /// Bulk job intake: default-constructs `count` jobs and returns the
  /// array for the caller to fill (in parallel over disjoint ranges — only
  /// plain field writes happen here). finish_bulk() then interns every id
  /// sequentially (the interner is not thread-safe), assigns handles, and
  /// validates non-empty/unique ids. The workflow must be empty before
  /// begin_bulk and jobs()/add_job must not be used in between.
  ConcreteJob* begin_bulk(std::size_t count);
  void finish_bulk();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& site() const { return site_; }
  [[nodiscard]] const std::vector<ConcreteJob>& jobs() const { return jobs_; }
  [[nodiscard]] const ConcreteJob& job(const std::string& id) const;
  /// Mutable access (the planner adjusts flags after structural edits).
  [[nodiscard]] ConcreteJob& mutable_job(const std::string& id);
  [[nodiscard]] bool has_job(const std::string& id) const;
  /// Dense index of `id` within jobs() (the scheduler core keys its per-job
  /// state by this). Throws InvalidArgument for unknown ids.
  [[nodiscard]] std::uint32_t job_index(const std::string& id) const;
  /// jobs()[index], bounds-checked; the engine's hot path submits by handle.
  [[nodiscard]] const ConcreteJob& job_at(std::uint32_t index) const;
  /// The job-id interner; handle h names jobs()[h].id.
  [[nodiscard]] const IdTable& ids() const { return ids_; }
  /// Parent/child handles of `index`, each list sorted by the neighbour's
  /// id (materialized — use for_each_*/counts on hot paths).
  [[nodiscard]] std::vector<std::uint32_t> parents_of(std::uint32_t index) const;
  [[nodiscard]] std::vector<std::uint32_t> children_of(std::uint32_t index) const;
  [[nodiscard]] std::size_t parent_count(std::uint32_t index) const {
    return graph_.parent_count(index);
  }
  [[nodiscard]] std::size_t child_count(std::uint32_t index) const {
    return graph_.child_count(index);
  }
  /// Visits children/parents of `index` in neighbour-name order without
  /// materializing a list (the engine's release path).
  template <typename Fn>
  void for_each_child(std::uint32_t index, Fn&& fn) const {
    graph_.for_each_child(index, ids_, std::forward<Fn>(fn));
  }
  template <typename Fn>
  void for_each_parent(std::uint32_t index, Fn&& fn) const {
    graph_.for_each_parent(index, ids_, std::forward<Fn>(fn));
  }
  /// counts[i] = parent_count(i) in one bulk sweep (engine seed).
  void fill_parent_counts(std::vector<std::uint32_t>& counts) const {
    graph_.fill_parent_counts(counts);
  }
  [[nodiscard]] const WorkflowGraph& graph() const { return graph_; }
  [[nodiscard]] std::vector<std::uint32_t> topological_order_indices() const;
  [[nodiscard]] std::vector<std::string> parents(const std::string& id) const;
  [[nodiscard]] std::vector<std::string> children(const std::string& id) const;
  [[nodiscard]] std::vector<std::string> topological_order() const;
  [[nodiscard]] std::size_t edge_count() const { return graph_.edge_count(); }

  // --------------------------------------------------- clustering lookups
  /// The abstract job a concrete job realizes: its own id for plain
  /// compute jobs (the planner maps them 1:1), empty for auxiliary and
  /// clustered jobs.
  [[nodiscard]] std::string_view abstract_id_of(std::uint32_t index) const;
  /// The abstract job ids folded into a clustered job (empty for
  /// non-clustered jobs). Materializes lazily from a ClusterRange when the
  /// cluster was described arithmetically.
  [[nodiscard]] std::vector<std::string> constituents_of(std::uint32_t index) const;
  void set_constituents(std::uint32_t index, std::vector<std::string> members);
  void set_cluster_range(std::uint32_t index, ClusterRange range);

  /// Pre-sizes the interner and job storage (scale benches build
  /// million-job workflows; one allocation instead of log2(n) regrows).
  void reserve(std::size_t job_count, std::size_t id_bytes = 0);

  /// Count of jobs of one kind.
  [[nodiscard]] std::size_t count(JobKind kind) const;

 private:
  std::string name_;
  std::string site_;
  std::vector<ConcreteJob> jobs_;
  IdTable ids_;  // job id -> handle == index into jobs_
  WorkflowGraph graph_;
  bool bulk_open_ = false;
  /// Clustering side tables: only clustered jobs have entries.
  std::unordered_map<std::uint32_t, std::vector<std::string>> constituents_;
  std::unordered_map<std::uint32_t, ClusterRange> cluster_ranges_;
};

/// Planner knobs.
struct PlannerOptions {
  std::string target_site;
  bool add_stage_jobs = true;      ///< insert stage_in/stage_out transfer jobs
  bool explicit_setup_jobs = false;  ///< emit setup jobs as separate DAG nodes
                                     ///< instead of per-task flags
  std::size_t cluster_factor = 1;  ///< >1: horizontally cluster compute jobs of
                                   ///< the same transformation with identical
                                   ///< parent sets, cluster_factor per group
  /// Base cost hints for transfer jobs; when replica sizes are known the
  /// planner adds bytes / site.stage_bandwidth_bps on top.
  double stage_in_seconds = 60;
  double stage_out_seconds = 60;
  /// Expected total bytes of the final outputs (outputs have no replica
  /// entries at plan time, so they cannot be priced from the catalog).
  /// When nonzero the stage-out job is priced like stage-in: base +
  /// bytes / site.stage_bandwidth_bps, and carries the bytes in
  /// staged_bytes. 0 keeps the flat stage_out_seconds hint.
  std::uint64_t expected_output_bytes = 0;
  double setup_seconds = 300;      ///< cost hint for explicit setup jobs
  /// Pegasus-style in-place data cleanup: for every job producing
  /// intermediate files, insert a cleanup job that removes them once all
  /// consumers finish. Bounds the scratch footprint of large workflows.
  bool add_cleanup_jobs = false;
  double cleanup_seconds = 5;      ///< cost hint per cleanup job
};

/// Plans `abstract` onto `options.target_site`. Throws WorkflowError when a
/// transformation is not in the catalog for the site, or an external input
/// has no replica. Edge patterns of the abstract workflow propagate to the
/// concrete graph unmaterialized when clustering is off (handles are
/// identical); clustering collapses them into explicit cluster-level edges.
ConcreteWorkflow plan(const AbstractWorkflow& abstract, const SiteCatalog& sites,
                      const TransformationCatalog& transformations,
                      const ReplicaCatalog& replicas, const PlannerOptions& options);

}  // namespace pga::wms
