#include "wms/statistics.hpp"

#include <algorithm>
#include <sstream>

#include "common/strings.hpp"
#include "common/table.hpp"

namespace pga::wms {

WorkflowStatistics WorkflowStatistics::from_run(const RunReport& report) {
  WorkflowStatistics stats;
  stats.success_ = report.success;
  stats.wall_seconds_ = report.wall_seconds();
  stats.retries_ = report.total_retries;
  stats.failed_jobs_ = report.jobs_failed;
  stats.timed_out_attempts_ = report.timed_out_attempts;
  stats.total_backoff_seconds_ = report.total_backoff_seconds;
  stats.blacklisted_nodes_ = report.blacklisted_nodes.size();

  for (const JobRun& run : report.runs) {
    if (run.skipped_by_rescue) continue;
    if (run.attempts.empty()) continue;  // never launched (blocked branch)
    ++stats.jobs_;
    auto& tf = stats.per_transformation_[run.transformation];
    ++tf.jobs;
    double job_wait = 0;
    double job_install = 0;
    for (const TaskAttempt& attempt : run.attempts) {
      ++stats.attempts_;
      ++tf.attempts;
      job_wait += attempt.wait_seconds;
      job_install += attempt.install_seconds;
      if (attempt.install_cache_hit) {
        ++stats.warm_installs_;
      } else if (attempt.install_seconds > 0) {
        ++stats.cold_installs_;
      }
      stats.bytes_staged_ += attempt.transferred_bytes;
      stats.transfer_attempts_ += attempt.transfer_attempts;
      if (attempt.success) {
        stats.cumulative_kickstart_ += attempt.exec_seconds;
        tf.kickstart.add(attempt.exec_seconds);
      } else {
        stats.cumulative_badput_ += attempt.exec_seconds;
      }
    }
    stats.cumulative_waiting_ += job_wait;
    stats.cumulative_install_ += job_install;
    tf.waiting.add(job_wait);
    tf.install.add(job_install);
  }
  return stats;
}

void StatisticsAccumulator::on_event(const EngineEvent& event) {
  switch (event.type) {
    case EngineEventType::kRunStarted:
      jobs_.assign(event.total_jobs, JobAgg{});
      stats_ = WorkflowStatistics();
      start_time_ = event.time;
      break;
    case EngineEventType::kAttemptFinished: {
      if (event.job >= jobs_.size()) jobs_.resize(event.job + 1);
      JobAgg& agg = jobs_[event.job];
      if (agg.id.empty()) agg.id = std::string(event.job_id);
      agg.transformation = event.result->transformation;
      agg.attempts.push_back(AttemptSlice{event.result->success,
                                          event.result->exec_seconds,
                                          event.result->wait_seconds,
                                          event.result->install_seconds,
                                          event.result->install_cache_hit,
                                          event.result->transferred_bytes,
                                          event.result->transfer_attempts});
      break;
    }
    case EngineEventType::kJobRetry:
      ++stats_.retries_;
      break;
    case EngineEventType::kJobBackoff:
      stats_.total_backoff_seconds_ += event.backoff_seconds;
      break;
    case EngineEventType::kAttemptTimedOut:
      ++stats_.timed_out_attempts_;
      break;
    case EngineEventType::kNodeBlacklisted:
      ++stats_.blacklisted_nodes_;
      break;
    case EngineEventType::kJobFailed:
      ++stats_.failed_jobs_;
      break;
    case EngineEventType::kRunFinished: {
      stats_.success_ = event.success;
      stats_.wall_seconds_ = event.time - start_time_;
      // Finalize the per-job aggregation in sorted-job order — the same
      // traversal from_run does over report.runs, so sums match exactly.
      std::vector<const JobAgg*> ran;
      ran.reserve(jobs_.size());
      for (const JobAgg& agg : jobs_) {
        if (!agg.attempts.empty()) ran.push_back(&agg);
      }
      std::sort(ran.begin(), ran.end(),
                [](const JobAgg* a, const JobAgg* b) { return a->id < b->id; });
      for (const JobAgg* agg_ptr : ran) {
        const JobAgg& agg = *agg_ptr;
        ++stats_.jobs_;
        auto& tf = stats_.per_transformation_[agg.transformation];
        ++tf.jobs;
        double job_wait = 0;
        double job_install = 0;
        for (const AttemptSlice& attempt : agg.attempts) {
          ++stats_.attempts_;
          ++tf.attempts;
          job_wait += attempt.wait_seconds;
          job_install += attempt.install_seconds;
          if (attempt.install_cache_hit) {
            ++stats_.warm_installs_;
          } else if (attempt.install_seconds > 0) {
            ++stats_.cold_installs_;
          }
          stats_.bytes_staged_ += attempt.transferred_bytes;
          stats_.transfer_attempts_ += attempt.transfer_attempts;
          if (attempt.success) {
            stats_.cumulative_kickstart_ += attempt.exec_seconds;
            tf.kickstart.add(attempt.exec_seconds);
          } else {
            stats_.cumulative_badput_ += attempt.exec_seconds;
          }
        }
        stats_.cumulative_waiting_ += job_wait;
        stats_.cumulative_install_ += job_install;
        tf.waiting.add(job_wait);
        tf.install.add(job_install);
      }
      break;
    }
    default:
      break;
  }
}

std::string WorkflowStatistics::render(const std::string& title) const {
  std::ostringstream os;
  if (!title.empty()) os << "# " << title << "\n";
  os << "Workflow Wall Time         : " << common::format_duration(wall_seconds_)
     << " (" << common::format_fixed(wall_seconds_, 0) << " s)\n";
  os << "Cumulative Kickstart Time  : "
     << common::format_duration(cumulative_kickstart_) << "\n";
  os << "Cumulative Waiting Time    : "
     << common::format_duration(cumulative_waiting_) << "\n";
  os << "Cumulative Install Time    : "
     << common::format_duration(cumulative_install_) << "\n";
  os << "Cumulative Badput          : " << common::format_duration(cumulative_badput_)
     << "\n";
  os << "Jobs / Attempts / Retries  : " << jobs_ << " / " << attempts_ << " / "
     << retries_ << "\n";
  if (timed_out_attempts_ > 0 || total_backoff_seconds_ > 0 ||
      blacklisted_nodes_ > 0) {
    os << "Timed-out Attempts         : " << timed_out_attempts_ << "\n";
    os << "Cumulative Backoff         : "
       << common::format_duration(total_backoff_seconds_) << "\n";
    os << "Blacklisted Nodes          : " << blacklisted_nodes_ << "\n";
  }
  // Data-layer lines only appear when the cache/staging models ran, so
  // stock (per-attempt install, hint-priced staging) renders are unchanged.
  if (warm_installs_ > 0) {
    os << "Warm / Cold Installs       : " << warm_installs_ << " / "
       << cold_installs_ << " (hit rate "
       << common::format_fixed(cache_hit_rate() * 100.0, 1) << " %)\n";
  }
  if (bytes_staged_ > 0 || transfer_attempts_ > 0) {
    os << "Bytes Staged               : " << bytes_staged_ << " ("
       << transfer_attempts_ << " transfer attempts)\n";
  }
  os << "Status                     : " << (success_ ? "success" : "FAILED (")
     << (success_ ? "" : std::to_string(failed_jobs_) + " dead jobs)") << "\n";

  common::Table table({"transformation", "jobs", "attempts", "kickstart mean (s)",
                       "waiting mean (s)", "install mean (s)"});
  for (const auto& [name, tf] : per_transformation_) {
    table.add_row({name, std::to_string(tf.jobs), std::to_string(tf.attempts),
                   common::format_fixed(tf.kickstart.empty() ? 0 : tf.kickstart.mean(), 1),
                   common::format_fixed(tf.waiting.empty() ? 0 : tf.waiting.mean(), 1),
                   common::format_fixed(tf.install.empty() ? 0 : tf.install.mean(), 1)});
  }
  os << table.render();
  return os.str();
}

}  // namespace pga::wms
