#include "wms/dax_xml.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/fsutil.hpp"
#include "common/strings.hpp"
#include "wms/xml_util.hpp"

namespace pga::wms {

using common::ParseError;

std::string to_dax_xml(const AbstractWorkflow& workflow) {
  std::ostringstream os;
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  os << "<adag name=\"" << xml::escape(workflow.name()) << "\">\n";
  for (const auto& job : workflow.jobs()) {
    os << "  <job id=\"" << xml::escape(job.id) << "\" name=\""
       << xml::escape(job.transformation) << "\"";
    if (job.cpu_seconds_hint > 0) {
      os << " runtime=\"" << common::format_fixed(job.cpu_seconds_hint, 3) << "\"";
    }
    os << ">\n";
    if (!job.args.empty()) {
      os << "    <argument>" << xml::escape(common::join(job.args, " "))
         << "</argument>\n";
    }
    for (const auto& use : job.uses) {
      os << "    <uses file=\"" << xml::escape(use.lfn) << "\" link=\""
         << (use.link == LinkType::kInput ? "input" : "output") << "\"/>\n";
    }
    os << "  </job>\n";
  }
  for (const auto& job : workflow.jobs()) {
    const auto parents = workflow.parents(job.id);
    if (parents.empty()) continue;
    os << "  <child ref=\"" << xml::escape(job.id) << "\">\n";
    for (const auto& parent : parents) {
      os << "    <parent ref=\"" << xml::escape(parent) << "\"/>\n";
    }
    os << "  </child>\n";
  }
  os << "</adag>\n";
  return os.str();
}

AbstractWorkflow from_dax_xml(const std::string& xml_text) {
  const xml::Element root = xml::parse_document(xml_text);
  if (root.name != "adag") throw ParseError("DAX root element must be <adag>");
  AbstractWorkflow workflow(root.attr("name"));

  // First pass: jobs.
  for (const auto& child : root.children) {
    if (child.name != "job") continue;
    AbstractJob job;
    job.id = child.attr("id");
    job.transformation = child.attr("name");
    if (child.has_attr("runtime")) {
      job.cpu_seconds_hint = common::parse_double(child.attr("runtime"));
    }
    for (const auto& sub : child.children) {
      if (sub.name == "argument") {
        job.args = common::split_ws(sub.text);
      } else if (sub.name == "uses") {
        const std::string& link_text = sub.attr("link");
        LinkType link;
        if (link_text == "input") link = LinkType::kInput;
        else if (link_text == "output") link = LinkType::kOutput;
        else throw ParseError("bad link type: " + link_text);
        job.uses.push_back(FileUse{sub.attr("file"), link});
      }
    }
    workflow.add_job(std::move(job));
  }
  // Second pass: dependencies.
  for (const auto& child : root.children) {
    if (child.name != "child") continue;
    const std::string& ref = child.attr("ref");
    for (const auto& sub : child.children) {
      if (sub.name == "parent") workflow.add_dependency(sub.attr("ref"), ref);
    }
  }
  return workflow;
}

void write_dax_file(const std::filesystem::path& path,
                    const AbstractWorkflow& workflow) {
  common::write_file(path, to_dax_xml(workflow));
}

AbstractWorkflow read_dax_file(const std::filesystem::path& path) {
  return from_dax_xml(common::read_file(path));
}

}  // namespace pga::wms
