#include "wms/xml_util.hpp"

#include <cctype>

#include "common/error.hpp"

namespace pga::wms::xml {

using common::ParseError;

const Element* Element::child(const std::string& child_name) const {
  for (const auto& c : children) {
    if (c.name == child_name) return &c;
  }
  return nullptr;
}

const std::string& Element::attr(const std::string& attr_name) const {
  const auto it = attrs.find(attr_name);
  if (it == attrs.end()) {
    throw ParseError("<" + name + "> missing attribute " + attr_name);
  }
  return it->second;
}

bool Element::has_attr(const std::string& attr_name) const {
  return attrs.count(attr_name) != 0;
}

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string unescape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '&') {
      out.push_back(text[i]);
      continue;
    }
    const auto semi = text.find(';', i);
    if (semi == std::string::npos) throw ParseError("bad XML entity in: " + text);
    const std::string entity = text.substr(i + 1, semi - i - 1);
    if (entity == "amp") out.push_back('&');
    else if (entity == "lt") out.push_back('<');
    else if (entity == "gt") out.push_back('>');
    else if (entity == "quot") out.push_back('"');
    else if (entity == "apos") out.push_back('\'');
    else throw ParseError("unknown XML entity &" + entity + ";");
    i = semi;
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& input) : in_(input) {}

  Element parse_document() {
    skip_prolog();
    Element root = parse_element();
    skip_ws();
    if (pos_ != in_.size()) throw ParseError("trailing content after root element");
    return root;
  }

 private:
  void skip_ws() {
    while (pos_ < in_.size() && std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }

  void skip_prolog() {
    skip_ws();
    while (pos_ + 1 < in_.size() && in_[pos_] == '<' &&
           (in_[pos_ + 1] == '?' || in_[pos_ + 1] == '!')) {
      const auto end = in_.find('>', pos_);
      if (end == std::string::npos) throw ParseError("unterminated XML prolog");
      pos_ = end + 1;
      skip_ws();
    }
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (pos_ < in_.size() &&
           (std::isalnum(static_cast<unsigned char>(in_[pos_])) || in_[pos_] == '_' ||
            in_[pos_] == '-' || in_[pos_] == ':' || in_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) {
      throw ParseError("expected XML name at offset " + std::to_string(start));
    }
    return in_.substr(start, pos_ - start);
  }

  Element parse_element() {
    skip_ws();
    if (pos_ >= in_.size() || in_[pos_] != '<') {
      throw ParseError("expected '<' at offset " + std::to_string(pos_));
    }
    ++pos_;
    Element element;
    element.name = parse_name();
    while (true) {
      skip_ws();
      if (pos_ >= in_.size()) throw ParseError("unterminated element " + element.name);
      if (in_[pos_] == '/') {
        pos_ += 2;  // "/>"
        if (pos_ > in_.size() || in_[pos_ - 1] != '>') {
          throw ParseError("malformed self-closing tag " + element.name);
        }
        return element;
      }
      if (in_[pos_] == '>') {
        ++pos_;
        break;
      }
      const std::string key = parse_name();
      skip_ws();
      if (pos_ >= in_.size() || in_[pos_] != '=') {
        throw ParseError("expected '=' after attribute " + key);
      }
      ++pos_;
      skip_ws();
      if (pos_ >= in_.size() || in_[pos_] != '"') {
        throw ParseError("expected '\"' for attribute " + key);
      }
      ++pos_;
      const auto end = in_.find('"', pos_);
      if (end == std::string::npos) throw ParseError("unterminated attribute " + key);
      element.attrs[key] = unescape(in_.substr(pos_, end - pos_));
      pos_ = end + 1;
    }
    while (true) {
      if (pos_ >= in_.size()) throw ParseError("unterminated element " + element.name);
      if (in_[pos_] == '<') {
        if (pos_ + 1 < in_.size() && in_[pos_ + 1] == '/') {
          pos_ += 2;
          const std::string closing = parse_name();
          if (closing != element.name) {
            throw ParseError("mismatched closing tag </" + closing + "> for <" +
                             element.name + ">");
          }
          skip_ws();
          if (pos_ >= in_.size() || in_[pos_] != '>') {
            throw ParseError("malformed closing tag </" + closing + ">");
          }
          ++pos_;
          return element;
        }
        element.children.push_back(parse_element());
      } else {
        const auto next = in_.find('<', pos_);
        if (next == std::string::npos) {
          throw ParseError("unterminated element " + element.name);
        }
        element.text += unescape(in_.substr(pos_, next - pos_));
        pos_ = next;
      }
    }
  }

  const std::string& in_;
  std::size_t pos_ = 0;
};

}  // namespace

Element parse_document(const std::string& input) {
  Parser parser(input);
  return parser.parse_document();
}

}  // namespace pga::wms::xml
