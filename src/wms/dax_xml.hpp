// DAX XML serialization — the interchange format Pegasus tools consume
// ("directed acyclic graph in XML", §III of the paper).
//
// The writer emits DAX-3-style documents:
//
//   <adag name="blast2cap3">
//     <job id="split" name="split_alignments">
//       <argument>-n 300</argument>
//       <uses file="alignments_list.txt" link="input"/>
//       <uses file="protein_0.txt" link="output"/>
//     </job>
//     <child ref="run_cap3_0"><parent ref="split"/></child>
//   </adag>
//
// The reader parses exactly this subset (elements, attributes, text
// content; no namespaces, CDATA or processing instructions) — enough for
// round-tripping every workflow this library generates.
#pragma once

#include <filesystem>
#include <string>

#include "wms/dax.hpp"

namespace pga::wms {

/// Renders a workflow as DAX XML.
std::string to_dax_xml(const AbstractWorkflow& workflow);

/// Parses DAX XML back into a workflow. Throws ParseError on malformed
/// documents and WorkflowError on semantic violations (duplicate ids,
/// cyclic dependencies).
AbstractWorkflow from_dax_xml(const std::string& xml);

/// Convenience file wrappers.
void write_dax_file(const std::filesystem::path& path, const AbstractWorkflow& workflow);
AbstractWorkflow read_dax_file(const std::filesystem::path& path);

}  // namespace pga::wms
