#include "wms/catalog_io.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/fsutil.hpp"
#include "common/strings.hpp"
#include "wms/xml_util.hpp"

namespace pga::wms {

using common::ParseError;

namespace {

/// Parses `key="value"` tokens from a field list.
std::map<std::string, std::string> parse_kv(const std::vector<std::string>& fields,
                                            std::size_t from) {
  std::map<std::string, std::string> kv;
  for (std::size_t i = from; i < fields.size(); ++i) {
    const auto eq = fields[i].find('=');
    if (eq == std::string::npos) {
      throw ParseError("expected key=\"value\", got: " + fields[i]);
    }
    std::string value = fields[i].substr(eq + 1);
    if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
      value = value.substr(1, value.size() - 2);
    }
    kv[fields[i].substr(0, eq)] = value;
  }
  return kv;
}

}  // namespace

// ------------------------------------------------------- replica catalog

std::string to_rc_text(const ReplicaCatalog& catalog) {
  std::ostringstream os;
  os << "# replica catalog: LFN PFN site=\"...\" [size=\"bytes\"]\n";
  for (const auto& [lfn, replicas] : catalog.entries()) {
    for (const auto& replica : replicas) {
      os << lfn << ' ' << replica.pfn << " site=\"" << replica.site << "\"";
      if (replica.size_bytes > 0) {
        os << " size=\"" << replica.size_bytes << "\"";
      }
      os << "\n";
    }
  }
  return os.str();
}

ReplicaCatalog parse_rc_text(const std::string& text) {
  ReplicaCatalog catalog;
  for (const auto& raw : common::split(text, '\n')) {
    const auto line = common::trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const auto fields = common::split_ws(line);
    if (fields.size() < 3) {
      throw ParseError("replica catalog line needs LFN PFN site=...: " +
                       std::string(line));
    }
    Replica replica;
    replica.pfn = fields[1];
    const auto kv = parse_kv(fields, 2);
    const auto site = kv.find("site");
    if (site == kv.end()) throw ParseError("replica missing site: " + std::string(line));
    replica.site = site->second;
    const auto size = kv.find("size");
    if (size != kv.end()) {
      replica.size_bytes = static_cast<std::uint64_t>(common::parse_long(size->second));
    }
    catalog.add(fields[0], std::move(replica));
  }
  return catalog;
}

// ------------------------------------------------ transformation catalog

std::string to_tc_text(const TransformationCatalog& catalog) {
  std::ostringstream os;
  // Group by transformation for the block format.
  std::string current;
  bool open = false;
  for (const auto& [key, entry] : catalog.entries()) {
    const auto& [transformation, site] = key;
    if (transformation != current) {
      if (open) os << "}\n";
      os << "tr " << transformation << " {\n";
      current = transformation;
      open = true;
    }
    os << "  site " << site << " {\n";
    os << "    pfn \"" << entry.pfn << "\"\n";
    os << "    type \"" << (entry.installed ? "INSTALLED" : "STAGEABLE") << "\"\n";
    if (entry.size_bytes > 0) {
      os << "    size \"" << entry.size_bytes << "\"\n";
    }
    os << "  }\n";
  }
  if (open) os << "}\n";
  return os.str();
}

TransformationCatalog parse_tc_text(const std::string& text) {
  TransformationCatalog catalog;
  std::string transformation;
  std::string site;
  std::string pfn;
  bool installed = true;
  std::uint64_t size_bytes = 0;
  int depth = 0;

  for (const auto& raw : common::split(text, '\n')) {
    const auto line = common::trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const auto fields = common::split_ws(line);
    if (fields[0] == "tr") {
      if (fields.size() < 3 || fields[2] != "{" || depth != 0) {
        throw ParseError("malformed tr block: " + std::string(line));
      }
      transformation = fields[1];
      depth = 1;
    } else if (fields[0] == "site") {
      if (fields.size() < 3 || fields[2] != "{" || depth != 1) {
        throw ParseError("malformed site block: " + std::string(line));
      }
      site = fields[1];
      pfn.clear();
      installed = true;
      size_bytes = 0;
      depth = 2;
    } else if (fields[0] == "pfn" && fields.size() >= 2) {
      pfn = std::string(common::trim(line.substr(3)));
      if (pfn.size() >= 2 && pfn.front() == '"' && pfn.back() == '"') {
        pfn = pfn.substr(1, pfn.size() - 2);
      }
    } else if (fields[0] == "type" && fields.size() >= 2) {
      std::string type(common::trim(line.substr(4)));
      if (type.size() >= 2 && type.front() == '"' && type.back() == '"') {
        type = type.substr(1, type.size() - 2);
      }
      if (type != "INSTALLED" && type != "STAGEABLE") {
        throw ParseError("transformation type must be INSTALLED or STAGEABLE, got " +
                         type);
      }
      installed = type == "INSTALLED";
    } else if (fields[0] == "size" && fields.size() >= 2) {
      std::string value(common::trim(line.substr(4)));
      if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
        value = value.substr(1, value.size() - 2);
      }
      size_bytes = static_cast<std::uint64_t>(common::parse_long(value));
    } else if (fields[0] == "}") {
      if (depth == 2) {
        if (transformation.empty() || site.empty() || pfn.empty()) {
          throw ParseError("incomplete site block for " + transformation);
        }
        catalog.add(transformation, site, {pfn, installed, size_bytes});
        depth = 1;
      } else if (depth == 1) {
        depth = 0;
      } else {
        throw ParseError("unbalanced '}' in transformation catalog");
      }
    } else {
      throw ParseError("unexpected transformation catalog line: " + std::string(line));
    }
  }
  if (depth != 0) throw ParseError("unterminated block in transformation catalog");
  return catalog;
}

// ----------------------------------------------------------- site catalog

std::string to_site_xml(const SiteCatalog& catalog) {
  std::ostringstream os;
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<sitecatalog>\n";
  for (const auto& name : catalog.names()) {
    const SiteEntry& site = catalog.site(name);
    os << "  <site handle=\"" << xml::escape(site.name) << "\" slots=\""
       << site.slots << "\" preinstalled=\""
       << (site.software_preinstalled ? "true" : "false") << "\" scratch=\""
       << xml::escape(site.scratch_dir) << "\" bandwidth=\""
       << common::format_fixed(site.stage_bandwidth_bps, 0) << "\"/>\n";
  }
  os << "</sitecatalog>\n";
  return os.str();
}

SiteCatalog parse_site_xml(const std::string& xml_text) {
  const xml::Element root = xml::parse_document(xml_text);
  if (root.name != "sitecatalog") {
    throw ParseError("site catalog root must be <sitecatalog>");
  }
  SiteCatalog catalog;
  for (const auto& child : root.children) {
    if (child.name != "site") continue;
    SiteEntry site;
    site.name = child.attr("handle");
    site.slots = static_cast<std::size_t>(common::parse_long(child.attr("slots")));
    const std::string& pre = child.attr("preinstalled");
    if (pre != "true" && pre != "false") {
      throw ParseError("preinstalled must be true/false, got " + pre);
    }
    site.software_preinstalled = pre == "true";
    site.scratch_dir = child.attr("scratch");
    site.stage_bandwidth_bps = common::parse_double(child.attr("bandwidth"));
    catalog.add(std::move(site));
  }
  return catalog;
}

// ---------------------------------------------------------- file wrappers

void write_rc_file(const std::filesystem::path& path, const ReplicaCatalog& catalog) {
  common::write_file(path, to_rc_text(catalog));
}
ReplicaCatalog read_rc_file(const std::filesystem::path& path) {
  return parse_rc_text(common::read_file(path));
}
void write_tc_file(const std::filesystem::path& path,
                   const TransformationCatalog& catalog) {
  common::write_file(path, to_tc_text(catalog));
}
TransformationCatalog read_tc_file(const std::filesystem::path& path) {
  return parse_tc_text(common::read_file(path));
}
void write_site_file(const std::filesystem::path& path, const SiteCatalog& catalog) {
  common::write_file(path, to_site_xml(catalog));
}
SiteCatalog read_site_file(const std::filesystem::path& path) {
  return parse_site_xml(common::read_file(path));
}

}  // namespace pga::wms
