// Pattern-compressed dependency storage shared by AbstractWorkflow and
// ConcreteWorkflow.
//
// Regular fan-out/fan-in dominates every workflow this repo generates:
// split -> n run_cap3 workers -> merge materializes 2n explicit edges whose
// structure is one line of arithmetic. WorkflowGraph stores such families
// as EdgePattern ranges — O(1) memory per pattern instead of O(n) adjacency
// entries — next to a sparse explicit-edge map for the irregular rest, and
// presents BOTH through one name-ordered iteration adapter so everything
// ordered on top (the engine's release order, Kahn topological order, the
// DOT/DAX emitters, the string shims) sees exactly the adjacency the old
// fully-materialized sorted-vector layout produced. The generator's
// zero-padded ids make handle order equal name order inside a pattern
// range, which is what lets an arithmetic handle sequence stand in for a
// name-sorted neighbour list.
//
// Determinism contract (pinned by tests/wms_edge_pattern_test.cpp and the
// golden-log suite): a graph built from patterns and the same graph built
// from materialized explicit edges are indistinguishable through every
// read API — neighbour order, topological order, edge counts, emitted
// bytes.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "wms/id_table.hpp"

namespace pga::wms {

/// One arithmetic family of edges: src(i) -> dst(i) for i in [0, count),
/// where src(i) = src_begin + i*src_stride and dst(i) = dst_begin +
/// i*dst_stride. A stride of 0 pins that endpoint (fan-out when
/// src_stride == 0, fan-in when dst_stride == 0, element-wise chains when
/// both are nonzero).
struct EdgePattern {
  std::uint32_t src_begin = 0;
  std::uint32_t dst_begin = 0;
  std::uint32_t count = 0;
  std::uint32_t src_stride = 0;
  std::uint32_t dst_stride = 0;

  [[nodiscard]] std::uint32_t src(std::uint32_t i) const {
    return src_begin + i * src_stride;
  }
  [[nodiscard]] std::uint32_t dst(std::uint32_t i) const {
    return dst_begin + i * dst_stride;
  }

  friend bool operator==(const EdgePattern&, const EdgePattern&) = default;
};

/// Dependency storage for a workflow of dense-handle nodes: a sparse
/// explicit adjacency (only nodes that actually have irregular edges pay
/// for entries) plus up to kMaxPatterns validated EdgePatterns.
///
/// Explicit lists are kept sorted by interned name; patterns are validated
/// name-monotonic on their strided sides at insertion. Iteration merges
/// the two by name, so neighbour order is independent of how an edge was
/// stored. Callers own the no-overlap contract between *patterns*: a pair
/// covered by two patterns would be visited twice (add_edge does check
/// patterns, so explicit duplicates of a pattern edge are ignored like any
/// other duplicate).
class WorkflowGraph {
 public:
  /// Patterns per graph. Small and fixed so per-lookup pattern scans and
  /// the merge cursor array stay O(1)-ish and allocation-free.
  static constexpr std::size_t kMaxPatterns = 64;

  /// Declares one more node (call per add_job). Handles are dense.
  void add_node() { ++nodes_; }
  /// Bulk node declaration for streamed builds.
  void set_node_count(std::size_t count) { nodes_ = count; }
  [[nodiscard]] std::size_t node_count() const { return nodes_; }

  /// Pre-sizes the explicit adjacency index for `nodes` nodes.
  void reserve(std::size_t nodes);

  /// True when parent -> child exists, explicitly or via a pattern.
  [[nodiscard]] bool has_edge(std::uint32_t parent, std::uint32_t child,
                              const IdTable& ids) const;

  /// Inserts an explicit edge (both lists sorted by name). Returns false —
  /// and stores nothing — when the edge already exists in either form.
  /// Performs no cycle check; callers that need one use path_exists first.
  bool add_edge(std::uint32_t parent, std::uint32_t child, const IdTable& ids);

  /// Validates and stores one pattern. Throws InvalidArgument on: zero
  /// count, endpoints out of node range, both strides zero with count > 1
  /// (the same edge count times), any self-edge src(i) == dst(i), a
  /// non-name-monotonic strided side (handle order must equal name order —
  /// zero-padded ids), or more than kMaxPatterns patterns. Does NOT check
  /// overlap against other patterns (caller contract) and does not cycle
  /// check (validate()/topological_order throws on cycles).
  void add_pattern(const EdgePattern& pattern, const IdTable& ids);

  [[nodiscard]] const std::vector<EdgePattern>& patterns() const {
    return patterns_;
  }
  [[nodiscard]] std::size_t edge_count() const {
    return explicit_edges_ + pattern_edges_;
  }
  [[nodiscard]] std::size_t explicit_edge_count() const { return explicit_edges_; }
  [[nodiscard]] std::size_t pattern_edge_count() const { return pattern_edges_; }

  /// Neighbour counts including pattern contributions; O(patterns).
  [[nodiscard]] std::size_t child_count(std::uint32_t node) const;
  [[nodiscard]] std::size_t parent_count(std::uint32_t node) const;

  /// The explicit-only lists (sorted by name; shared empty when absent).
  [[nodiscard]] const std::vector<std::uint32_t>& explicit_children(
      std::uint32_t node) const {
    return explicit_list(children_, node);
  }
  [[nodiscard]] const std::vector<std::uint32_t>& explicit_parents(
      std::uint32_t node) const {
    return explicit_list(parents_, node);
  }

  /// Calls fn(handle) for every child/parent of `node` in neighbour-name
  /// order — the order the materialized sorted adjacency iterated in.
  template <typename Fn>
  void for_each_child(std::uint32_t node, const IdTable& ids, Fn&& fn) const {
    for_each_merged(explicit_list(children_, node), node, ids,
                    /*children=*/true, std::forward<Fn>(fn));
  }
  template <typename Fn>
  void for_each_parent(std::uint32_t node, const IdTable& ids, Fn&& fn) const {
    for_each_merged(explicit_list(parents_, node), node, ids,
                    /*children=*/false, std::forward<Fn>(fn));
  }

  /// Calls fn(parent, child) for every *explicit* edge, in unspecified
  /// order (bulk graph copies re-sort on insertion).
  template <typename Fn>
  void for_each_explicit_edge(Fn&& fn) const {
    for (const auto& [parent, kids] : children_) {
      for (const std::uint32_t child : kids) fn(parent, child);
    }
  }

  /// Materialized name-ordered neighbour lists (compat shims).
  [[nodiscard]] std::vector<std::uint32_t> children_sorted(std::uint32_t node,
                                                           const IdTable& ids) const;
  [[nodiscard]] std::vector<std::uint32_t> parents_sorted(std::uint32_t node,
                                                          const IdTable& ids) const;

  /// counts[v] = parent_count(v) for every node, in one bulk sweep —
  /// O(nodes + explicit edges + pattern edges) integer work, no per-node
  /// pattern scans (the engine's predecessor-count seed at scale).
  void fill_parent_counts(std::vector<std::uint32_t>& counts) const;

  /// Kahn topological order: roots in handle order, children released in
  /// name order — byte-compatible with the materialized layout. Throws
  /// WorkflowError naming `what` on a cycle.
  [[nodiscard]] std::vector<std::uint32_t> topological_order(
      const IdTable& ids, const std::string& what) const;

  /// Reachability over explicit + pattern edges (cycle guard for
  /// add_dependency). Epoch-stamped marks: O(reached), no per-call clear.
  [[nodiscard]] bool path_exists(std::uint32_t from, std::uint32_t to) const;

 private:
  /// One merge cursor: an arithmetic neighbour run from a pattern.
  struct Seq {
    std::uint32_t next = 0;
    std::uint32_t stride = 0;
    std::uint32_t remaining = 0;
  };

  [[nodiscard]] static const std::vector<std::uint32_t>& explicit_list(
      const std::unordered_map<std::uint32_t, std::vector<std::uint32_t>>& side,
      std::uint32_t node);

  /// The pattern's neighbour run for `node` (children or parents side);
  /// false when the pattern doesn't touch `node` on that side.
  [[nodiscard]] static bool contribution(const EdgePattern& pattern,
                                         std::uint32_t node, bool children,
                                         Seq& out);

  template <typename Fn>
  void for_each_merged(const std::vector<std::uint32_t>& explicit_side,
                       std::uint32_t node, const IdTable& ids, bool children,
                       Fn&& fn) const {
    std::array<Seq, kMaxPatterns> seqs;
    std::size_t num_seqs = 0;
    for (const EdgePattern& pattern : patterns_) {
      Seq seq;
      if (contribution(pattern, node, children, seq)) seqs[num_seqs++] = seq;
    }
    if (num_seqs == 0) {  // irregular-only node: the common sparse case
      for (const std::uint32_t handle : explicit_side) fn(handle);
      return;
    }
    std::size_t explicit_pos = 0;
    for (;;) {
      // Fast path once one source remains: drain it without name compares
      // (this is where a million-wide fan-out spends its time).
      std::size_t live = explicit_pos < explicit_side.size() ? 1 : 0;
      std::size_t live_seq = kMaxPatterns;
      for (std::size_t s = 0; s < num_seqs; ++s) {
        if (seqs[s].remaining > 0) {
          ++live;
          live_seq = s;
        }
      }
      if (live == 0) return;
      if (live == 1) {
        if (live_seq == kMaxPatterns) {
          for (; explicit_pos < explicit_side.size(); ++explicit_pos) {
            fn(explicit_side[explicit_pos]);
          }
        } else {
          Seq& seq = seqs[live_seq];
          for (; seq.remaining > 0; --seq.remaining, seq.next += seq.stride) {
            fn(seq.next);
          }
        }
        return;
      }
      // Pick the name-smallest head across the live sources.
      bool from_explicit = explicit_pos < explicit_side.size();
      std::uint32_t best = from_explicit ? explicit_side[explicit_pos] : 0;
      std::string_view best_name = from_explicit ? ids.name(best) : std::string_view{};
      std::size_t best_seq = kMaxPatterns;
      for (std::size_t s = 0; s < num_seqs; ++s) {
        if (seqs[s].remaining == 0) continue;
        const std::string_view name = ids.name(seqs[s].next);
        if (best_seq == kMaxPatterns && !from_explicit) {
          best = seqs[s].next;
          best_name = name;
          best_seq = s;
        } else if (name < best_name) {
          best = seqs[s].next;
          best_name = name;
          best_seq = s;
        }
      }
      fn(best);
      if (best_seq == kMaxPatterns) {
        ++explicit_pos;
      } else {
        Seq& seq = seqs[best_seq];
        --seq.remaining;
        seq.next += seq.stride;
      }
    }
  }

  std::size_t nodes_ = 0;
  /// Sparse explicit adjacency: only nodes with irregular edges have
  /// entries (a pattern-compressed million-job DAG keeps a handful).
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> children_;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> parents_;
  std::vector<EdgePattern> patterns_;
  std::size_t explicit_edges_ = 0;
  std::size_t pattern_edges_ = 0;
  /// Reachability scratch, epoch-stamped so each BFS touches only what it
  /// reaches instead of clearing an O(n) bitmap per query.
  mutable std::vector<std::uint32_t> visit_mark_;
  mutable std::uint32_t visit_epoch_ = 0;
  mutable std::vector<std::uint32_t> frontier_;
};

}  // namespace pga::wms
