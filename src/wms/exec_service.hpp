// Execution back-ends behind one interface.
//
// The DAGMan engine is written against ExecutionService only, so the same
// workflow runs (a) for real, on a thread pool over actual files, and
// (b) simulated, on the discrete-event platform models at paper scale.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "htc/local_executor.hpp"
#include "sim/platform.hpp"
#include "wms/planner.hpp"

namespace pga::wms {

/// One attempt at one concrete job, in the service's time base.
struct TaskAttempt {
  std::string job_id;
  /// Optional echo of ConcreteJob::index from the submitted job. When a
  /// service fills it, the engine verifies the name and skips the hash
  /// lookup that matching completions by job_id costs; 0xFFFFFFFFu
  /// (IdTable::kInvalid) means "not set, match by job_id".
  std::uint32_t job = 0xFFFFFFFFu;
  std::string transformation;
  bool success = false;
  std::string error;
  std::string node;
  double submit_time = 0;
  double end_time = 0;
  double wait_seconds = 0;     ///< "Waiting Time" (queue + match)
  double install_seconds = 0;  ///< "Download/Install Time"
  double exec_seconds = 0;     ///< "Kickstart Time" (partial on failure)
  bool install_cache_hit = false;  ///< software setup came from a node cache
  std::uint64_t transferred_bytes = 0;  ///< bytes moved by a staging attempt
  std::size_t transfer_attempts = 0;    ///< transfer tries incl. retries
};

/// Completion-pump interface. The engine calls submit() for ready jobs and
/// wait() to collect finished attempts; implementations choose their own
/// notion of time (wall seconds or simulation seconds).
class ExecutionService {
 public:
  virtual ~ExecutionService() = default;

  /// Starts one attempt of `job`. Never blocks.
  virtual void submit(const ConcreteJob& job) = 0;

  /// Returns at least one completed attempt, blocking/advancing as needed.
  /// Returns empty only when no submitted attempt is outstanding.
  virtual std::vector<TaskAttempt> wait() = 0;

  /// Like wait(), but gives up after `timeout_seconds` of this service's
  /// time, returning whatever completed (possibly nothing). Services that
  /// control their own clock (the simulator) advance it up to the deadline
  /// even with nothing outstanding, so the engine can wait out attempt
  /// timeouts and retry backoffs. The default falls back to wait(), i.e.
  /// the deadline is advisory.
  virtual std::vector<TaskAttempt> wait_for(double timeout_seconds) {
    (void)timeout_seconds;
    return wait();
  }

  /// Non-blocking harvest: returns attempts that have already completed
  /// without advancing this service's clock past "now". The cooperative
  /// stepping path (EngineInstance::step_cooperative) uses this so an
  /// external driver — the WaaS fleet controller — keeps clock ownership.
  /// The default maps to wait_for(0), which every implementation treats as
  /// "deliver what is due at exactly the current time, then return".
  virtual std::vector<TaskAttempt> poll() { return wait_for(0); }

  /// Earliest future instant (in this service's time base) at which a
  /// poll() might yield something that no shared-event-queue event
  /// announces — e.g. a fault injector holding a delayed completion.
  /// Infinity (the default) means completions are purely event-driven.
  /// External clock owners fold this into their advance fence.
  [[nodiscard]] virtual double next_event_time() {
    return std::numeric_limits<double>::infinity();
  }

  /// Advisory hint: the scheduler blacklisted `node`; place future attempts
  /// elsewhere when possible. Default ignores it.
  virtual void avoid_node(const std::string& node) { (void)node; }

  /// Current time in this service's time base (seconds).
  [[nodiscard]] virtual double now() = 0;

  /// Human-readable back-end label.
  [[nodiscard]] virtual std::string label() const = 0;
};

/// Real execution: jobs run as C++ callables on a bounded thread pool.
///
/// The `runner` receives each ConcreteJob and performs its actual work
/// (reading/writing workspace files). Thrown exceptions become failed
/// attempts. Wall-clock timings feed the same statistics as the simulator.
class LocalService final : public ExecutionService {
 public:
  using JobRunner = std::function<void(const ConcreteJob&)>;

  /// `slots`: concurrent workers. `runner`: executes one job.
  LocalService(std::size_t slots, JobRunner runner);

  void submit(const ConcreteJob& job) override;
  std::vector<TaskAttempt> wait() override;
  std::vector<TaskAttempt> wait_for(double timeout_seconds) override;
  double now() override;
  [[nodiscard]] std::string label() const override { return "local"; }

 private:
  /// Moves everything accumulated in completed_ out. Caller holds mutex_.
  std::vector<TaskAttempt> drain_locked();

  JobRunner runner_;
  common::Stopwatch clock_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<TaskAttempt> completed_;
  std::size_t outstanding_ = 0;

  // Declared last on purpose: the executor's destructor joins its worker
  // threads, and workers touch mutex_/cv_ in the completion callback, so
  // the executor must be destroyed before (i.e. declared after) them.
  htc::LocalExecutor executor_;
};

/// Simulated execution on a platform model; time is the event queue's.
class SimService final : public ExecutionService {
 public:
  /// `queue` must outlive the service and be the platform's queue.
  SimService(sim::EventQueue& queue, sim::ExecutionPlatform& platform);

  void submit(const ConcreteJob& job) override;
  std::vector<TaskAttempt> wait() override;
  std::vector<TaskAttempt> wait_for(double timeout_seconds) override;
  void avoid_node(const std::string& node) override { platform_.avoid_node(node); }
  double now() override;
  [[nodiscard]] std::string label() const override { return platform_.name(); }

 private:
  /// Steps the event queue until a completion lands. With a deadline, stops
  /// once the next event lies past it and burns the remaining simulated
  /// time; without one, throws on deadlock (outstanding jobs, no events).
  void pump(std::optional<double> deadline);
  /// Moves everything accumulated in completed_ out.
  std::vector<TaskAttempt> take_completed();

  sim::EventQueue& queue_;
  sim::ExecutionPlatform& platform_;
  std::deque<TaskAttempt> completed_;
  std::size_t outstanding_ = 0;
};

}  // namespace pga::wms
