// The scheduler core behind DagmanEngine: an explicit per-job state
// machine plus pluggable release policies.
//
// JobStateMachine replaces the pre-refactor loop's parallel maps/sets
// (remaining_parents, done, dead, ready, cooling, attempt_count) with one
// indexed record per job and an explicit lifecycle:
//
//         .-------------------------------------------.
//         v                                           |
//   Idle --> Ready --> Submitted --> Done             |
//    |         ^           |-------> Failed           |
//    |         |           '-------> Backoff ---------'
//    '-------> Skipped (rescued in a previous run)
//
// Dependency release is O(1) per edge: every completion decrements the
// predecessor count of its children instead of rescanning the DAG, and the
// ready queue holds dense job indices so the default FIFO policy pops in
// constant time (bench/micro_wms.cpp quantifies the win on a 5k-job wide
// DAG).
//
// SchedulingPolicy decides *which* ready job is submitted next under the
// max_jobs_in_flight throttle. The default FIFO policy reproduces the
// pre-refactor engine byte-for-byte (golden-log test); the alternatives
// implement the release heuristics surveyed by Bux & Leser (arXiv:1303.7195)
// — job priority, critical-path/upward-rank, widest-branch-first — which is
// what lets the engine do something about the paper's n=10 straggler split.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "wms/planner.hpp"

namespace pga::wms {

/// Lifecycle states of one job inside the scheduler core.
enum class SchedState : std::uint8_t {
  kIdle,       ///< waiting on unfinished parents
  kReady,      ///< all parents done; queued for release
  kSubmitted,  ///< one attempt in flight on the execution service
  kBackoff,    ///< failed attempt; cooling off before the retry
  kDone,       ///< succeeded
  kFailed,     ///< retry budget exhausted
  kSkipped,    ///< completed in a previous run (rescue)
};

/// Short label ("IDLE", "READY", ...).
const char* sched_state_name(SchedState state);

/// Picks which ready job to submit next. `ready` holds dense job indices
/// (positions in ConcreteWorkflow::jobs()) in arrival order; pick() returns
/// a position within it. prepare() is called once per run before any pick
/// and must reset all per-workflow state, so one policy instance can be
/// reused across sequential runs (not concurrent ones).
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void prepare(const ConcreteWorkflow& workflow) { (void)workflow; }
  [[nodiscard]] virtual std::size_t pick(const std::deque<std::uint32_t>& ready) = 0;
};

/// Arrival order, first come first served — the pre-refactor default.
[[nodiscard]] std::unique_ptr<SchedulingPolicy> fifo_policy();
/// DAGMan JOB PRIORITY semantics: highest ConcreteJob::priority first,
/// FIFO within a level.
[[nodiscard]] std::unique_ptr<SchedulingPolicy> job_priority_policy();
/// HEFT-style upward rank: longest cpu-cost path from the job to any sink,
/// largest first (protects the critical path; LPT on flat fan-outs).
[[nodiscard]] std::unique_ptr<SchedulingPolicy> critical_path_policy();
/// Most direct children first: releasing the widest branch exposes the
/// most downstream parallelism per slot.
[[nodiscard]] std::unique_ptr<SchedulingPolicy> widest_branch_policy();
/// Factory by knob name: "fifo", "priority", "critical-path" or
/// "widest-branch". Throws InvalidArgument on anything else.
[[nodiscard]] std::unique_ptr<SchedulingPolicy> make_policy(const std::string& name);
/// The knob names make_policy accepts, in documentation order.
[[nodiscard]] const std::vector<std::string>& policy_names();

/// The per-job state machine. Owns job states, predecessor counts, attempt
/// counts, the ready queue and the backoff set; the engine drives the
/// transitions and an exception-throwing guard rejects illegal ones.
/// Job indices are dense positions in workflow.jobs().
class JobStateMachine {
 public:
  explicit JobStateMachine(const ConcreteWorkflow& workflow);

  // ------------------------------------------------------------- identity
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] std::uint32_t index_of(const std::string& id) const;
  [[nodiscard]] const std::string& id_of(std::uint32_t index) const;
  [[nodiscard]] SchedState state(std::uint32_t index) const;
  /// Submissions so far (the next submission is attempt n+1).
  [[nodiscard]] int attempts(std::uint32_t index) const;

  // ------------------------------------------------------------- seeding
  /// Marks a rescued job Skipped (Idle -> Skipped) and counts it done.
  void mark_skipped(std::uint32_t index);
  /// Decrements the predecessor count of every child of `index`; children
  /// reaching zero while Idle become Ready and are queued. Returns the
  /// newly-ready children in dependency-declaration (sorted-id) order.
  /// Called after mark_skipped / mark_done has settled `index`.
  std::vector<std::uint32_t> release_children(std::uint32_t index);
  /// Queues an Idle job with no unfinished parents (initial roots). No-op
  /// when the job is already Ready (seeded via a rescued parent).
  void seed_root(std::uint32_t index);

  // ---------------------------------------------------------- ready queue
  [[nodiscard]] bool has_ready() const { return !ready_.empty(); }
  [[nodiscard]] const std::deque<std::uint32_t>& ready() const { return ready_; }
  /// Pops the job at `position` in ready() (Ready -> Submitted, ++attempts).
  std::uint32_t take_ready(std::size_t position);

  // ----------------------------------------------------------- completion
  /// Submitted -> Done. Follow with release_children().
  void mark_done(std::uint32_t index);
  /// Submitted -> Ready: immediate retry, re-queued at the back.
  void requeue(std::uint32_t index);
  /// Submitted -> Backoff until `release_time` on the service clock.
  void start_backoff(std::uint32_t index, double release_time);
  /// Submitted -> Failed (retry budget exhausted).
  void mark_failed(std::uint32_t index);

  // -------------------------------------------------------------- backoff
  /// Moves every Backoff job with release_time <= now + eps back to Ready
  /// (in backoff-start order) and returns them.
  std::vector<std::uint32_t> release_due(double now, double eps);
  /// Earliest pending backoff release time (+inf when none).
  [[nodiscard]] double earliest_release() const;
  [[nodiscard]] bool any_cooling() const { return !cooling_.empty(); }
  /// Forces the earliest-release Backoff job back to Ready (used when the
  /// service cannot advance its clock). Requires any_cooling().
  std::uint32_t force_release_earliest();

  // ------------------------------------------------------------- counters
  [[nodiscard]] std::size_t submitted_count() const { return submitted_; }
  [[nodiscard]] std::size_t done_count() const { return done_; }  ///< Done + Skipped
  [[nodiscard]] std::size_t failed_count() const { return failed_; }
  /// True when nothing is in flight, cooling or ready: the run is over.
  [[nodiscard]] bool quiescent() const {
    return submitted_ == 0 && cooling_.empty() && ready_.empty();
  }

 private:
  struct Node {
    SchedState state = SchedState::kIdle;
    std::uint32_t remaining_parents = 0;
    int attempts = 0;
  };
  struct Cooling {
    std::uint32_t index;
    double release_time;
  };

  void expect(std::uint32_t index, SchedState from, const char* transition) const;

  const ConcreteWorkflow* workflow_;
  std::vector<Node> nodes_;
  // Children come straight from the workflow's flat adjacency
  // (children_of), already in the sorted-id order the legacy engine
  // released them in — no per-run copy needed.
  std::deque<std::uint32_t> ready_;
  std::vector<Cooling> cooling_;  ///< insertion (backoff-start) order
  std::size_t submitted_ = 0;
  std::size_t done_ = 0;
  std::size_t failed_ = 0;
};

}  // namespace pga::wms
