// File formats for the catalogs — Pegasus configures planning through
// catalog *files* (replica catalog rc.txt, transformation catalog tc.txt,
// site catalog sites.xml); this module reads and writes the same shapes.
//
// Replica catalog (rc.txt), one replica per line:
//   transcripts.fasta /data/transcripts.fasta site="local" size="423624704"
//
// Transformation catalog (tc.txt), blocks:
//   tr run_cap3 {
//     site sandhills {
//       pfn "/util/opt/run_cap3"
//       type "INSTALLED"          # or "STAGEABLE"
//     }
//   }
//
// Site catalog (sites.xml):
//   <sitecatalog>
//     <site handle="sandhills" slots="512" preinstalled="true"
//           scratch="/work/scratch" bandwidth="100000000"/>
//   </sitecatalog>
#pragma once

#include <filesystem>
#include <string>

#include "wms/catalog.hpp"

namespace pga::wms {

/// Renders / parses the replica catalog text format.
std::string to_rc_text(const ReplicaCatalog& catalog);
ReplicaCatalog parse_rc_text(const std::string& text);

/// Renders / parses the transformation catalog text format.
std::string to_tc_text(const TransformationCatalog& catalog);
TransformationCatalog parse_tc_text(const std::string& text);

/// Renders / parses the site catalog XML format.
std::string to_site_xml(const SiteCatalog& catalog);
SiteCatalog parse_site_xml(const std::string& xml_text);

/// File wrappers.
void write_rc_file(const std::filesystem::path& path, const ReplicaCatalog& catalog);
ReplicaCatalog read_rc_file(const std::filesystem::path& path);
void write_tc_file(const std::filesystem::path& path,
                   const TransformationCatalog& catalog);
TransformationCatalog read_tc_file(const std::filesystem::path& path);
void write_site_file(const std::filesystem::path& path, const SiteCatalog& catalog);
SiteCatalog read_site_file(const std::filesystem::path& path);

}  // namespace pga::wms
