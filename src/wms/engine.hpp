// The DAGMan-style workflow engine.
//
// Releases jobs in DAG order onto an ExecutionService, retries failed
// attempts up to a per-job cap, keeps a jobstate log, and — like Pegasus —
// writes a *rescue DAG* when the workflow cannot finish, so a later run can
// resume from the completed frontier (§III: "If the job fails again, then
// Pegasus generates a rescue workflow that contains information of the
// work that remains to be done").
//
// Internally the engine is an event loop around three pieces:
//   - JobStateMachine (wms/scheduler.hpp) holds every job's lifecycle state
//     and releases children by decrementing predecessor counts;
//   - a SchedulingPolicy picks which ready job submits next under the
//     max_jobs_in_flight throttle (default FIFO, byte-identical to the
//     pre-refactor engine);
//   - an EventBus (wms/events.hpp) publishes every observable step; the
//     jobstate log, the StatusBoard and RunReport itself are observers.
//
// The loop itself lives in EngineInstance, a re-entrant steppable core:
// run() is a thin drive-to-completion wrapper (`while (step()) {}`), and a
// multi-workflow driver can instead construct many instances over one
// shared sim::EventQueue and interleave them with step_cooperative() —
// the Workflow-as-a-Service fleet controller (src/waas/) does exactly that.
#pragma once

#include <cstdint>
#include <filesystem>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/digest.hpp"
#include "common/rng.hpp"

#include "wms/events.hpp"
#include "wms/exec_service.hpp"
#include "wms/scheduler.hpp"
#include "wms/status.hpp"

namespace pga::wms {

/// Engine knobs.
struct EngineOptions {
  int retries = 3;  ///< additional attempts after the first failure
  /// When set, a rescue file is written here if the run fails.
  std::optional<std::filesystem::path> rescue_path;
  /// When set, the engine publishes job-state transitions here; poll it
  /// from another thread for pegasus-status-style monitoring. Must outlive
  /// the run.
  StatusBoard* status = nullptr;
  /// DAGMan-style submit throttle (condor_dagman -maxjobs): at most this
  /// many attempts in flight at once. 0 = unlimited.
  std::size_t max_jobs_in_flight = 0;
  /// Per-attempt timeout in service seconds (condor periodic_remove /
  /// DAGMan ABORT-DAG-ON discipline): an attempt still outstanding after
  /// this long is declared failed ("timed out") and consumes one retry, so
  /// a hung attempt can never wedge the run. 0 disables.
  double attempt_timeout_seconds = 0;
  /// Exponential backoff between retries of the same job: the k-th retry
  /// waits min(backoff_base_seconds * 2^(k-1), backoff_max_seconds) before
  /// resubmission. 0 disables (retry immediately).
  double backoff_base_seconds = 0;
  double backoff_max_seconds = 300;
  /// Jitter fraction in [0, 1): each backoff is shaved by up to this
  /// fraction, drawn from a private deterministic Rng seeded with
  /// backoff_seed — decorrelates retry storms without losing
  /// reproducibility.
  double backoff_jitter = 0;
  std::uint64_t backoff_seed = 0x5eedULL;
  /// Blacklist an execution node after this many *consecutive* failed
  /// attempts reported from it; the service is hinted to avoid it (the
  /// Pegasus/OSG behaviour of retries landing on different sites). A
  /// success on a node resets its streak. 0 disables.
  int node_blacklist_threshold = 0;
  /// Which ready job to submit next under the throttle. Null = FIFO (the
  /// pre-refactor behaviour, byte-identical jobstate logs). Shared so
  /// EngineOptions stays copyable; one policy instance must not serve two
  /// concurrently-running engines (sequential reuse is fine — the engine
  /// calls prepare() at the start of every run).
  std::shared_ptr<SchedulingPolicy> policy = nullptr;
  /// Extra engine-event observers, notified after the engine's own
  /// (report, status) in this order. Borrowed; must outlive every run.
  std::vector<EngineObserver*> observers = {};
  /// Scalar-only accounting: the RunReport carries counters and a streamed
  /// FNV-1a digest of the jobstate lines (jobstate_digest/jobstate_lines)
  /// but no per-job runs[] roster and no stored jobstate_log — O(1) report
  /// memory instead of O(jobs), which is what lets a 10^7-job run fit the
  /// 4 GB envelope. The digest matches common::lines_digest of the log a
  /// full-mode run would have stored, byte for byte.
  bool lean_report = false;
};

/// Everything recorded about one job across its attempts.
struct JobRun {
  std::string id;
  std::string transformation;
  JobKind kind = JobKind::kCompute;
  std::vector<TaskAttempt> attempts;
  bool succeeded = false;
  bool skipped_by_rescue = false;
  /// Total seconds this job spent cooling off between retries.
  double backoff_seconds = 0;

  /// The successful attempt (the last one when succeeded).
  [[nodiscard]] const TaskAttempt* final_attempt() const {
    return attempts.empty() ? nullptr : &attempts.back();
  }
};

/// Outcome of one engine run.
struct RunReport {
  bool success = false;
  /// Diagnostic when the run was aborted by the simulator rather than
  /// finishing (e.g. the event-queue runaway guard tripped); empty on
  /// normal completion or ordinary job failure.
  std::string error;
  std::string workflow;
  std::string service;       ///< execution back-end label
  double start_time = 0;     ///< service time when the run began
  double end_time = 0;       ///< service time when the run finished
  std::size_t jobs_total = 0;
  std::size_t jobs_succeeded = 0;
  std::size_t jobs_failed = 0;
  std::size_t jobs_skipped = 0;   ///< completed in a previous (rescued) run
  std::size_t total_attempts = 0;
  std::size_t total_retries = 0;  ///< attempts beyond each job's first
  std::size_t timed_out_attempts = 0;  ///< attempts declared dead by timeout
  double total_backoff_seconds = 0;    ///< summed retry cool-off across jobs
  /// Nodes blacklisted during the run, in blacklist order.
  std::vector<std::string> blacklisted_nodes;
  std::vector<JobRun> runs;       ///< per job, in completion order (empty
                                  ///< under EngineOptions::lean_report)
  std::vector<std::string> jobstate_log;  ///< "<t> <job> <EVENT>" lines
                                          ///< (empty under lean_report)
  /// common::lines_digest of the jobstate log and its line count — filled
  /// in both modes (streamed in lean mode, computed from the stored log
  /// otherwise), so double-run identity checks work without the log.
  std::uint64_t jobstate_digest = 0;
  std::size_t jobstate_lines = 0;

  /// "Workflow Wall Time" — the statistic Fig. 4 plots.
  [[nodiscard]] double wall_seconds() const { return end_time - start_time; }
};

/// Assembles a RunReport purely from the engine-event stream: counters from
/// the typed events, per-job attempt records from kAttemptFinished, and the
/// jobstate log via an embedded JobstateLogObserver. The engine subscribes
/// one per run; it is public so tests and external replays can feed a
/// recorded stream through the same accounting.
class RunReportBuilder final : public EngineObserver {
 public:
  /// `workflow` provides the job roster (id, transformation, kind) and must
  /// outlive the builder.
  explicit RunReportBuilder(const ConcreteWorkflow& workflow);
  void on_event(const EngineEvent& event) override;
  /// Finalizes and returns the report. Call once, after kRunFinished.
  [[nodiscard]] RunReport take();

 private:
  RunReport report_;
  JobstateLogObserver log_;  ///< writes into report_.jobstate_log
  /// Per-job records indexed by dense handle (EngineEvent::job); take()
  /// emits them sorted by id, matching the old map iteration order.
  std::vector<JobRun> runs_;
};

/// The lean_report counterpart of RunReportBuilder: accumulates the same
/// scalar counters from the event stream and hashes each jobstate line as
/// it is formatted (one shared formatter, events.hpp) without storing the
/// line or any per-job record — report memory stays O(1) in job count.
class LeanReportObserver final : public EngineObserver {
 public:
  void on_event(const EngineEvent& event) override;
  /// Finalizes and returns the report. Call once, after kRunFinished.
  [[nodiscard]] RunReport take();

 private:
  RunReport report_;
  std::uint64_t digest_ = common::kFnv1aOffset;  ///< streamed line digest
  std::string line_;  ///< format scratch, reused across events
};

/// One re-entrant, steppable engine run: everything the drive-to-completion
/// loop used to keep in stack locals — state machine, policy, event bus,
/// in-flight deadlines, backoff RNG — owned as an object, so an external
/// driver (the WaaS fleet controller, src/waas/) can interleave many runs
/// over one shared sim::EventQueue timeline instead of each run privately
/// draining a clock to completion.
///
/// Two stepping modes:
///  * step() — one iteration of the classic blocking loop: release due
///    backoffs, submit ready jobs under the throttle, then wait on the
///    service for completions (advancing the service's clock as needed).
///    DagmanEngine::run() is exactly `while (step()) {}` +
///    take_report(), which keeps the single-workflow path byte-identical
///    to the golden fixtures.
///  * step_cooperative(budget) — never blocks and never advances the
///    clock beyond events already due: consumes completions the service
///    has delivered (ExecutionService::poll), releases due backoffs,
///    expires overdue attempt deadlines, and submits at most `budget`
///    ready jobs (the fleet's fair-share lever). The driver owns the
///    clock: it pumps the shared event queue itself and uses
///    next_deadline() to know when a quiet instance needs simulated time
///    burned for it (a cooling retry or an attempt timeout with nothing
///    else scheduled).
///
/// The workflow and service must outlive the instance; one instance is one
/// run (construct a fresh one to re-run). Not copyable or movable — the
/// embedded report builder and bus subscriptions are address-stable.
class EngineInstance {
 public:
  /// Validated `options` (see DagmanEngine's constructor), the workflow to
  /// run, the service to run it on, and optionally the rescue frontier of
  /// job ids already done in a previous run.
  EngineInstance(const EngineOptions& options, const ConcreteWorkflow& workflow,
                 ExecutionService& service,
                 const std::set<std::string>& already_done = {});
  EngineInstance(const EngineInstance&) = delete;
  EngineInstance& operator=(const EngineInstance&) = delete;

  /// One blocking iteration. Returns false once the run has finished (the
  /// terminal bookkeeping — kRunFinished, rescue file — has then already
  /// run); calling again keeps returning false.
  bool step();

  /// One non-blocking iteration; see class comment. Returns true when the
  /// step made progress (submitted a job, consumed a completion, expired a
  /// deadline, or finished the run) — drivers re-step while true, then
  /// advance the shared clock. Returns false on an already-finished run.
  bool step_cooperative(
      std::size_t submit_budget = std::numeric_limits<std::size_t>::max());

  /// True once the run has reached its terminal state.
  [[nodiscard]] bool is_done() const { return finished_; }

  /// Finalizes and returns the report. Call once, after is_done(); throws
  /// InvalidArgument otherwise.
  RunReport take_report();

  /// Earliest future time this instance needs the clock to reach even if
  /// no queue event fires for it: pending backoff release, attempt-timeout
  /// deadline, or a completion its service is holding internally
  /// (ExecutionService::next_event_time, e.g. a chaos-delayed attempt);
  /// +inf when it is driven purely by event-queue completions.
  [[nodiscard]] double next_deadline();

  // -------------------------------------------------- fleet introspection
  /// Attempts currently submitted and not yet resolved.
  [[nodiscard]] std::size_t jobs_in_flight() const { return fsm_.submitted_count(); }
  /// Jobs released and waiting for a submission slot.
  [[nodiscard]] std::size_t ready_count() const { return fsm_.ready().size(); }
  /// Jobs finished successfully (including rescued ones).
  [[nodiscard]] std::size_t done_jobs() const { return fsm_.done_count(); }
  [[nodiscard]] std::size_t total_jobs() const { return fsm_.size(); }

 private:
  /// Per-attempt hardening state the state machine does not own.
  struct InFlight {
    double submitted_at = 0;  ///< service time the attempt was handed over
    double deadline = 0;      ///< submitted_at + attempt timeout
    std::uint32_t list_pos = 0;  ///< position in inflight_list_ (swap-remove)
    bool active = false;
  };

  [[nodiscard]] EngineEvent job_event(EngineEventType type, std::uint32_t index);
  void inflight_add(std::uint32_t index, double at);
  void inflight_remove(std::uint32_t index);
  [[nodiscard]] bool throttled() const;
  [[nodiscard]] double next_backoff(int attempts);
  void submit_job(std::size_t position);
  /// Loop head: release due backoffs, then submit ready jobs under the
  /// throttle and `budget`. Returns the number submitted.
  std::size_t submit_ready(std::size_t budget);
  /// The blocking-wait horizon (backoff release / attempt deadline only) —
  /// exactly the pre-refactor computation, which keeps run() byte-stable.
  [[nodiscard]] double wait_horizon() const;
  void handle_attempt(std::uint32_t index, TaskAttempt attempt);
  void expire_attempt(std::uint32_t index, const InFlight& info);
  /// Matches completions to in-flight attempts and feeds handle_attempt;
  /// returns true when any attempt was consumed.
  bool process_attempts(std::vector<TaskAttempt>& attempts);
  /// Expires every in-flight attempt past its deadline; true if any.
  bool expire_due();
  /// Terminal bookkeeping: kRunFinished + rescue file.
  void finalize();

  EngineOptions options_;
  const ConcreteWorkflow& workflow_;
  const IdTable& ids_;
  ExecutionService& service_;

  JobStateMachine fsm_;
  std::unique_ptr<SchedulingPolicy> default_policy_;
  SchedulingPolicy* policy_ = nullptr;
  /// Exactly one of these is live, chosen by EngineOptions::lean_report.
  std::unique_ptr<RunReportBuilder> builder_;
  std::unique_ptr<LeanReportObserver> lean_builder_;
  std::unique_ptr<StatusBoardObserver> status_observer_;
  EventBus bus_;

  std::vector<InFlight> in_flight_;
  std::vector<std::uint32_t> inflight_list_;
  /// Attempts declared timed out whose real completion may still surface.
  std::vector<int> stale_attempts_;
  std::map<std::string, int> node_fail_streak_;
  std::set<std::string> blacklisted_;
  common::Rng backoff_rng_;
  std::vector<std::uint32_t> topo_;
  std::string abort_error_;
  bool timeout_on_ = false;
  bool finished_ = false;
  bool report_taken_ = false;
};

/// DAG scheduler. Stateless between runs; safe to reuse.
class DagmanEngine {
 public:
  explicit DagmanEngine(EngineOptions options = {});

  /// Runs the workflow to completion (or failure of some job past its
  /// retry budget; independent branches still run to completion first,
  /// like DAGMan).
  RunReport run(const ConcreteWorkflow& workflow, ExecutionService& service);

  /// Runs skipping jobs recorded as DONE in `rescue_file` (written by a
  /// previous failed run).
  RunReport run_rescue(const ConcreteWorkflow& workflow, ExecutionService& service,
                       const std::filesystem::path& rescue_file);

  /// Workflow-level retry (§III: "Pegasus can retry the job or the entire
  /// workflow given number of times"): runs, and on failure resumes from
  /// the rescue frontier up to `workflow_attempts` total runs. Requires
  /// options.rescue_path. Returns the last run's report; completed work is
  /// never redone.
  RunReport run_with_workflow_retries(const ConcreteWorkflow& workflow,
                                      ExecutionService& service,
                                      int workflow_attempts);

  /// Parses a rescue file into the set of done job ids.
  static std::set<std::string> read_rescue_file(const std::filesystem::path& path);

 private:
  RunReport run_internal(const ConcreteWorkflow& workflow, ExecutionService& service,
                         const std::set<std::string>& already_done);

  EngineOptions options_;
};

}  // namespace pga::wms
