// The DAGMan-style workflow engine.
//
// Releases jobs in DAG order onto an ExecutionService, retries failed
// attempts up to a per-job cap, keeps a jobstate log, and — like Pegasus —
// writes a *rescue DAG* when the workflow cannot finish, so a later run can
// resume from the completed frontier (§III: "If the job fails again, then
// Pegasus generates a rescue workflow that contains information of the
// work that remains to be done").
//
// Internally the engine is an event loop around three pieces:
//   - JobStateMachine (wms/scheduler.hpp) holds every job's lifecycle state
//     and releases children by decrementing predecessor counts;
//   - a SchedulingPolicy picks which ready job submits next under the
//     max_jobs_in_flight throttle (default FIFO, byte-identical to the
//     pre-refactor engine);
//   - an EventBus (wms/events.hpp) publishes every observable step; the
//     jobstate log, the StatusBoard and RunReport itself are observers.
#pragma once

#include <filesystem>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "wms/events.hpp"
#include "wms/exec_service.hpp"
#include "wms/scheduler.hpp"
#include "wms/status.hpp"

namespace pga::wms {

/// Engine knobs.
struct EngineOptions {
  int retries = 3;  ///< additional attempts after the first failure
  /// When set, a rescue file is written here if the run fails.
  std::optional<std::filesystem::path> rescue_path;
  /// When set, the engine publishes job-state transitions here; poll it
  /// from another thread for pegasus-status-style monitoring. Must outlive
  /// the run.
  StatusBoard* status = nullptr;
  /// DAGMan-style submit throttle (condor_dagman -maxjobs): at most this
  /// many attempts in flight at once. 0 = unlimited.
  std::size_t max_jobs_in_flight = 0;
  /// Per-attempt timeout in service seconds (condor periodic_remove /
  /// DAGMan ABORT-DAG-ON discipline): an attempt still outstanding after
  /// this long is declared failed ("timed out") and consumes one retry, so
  /// a hung attempt can never wedge the run. 0 disables.
  double attempt_timeout_seconds = 0;
  /// Exponential backoff between retries of the same job: the k-th retry
  /// waits min(backoff_base_seconds * 2^(k-1), backoff_max_seconds) before
  /// resubmission. 0 disables (retry immediately).
  double backoff_base_seconds = 0;
  double backoff_max_seconds = 300;
  /// Jitter fraction in [0, 1): each backoff is shaved by up to this
  /// fraction, drawn from a private deterministic Rng seeded with
  /// backoff_seed — decorrelates retry storms without losing
  /// reproducibility.
  double backoff_jitter = 0;
  std::uint64_t backoff_seed = 0x5eedULL;
  /// Blacklist an execution node after this many *consecutive* failed
  /// attempts reported from it; the service is hinted to avoid it (the
  /// Pegasus/OSG behaviour of retries landing on different sites). A
  /// success on a node resets its streak. 0 disables.
  int node_blacklist_threshold = 0;
  /// Which ready job to submit next under the throttle. Null = FIFO (the
  /// pre-refactor behaviour, byte-identical jobstate logs). Shared so
  /// EngineOptions stays copyable; one policy instance must not serve two
  /// concurrently-running engines (sequential reuse is fine — the engine
  /// calls prepare() at the start of every run).
  std::shared_ptr<SchedulingPolicy> policy = nullptr;
  /// Extra engine-event observers, notified after the engine's own
  /// (report, status) in this order. Borrowed; must outlive every run.
  std::vector<EngineObserver*> observers = {};
};

/// Everything recorded about one job across its attempts.
struct JobRun {
  std::string id;
  std::string transformation;
  JobKind kind = JobKind::kCompute;
  std::vector<TaskAttempt> attempts;
  bool succeeded = false;
  bool skipped_by_rescue = false;
  /// Total seconds this job spent cooling off between retries.
  double backoff_seconds = 0;

  /// The successful attempt (the last one when succeeded).
  [[nodiscard]] const TaskAttempt* final_attempt() const {
    return attempts.empty() ? nullptr : &attempts.back();
  }
};

/// Outcome of one engine run.
struct RunReport {
  bool success = false;
  /// Diagnostic when the run was aborted by the simulator rather than
  /// finishing (e.g. the event-queue runaway guard tripped); empty on
  /// normal completion or ordinary job failure.
  std::string error;
  std::string workflow;
  std::string service;       ///< execution back-end label
  double start_time = 0;     ///< service time when the run began
  double end_time = 0;       ///< service time when the run finished
  std::size_t jobs_total = 0;
  std::size_t jobs_succeeded = 0;
  std::size_t jobs_failed = 0;
  std::size_t jobs_skipped = 0;   ///< completed in a previous (rescued) run
  std::size_t total_attempts = 0;
  std::size_t total_retries = 0;  ///< attempts beyond each job's first
  std::size_t timed_out_attempts = 0;  ///< attempts declared dead by timeout
  double total_backoff_seconds = 0;    ///< summed retry cool-off across jobs
  /// Nodes blacklisted during the run, in blacklist order.
  std::vector<std::string> blacklisted_nodes;
  std::vector<JobRun> runs;       ///< per job, in completion order
  std::vector<std::string> jobstate_log;  ///< "<t> <job> <EVENT>" lines

  /// "Workflow Wall Time" — the statistic Fig. 4 plots.
  [[nodiscard]] double wall_seconds() const { return end_time - start_time; }
};

/// Assembles a RunReport purely from the engine-event stream: counters from
/// the typed events, per-job attempt records from kAttemptFinished, and the
/// jobstate log via an embedded JobstateLogObserver. The engine subscribes
/// one per run; it is public so tests and external replays can feed a
/// recorded stream through the same accounting.
class RunReportBuilder final : public EngineObserver {
 public:
  /// `workflow` provides the job roster (id, transformation, kind) and must
  /// outlive the builder.
  explicit RunReportBuilder(const ConcreteWorkflow& workflow);
  void on_event(const EngineEvent& event) override;
  /// Finalizes and returns the report. Call once, after kRunFinished.
  [[nodiscard]] RunReport take();

 private:
  RunReport report_;
  JobstateLogObserver log_;  ///< writes into report_.jobstate_log
  /// Per-job records indexed by dense handle (EngineEvent::job); take()
  /// emits them sorted by id, matching the old map iteration order.
  std::vector<JobRun> runs_;
};

/// DAG scheduler. Stateless between runs; safe to reuse.
class DagmanEngine {
 public:
  explicit DagmanEngine(EngineOptions options = {});

  /// Runs the workflow to completion (or failure of some job past its
  /// retry budget; independent branches still run to completion first,
  /// like DAGMan).
  RunReport run(const ConcreteWorkflow& workflow, ExecutionService& service);

  /// Runs skipping jobs recorded as DONE in `rescue_file` (written by a
  /// previous failed run).
  RunReport run_rescue(const ConcreteWorkflow& workflow, ExecutionService& service,
                       const std::filesystem::path& rescue_file);

  /// Workflow-level retry (§III: "Pegasus can retry the job or the entire
  /// workflow given number of times"): runs, and on failure resumes from
  /// the rescue frontier up to `workflow_attempts` total runs. Requires
  /// options.rescue_path. Returns the last run's report; completed work is
  /// never redone.
  RunReport run_with_workflow_retries(const ConcreteWorkflow& workflow,
                                      ExecutionService& service,
                                      int workflow_attempts);

  /// Parses a rescue file into the set of done job ids.
  static std::set<std::string> read_rescue_file(const std::filesystem::path& path);

 private:
  RunReport run_internal(const ConcreteWorkflow& workflow, ExecutionService& service,
                         const std::set<std::string>& already_done);

  EngineOptions options_;
};

}  // namespace pga::wms
