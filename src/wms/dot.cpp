#include "wms/dot.hpp"

#include <sstream>

namespace pga::wms {

namespace {

/// DOT identifiers: quote and escape.
std::string quoted(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string to_dot(const AbstractWorkflow& workflow) {
  std::ostringstream os;
  os << "digraph " << quoted(workflow.name()) << " {\n";
  os << "  rankdir=TB;\n  node [shape=ellipse, fontname=\"Helvetica\"];\n";
  for (const auto& job : workflow.jobs()) {
    os << "  " << quoted(job.id) << " [label="
       << quoted(job.id + "\\n(" + job.transformation + ")") << "];\n";
  }
  for (const auto& job : workflow.jobs()) {
    for (const auto& child : workflow.children(job.id)) {
      os << "  " << quoted(job.id) << " -> " << quoted(child) << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const ConcreteWorkflow& workflow) {
  std::ostringstream os;
  os << "digraph " << quoted(workflow.name()) << " {\n";
  os << "  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n";
  for (const auto& job : workflow.jobs()) {
    const char* shape = "ellipse";
    switch (job.kind) {
      case JobKind::kStageIn:
      case JobKind::kStageOut: shape = "parallelogram"; break;
      case JobKind::kSetup:
      case JobKind::kCleanup: shape = "box"; break;
      case JobKind::kCompute:
      case JobKind::kClustered: shape = "ellipse"; break;
    }
    // The Fig. 3 red rectangles: tasks with a download/install step.
    if (job.needs_software_setup) shape = "box";
    os << "  " << quoted(job.id) << " [shape=" << shape << ", label="
       << quoted(job.id + "\\n(" + job.transformation + ")");
    if (job.needs_software_setup) os << ", color=red, fontcolor=red";
    os << "];\n";
  }
  for (const auto& job : workflow.jobs()) {
    for (const auto& child : workflow.children(job.id)) {
      os << "  " << quoted(job.id) << " -> " << quoted(child) << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace pga::wms
