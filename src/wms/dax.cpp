#include "wms/dax.hpp"

#include <algorithm>
#include <string_view>

#include "common/error.hpp"

namespace pga::wms {

using common::InvalidArgument;
using common::WorkflowError;

std::vector<std::string> AbstractJob::inputs() const {
  std::vector<std::string> out;
  for (const auto& use : uses) {
    if (use.link == LinkType::kInput) out.push_back(use.lfn);
  }
  return out;
}

std::vector<std::string> AbstractJob::outputs() const {
  std::vector<std::string> out;
  for (const auto& use : uses) {
    if (use.link == LinkType::kOutput) out.push_back(use.lfn);
  }
  return out;
}

AbstractWorkflow::AbstractWorkflow(std::string name) : name_(std::move(name)) {
  if (name_.empty()) throw InvalidArgument("workflow name must not be empty");
}

std::uint32_t AbstractWorkflow::add_job(AbstractJob job) {
  if (job.id.empty()) throw InvalidArgument("job id must not be empty");
  if (job.transformation.empty()) {
    throw InvalidArgument("job " + job.id + " has no transformation");
  }
  if (ids_.contains(job.id)) throw InvalidArgument("duplicate job id: " + job.id);
  const std::uint32_t handle = ids_.intern(job.id);  // == jobs_.size(): dense
  jobs_.push_back(std::move(job));
  graph_.add_node();
  return handle;
}

void AbstractWorkflow::reserve(std::size_t job_count, std::size_t id_bytes) {
  jobs_.reserve(job_count);
  ids_.reserve(job_count, id_bytes);
  graph_.reserve(job_count);
}

void AbstractWorkflow::add_dependency(const std::string& parent,
                                      const std::string& child) {
  const std::uint32_t p = ids_.find(parent);
  const std::uint32_t c = ids_.find(child);
  if (p == IdTable::kInvalid) throw InvalidArgument("unknown parent job: " + parent);
  if (c == IdTable::kInvalid) throw InvalidArgument("unknown child job: " + child);
  add_dependency(p, c);
}

void AbstractWorkflow::add_dependency(std::uint32_t parent, std::uint32_t child) {
  if (parent >= jobs_.size()) {
    throw InvalidArgument("unknown parent handle: " + std::to_string(parent));
  }
  if (child >= jobs_.size()) {
    throw InvalidArgument("unknown child handle: " + std::to_string(child));
  }
  if (parent == child) throw WorkflowError("self-dependency on " + jobs_[parent].id);
  if (graph_.has_edge(parent, child, ids_)) return;
  if (graph_.path_exists(child, parent)) {
    throw WorkflowError("dependency " + jobs_[parent].id + " -> " +
                        jobs_[child].id + " creates a cycle");
  }
  graph_.add_edge(parent, child, ids_);
}

void AbstractWorkflow::add_edge_pattern(const EdgePattern& pattern) {
  graph_.add_pattern(pattern, ids_);
}

void AbstractWorkflow::infer_dependencies_from_files() {
  // LFNs get their own interner: producer[lfn handle] = producing job.
  IdTable lfns;
  std::vector<std::uint32_t> producer;
  for (const auto& job : jobs_) {
    for (const auto& lfn : job.outputs()) {
      const std::uint32_t f = lfns.intern(lfn);
      if (f >= producer.size()) producer.resize(f + 1, IdTable::kInvalid);
      if (producer[f] != IdTable::kInvalid) {
        throw WorkflowError("file " + lfn + " produced by both " +
                            jobs_[producer[f]].id + " and " + job.id);
      }
      producer[f] = ids_.find(job.id);
    }
  }
  for (const auto& job : jobs_) {
    const std::uint32_t self = ids_.find(job.id);
    for (const auto& use : job.uses) {
      if (use.link != LinkType::kInput) continue;
      const std::uint32_t f = lfns.find(use.lfn);
      if (f == IdTable::kInvalid || f >= producer.size()) continue;
      const std::uint32_t from = producer[f];
      if (from != IdTable::kInvalid && from != self) {
        add_dependency(from, self);
      }
    }
  }
}

const AbstractJob& AbstractWorkflow::job(const std::string& id) const {
  return jobs_[job_index(id)];
}

bool AbstractWorkflow::has_job(const std::string& id) const {
  return ids_.contains(id);
}

std::uint32_t AbstractWorkflow::job_index(const std::string& id) const {
  const std::uint32_t handle = ids_.find(id);
  if (handle == IdTable::kInvalid) throw InvalidArgument("unknown job: " + id);
  return handle;
}

std::vector<std::uint32_t> AbstractWorkflow::parents_of(
    std::uint32_t index) const {
  if (index >= jobs_.size()) {
    throw InvalidArgument("unknown job handle: " + std::to_string(index));
  }
  return graph_.parents_sorted(index, ids_);
}

std::vector<std::uint32_t> AbstractWorkflow::children_of(
    std::uint32_t index) const {
  if (index >= jobs_.size()) {
    throw InvalidArgument("unknown job handle: " + std::to_string(index));
  }
  return graph_.children_sorted(index, ids_);
}

std::vector<std::string> AbstractWorkflow::parents(const std::string& id) const {
  const std::uint32_t index = job_index(id);
  std::vector<std::string> out;
  out.reserve(graph_.parent_count(index));
  graph_.for_each_parent(index, ids_,
                         [&](std::uint32_t h) { out.emplace_back(ids_.name(h)); });
  return out;
}

std::vector<std::string> AbstractWorkflow::children(const std::string& id) const {
  const std::uint32_t index = job_index(id);
  std::vector<std::string> out;
  out.reserve(graph_.child_count(index));
  graph_.for_each_child(index, ids_,
                        [&](std::uint32_t h) { out.emplace_back(ids_.name(h)); });
  return out;
}

std::vector<std::uint32_t> AbstractWorkflow::topological_order_indices() const {
  return graph_.topological_order(ids_, "workflow " + name_);
}

std::vector<std::string> AbstractWorkflow::topological_order() const {
  const auto indices = topological_order_indices();
  std::vector<std::string> order;
  order.reserve(indices.size());
  for (const std::uint32_t h : indices) order.emplace_back(ids_.name(h));
  return order;
}

namespace {

/// Collects every LFN with flags for "some job produces it" / "some job
/// consumes it", then returns the selected side sorted lexicographically
/// (the order the old std::set scan produced).
std::vector<std::string> lfn_frontier(const std::vector<AbstractJob>& jobs,
                                      bool want_produced) {
  IdTable lfns;
  std::vector<char> produced;
  std::vector<char> consumed;
  for (const auto& job : jobs) {
    for (const auto& use : job.uses) {
      const std::uint32_t f = lfns.intern(use.lfn);
      if (f >= produced.size()) {
        produced.resize(f + 1, 0);
        consumed.resize(f + 1, 0);
      }
      (use.link == LinkType::kOutput ? produced[f] : consumed[f]) = 1;
    }
  }
  std::vector<std::string_view> picked;
  for (std::uint32_t f = 0; f < lfns.size(); ++f) {
    const bool take = want_produced ? (produced[f] && !consumed[f])
                                    : (consumed[f] && !produced[f]);
    if (take) picked.push_back(lfns.name(f));
  }
  std::sort(picked.begin(), picked.end());
  return {picked.begin(), picked.end()};
}

}  // namespace

std::vector<std::string> AbstractWorkflow::workflow_inputs() const {
  return lfn_frontier(jobs_, /*want_produced=*/false);
}

std::vector<std::string> AbstractWorkflow::workflow_outputs() const {
  return lfn_frontier(jobs_, /*want_produced=*/true);
}

void AbstractWorkflow::validate() const {
  IdTable lfns;
  std::vector<std::uint32_t> producer;
  for (const auto& job : jobs_) {
    for (const auto& lfn : job.outputs()) {
      const std::uint32_t f = lfns.intern(lfn);
      if (f >= producer.size()) producer.resize(f + 1, IdTable::kInvalid);
      if (producer[f] != IdTable::kInvalid) {
        throw WorkflowError("file " + lfn + " produced by both " +
                            jobs_[producer[f]].id + " and " + job.id);
      }
      producer[f] = ids_.find(job.id);
    }
  }
  (void)topological_order_indices();  // throws on cycles
}

}  // namespace pga::wms
