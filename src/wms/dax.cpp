#include "wms/dax.hpp"

#include <algorithm>
#include <deque>
#include <string_view>

#include "common/error.hpp"

namespace pga::wms {

using common::InvalidArgument;
using common::WorkflowError;

std::vector<std::string> AbstractJob::inputs() const {
  std::vector<std::string> out;
  for (const auto& use : uses) {
    if (use.link == LinkType::kInput) out.push_back(use.lfn);
  }
  return out;
}

std::vector<std::string> AbstractJob::outputs() const {
  std::vector<std::string> out;
  for (const auto& use : uses) {
    if (use.link == LinkType::kOutput) out.push_back(use.lfn);
  }
  return out;
}

AbstractWorkflow::AbstractWorkflow(std::string name) : name_(std::move(name)) {
  if (name_.empty()) throw InvalidArgument("workflow name must not be empty");
}

std::uint32_t AbstractWorkflow::add_job(AbstractJob job) {
  if (job.id.empty()) throw InvalidArgument("job id must not be empty");
  if (job.transformation.empty()) {
    throw InvalidArgument("job " + job.id + " has no transformation");
  }
  if (ids_.contains(job.id)) throw InvalidArgument("duplicate job id: " + job.id);
  const std::uint32_t handle = ids_.intern(job.id);  // == jobs_.size(): dense
  jobs_.push_back(std::move(job));
  children_.emplace_back();
  parents_.emplace_back();
  return handle;
}

bool AbstractWorkflow::path_exists(std::uint32_t from, std::uint32_t to) const {
  if (visit_mark_.size() < jobs_.size()) visit_mark_.resize(jobs_.size(), 0);
  if (++visit_epoch_ == 0) {  // epoch wrapped: old stamps are ambiguous
    std::fill(visit_mark_.begin(), visit_mark_.end(), 0);
    visit_epoch_ = 1;
  }
  const std::uint32_t epoch = visit_epoch_;
  std::vector<std::uint32_t> frontier{from};
  visit_mark_[from] = epoch;
  while (!frontier.empty()) {
    const std::uint32_t current = frontier.back();
    frontier.pop_back();
    if (current == to) return true;
    for (const std::uint32_t next : children_[current]) {
      if (visit_mark_[next] != epoch) {
        visit_mark_[next] = epoch;
        frontier.push_back(next);
      }
    }
  }
  return false;
}

namespace {

/// Inserts `handle` into `list` keeping it sorted by interned name (the
/// order the old std::set<std::string> adjacency iterated in). Returns
/// false for duplicates.
bool insert_sorted_by_name(std::vector<std::uint32_t>& list,
                           std::uint32_t handle, const IdTable& ids) {
  const auto it = std::lower_bound(
      list.begin(), list.end(), handle,
      [&ids](std::uint32_t a, std::uint32_t b) { return ids.name(a) < ids.name(b); });
  if (it != list.end() && *it == handle) return false;
  list.insert(it, handle);
  return true;
}

}  // namespace

void AbstractWorkflow::add_dependency(const std::string& parent,
                                      const std::string& child) {
  const std::uint32_t p = ids_.find(parent);
  const std::uint32_t c = ids_.find(child);
  if (p == IdTable::kInvalid) throw InvalidArgument("unknown parent job: " + parent);
  if (c == IdTable::kInvalid) throw InvalidArgument("unknown child job: " + child);
  add_dependency(p, c);
}

void AbstractWorkflow::add_dependency(std::uint32_t parent, std::uint32_t child) {
  if (parent >= jobs_.size()) {
    throw InvalidArgument("unknown parent handle: " + std::to_string(parent));
  }
  if (child >= jobs_.size()) {
    throw InvalidArgument("unknown child handle: " + std::to_string(child));
  }
  if (parent == child) throw WorkflowError("self-dependency on " + jobs_[parent].id);
  if (std::binary_search(children_[parent].begin(), children_[parent].end(), child,
                         [this](std::uint32_t a, std::uint32_t b) {
                           return ids_.name(a) < ids_.name(b);
                         })) {
    return;
  }
  if (path_exists(child, parent)) {
    throw WorkflowError("dependency " + jobs_[parent].id + " -> " +
                        jobs_[child].id + " creates a cycle");
  }
  insert_sorted_by_name(children_[parent], child, ids_);
  insert_sorted_by_name(parents_[child], parent, ids_);
  ++edge_count_;
}

void AbstractWorkflow::infer_dependencies_from_files() {
  // LFNs get their own interner: producer[lfn handle] = producing job.
  IdTable lfns;
  std::vector<std::uint32_t> producer;
  for (const auto& job : jobs_) {
    for (const auto& lfn : job.outputs()) {
      const std::uint32_t f = lfns.intern(lfn);
      if (f >= producer.size()) producer.resize(f + 1, IdTable::kInvalid);
      if (producer[f] != IdTable::kInvalid) {
        throw WorkflowError("file " + lfn + " produced by both " +
                            jobs_[producer[f]].id + " and " + job.id);
      }
      producer[f] = ids_.find(job.id);
    }
  }
  for (const auto& job : jobs_) {
    const std::uint32_t self = ids_.find(job.id);
    for (const auto& use : job.uses) {
      if (use.link != LinkType::kInput) continue;
      const std::uint32_t f = lfns.find(use.lfn);
      if (f == IdTable::kInvalid || f >= producer.size()) continue;
      const std::uint32_t from = producer[f];
      if (from != IdTable::kInvalid && from != self) {
        add_dependency(from, self);
      }
    }
  }
}

const AbstractJob& AbstractWorkflow::job(const std::string& id) const {
  return jobs_[job_index(id)];
}

bool AbstractWorkflow::has_job(const std::string& id) const {
  return ids_.contains(id);
}

std::uint32_t AbstractWorkflow::job_index(const std::string& id) const {
  const std::uint32_t handle = ids_.find(id);
  if (handle == IdTable::kInvalid) throw InvalidArgument("unknown job: " + id);
  return handle;
}

const std::vector<std::uint32_t>& AbstractWorkflow::parents_of(
    std::uint32_t index) const {
  if (index >= parents_.size()) {
    throw InvalidArgument("unknown job handle: " + std::to_string(index));
  }
  return parents_[index];
}

const std::vector<std::uint32_t>& AbstractWorkflow::children_of(
    std::uint32_t index) const {
  if (index >= children_.size()) {
    throw InvalidArgument("unknown job handle: " + std::to_string(index));
  }
  return children_[index];
}

std::vector<std::string> AbstractWorkflow::parents(const std::string& id) const {
  const auto& list = parents_[job_index(id)];
  std::vector<std::string> out;
  out.reserve(list.size());
  for (const std::uint32_t h : list) out.emplace_back(ids_.name(h));
  return out;
}

std::vector<std::string> AbstractWorkflow::children(const std::string& id) const {
  const auto& list = children_[job_index(id)];
  std::vector<std::string> out;
  out.reserve(list.size());
  for (const std::uint32_t h : list) out.emplace_back(ids_.name(h));
  return out;
}

std::vector<std::uint32_t> AbstractWorkflow::topological_order_indices() const {
  const std::size_t n = jobs_.size();
  std::vector<std::uint32_t> in_degree(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    in_degree[i] = static_cast<std::uint32_t>(parents_[i].size());
  }
  // Seed with roots in insertion order for a stable result.
  std::vector<std::uint32_t> order;
  order.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (in_degree[i] == 0) order.push_back(i);
  }
  // `order` doubles as the Kahn queue: everything before `head` is final.
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (const std::uint32_t kid : children_[order[head]]) {
      if (--in_degree[kid] == 0) order.push_back(kid);
    }
  }
  if (order.size() != n) {
    throw WorkflowError("workflow " + name_ + " contains a cycle");
  }
  return order;
}

std::vector<std::string> AbstractWorkflow::topological_order() const {
  const auto indices = topological_order_indices();
  std::vector<std::string> order;
  order.reserve(indices.size());
  for (const std::uint32_t h : indices) order.emplace_back(ids_.name(h));
  return order;
}

namespace {

/// Collects every LFN with flags for "some job produces it" / "some job
/// consumes it", then returns the selected side sorted lexicographically
/// (the order the old std::set scan produced).
std::vector<std::string> lfn_frontier(const std::vector<AbstractJob>& jobs,
                                      bool want_produced) {
  IdTable lfns;
  std::vector<char> produced;
  std::vector<char> consumed;
  for (const auto& job : jobs) {
    for (const auto& use : job.uses) {
      const std::uint32_t f = lfns.intern(use.lfn);
      if (f >= produced.size()) {
        produced.resize(f + 1, 0);
        consumed.resize(f + 1, 0);
      }
      (use.link == LinkType::kOutput ? produced[f] : consumed[f]) = 1;
    }
  }
  std::vector<std::string_view> picked;
  for (std::uint32_t f = 0; f < lfns.size(); ++f) {
    const bool take = want_produced ? (produced[f] && !consumed[f])
                                    : (consumed[f] && !produced[f]);
    if (take) picked.push_back(lfns.name(f));
  }
  std::sort(picked.begin(), picked.end());
  return {picked.begin(), picked.end()};
}

}  // namespace

std::vector<std::string> AbstractWorkflow::workflow_inputs() const {
  return lfn_frontier(jobs_, /*want_produced=*/false);
}

std::vector<std::string> AbstractWorkflow::workflow_outputs() const {
  return lfn_frontier(jobs_, /*want_produced=*/true);
}

void AbstractWorkflow::validate() const {
  IdTable lfns;
  std::vector<std::uint32_t> producer;
  for (const auto& job : jobs_) {
    for (const auto& lfn : job.outputs()) {
      const std::uint32_t f = lfns.intern(lfn);
      if (f >= producer.size()) producer.resize(f + 1, IdTable::kInvalid);
      if (producer[f] != IdTable::kInvalid) {
        throw WorkflowError("file " + lfn + " produced by both " +
                            jobs_[producer[f]].id + " and " + job.id);
      }
      producer[f] = ids_.find(job.id);
    }
  }
  (void)topological_order_indices();  // throws on cycles
}

}  // namespace pga::wms
