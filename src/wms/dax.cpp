#include "wms/dax.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"

namespace pga::wms {

using common::InvalidArgument;
using common::WorkflowError;

std::vector<std::string> AbstractJob::inputs() const {
  std::vector<std::string> out;
  for (const auto& use : uses) {
    if (use.link == LinkType::kInput) out.push_back(use.lfn);
  }
  return out;
}

std::vector<std::string> AbstractJob::outputs() const {
  std::vector<std::string> out;
  for (const auto& use : uses) {
    if (use.link == LinkType::kOutput) out.push_back(use.lfn);
  }
  return out;
}

AbstractWorkflow::AbstractWorkflow(std::string name) : name_(std::move(name)) {
  if (name_.empty()) throw InvalidArgument("workflow name must not be empty");
}

void AbstractWorkflow::add_job(AbstractJob job) {
  if (job.id.empty()) throw InvalidArgument("job id must not be empty");
  if (job.transformation.empty()) {
    throw InvalidArgument("job " + job.id + " has no transformation");
  }
  if (index_.count(job.id)) throw InvalidArgument("duplicate job id: " + job.id);
  index_.emplace(job.id, jobs_.size());
  jobs_.push_back(std::move(job));
}

bool AbstractWorkflow::path_exists(const std::string& from, const std::string& to) const {
  std::deque<std::string> frontier{from};
  std::set<std::string> seen{from};
  while (!frontier.empty()) {
    const std::string current = std::move(frontier.front());
    frontier.pop_front();
    if (current == to) return true;
    const auto it = children_.find(current);
    if (it == children_.end()) continue;
    for (const auto& next : it->second) {
      if (seen.insert(next).second) frontier.push_back(next);
    }
  }
  return false;
}

void AbstractWorkflow::add_dependency(const std::string& parent,
                                      const std::string& child) {
  if (!index_.count(parent)) throw InvalidArgument("unknown parent job: " + parent);
  if (!index_.count(child)) throw InvalidArgument("unknown child job: " + child);
  if (parent == child) throw WorkflowError("self-dependency on " + parent);
  if (children_.count(parent) && children_.at(parent).count(child)) return;
  if (path_exists(child, parent)) {
    throw WorkflowError("dependency " + parent + " -> " + child + " creates a cycle");
  }
  children_[parent].insert(child);
  parents_[child].insert(parent);
}

void AbstractWorkflow::infer_dependencies_from_files() {
  std::map<std::string, std::string> producer;  // lfn -> job id
  for (const auto& job : jobs_) {
    for (const auto& lfn : job.outputs()) {
      const auto [it, inserted] = producer.emplace(lfn, job.id);
      if (!inserted) {
        throw WorkflowError("file " + lfn + " produced by both " + it->second +
                            " and " + job.id);
      }
    }
  }
  for (const auto& job : jobs_) {
    for (const auto& lfn : job.inputs()) {
      const auto it = producer.find(lfn);
      if (it != producer.end() && it->second != job.id) {
        add_dependency(it->second, job.id);
      }
    }
  }
}

const AbstractJob& AbstractWorkflow::job(const std::string& id) const {
  const auto it = index_.find(id);
  if (it == index_.end()) throw InvalidArgument("unknown job: " + id);
  return jobs_[it->second];
}

bool AbstractWorkflow::has_job(const std::string& id) const {
  return index_.count(id) != 0;
}

std::vector<std::string> AbstractWorkflow::parents(const std::string& id) const {
  if (!index_.count(id)) throw InvalidArgument("unknown job: " + id);
  const auto it = parents_.find(id);
  if (it == parents_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<std::string> AbstractWorkflow::children(const std::string& id) const {
  if (!index_.count(id)) throw InvalidArgument("unknown job: " + id);
  const auto it = children_.find(id);
  if (it == children_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::size_t AbstractWorkflow::edge_count() const {
  std::size_t total = 0;
  for (const auto& [parent, kids] : children_) total += kids.size();
  return total;
}

std::vector<std::string> AbstractWorkflow::topological_order() const {
  std::map<std::string, std::size_t> in_degree;
  for (const auto& job : jobs_) in_degree[job.id] = 0;
  for (const auto& [parent, kids] : children_) {
    for (const auto& kid : kids) ++in_degree[kid];
  }
  // Seed with roots in insertion order for a stable result.
  std::deque<std::string> ready;
  for (const auto& job : jobs_) {
    if (in_degree[job.id] == 0) ready.push_back(job.id);
  }
  std::vector<std::string> order;
  order.reserve(jobs_.size());
  while (!ready.empty()) {
    const std::string current = std::move(ready.front());
    ready.pop_front();
    order.push_back(current);
    const auto it = children_.find(current);
    if (it == children_.end()) continue;
    for (const auto& kid : it->second) {
      if (--in_degree[kid] == 0) ready.push_back(kid);
    }
  }
  if (order.size() != jobs_.size()) {
    throw WorkflowError("workflow " + name_ + " contains a cycle");
  }
  return order;
}

std::vector<std::string> AbstractWorkflow::workflow_inputs() const {
  std::set<std::string> produced;
  std::set<std::string> consumed;
  for (const auto& job : jobs_) {
    for (const auto& lfn : job.outputs()) produced.insert(lfn);
    for (const auto& lfn : job.inputs()) consumed.insert(lfn);
  }
  std::vector<std::string> result;
  for (const auto& lfn : consumed) {
    if (!produced.count(lfn)) result.push_back(lfn);
  }
  return result;
}

std::vector<std::string> AbstractWorkflow::workflow_outputs() const {
  std::set<std::string> produced;
  std::set<std::string> consumed;
  for (const auto& job : jobs_) {
    for (const auto& lfn : job.outputs()) produced.insert(lfn);
    for (const auto& lfn : job.inputs()) consumed.insert(lfn);
  }
  std::vector<std::string> result;
  for (const auto& lfn : produced) {
    if (!consumed.count(lfn)) result.push_back(lfn);
  }
  return result;
}

void AbstractWorkflow::validate() const {
  std::map<std::string, std::string> producer;
  for (const auto& job : jobs_) {
    for (const auto& lfn : job.outputs()) {
      const auto [it, inserted] = producer.emplace(lfn, job.id);
      if (!inserted) {
        throw WorkflowError("file " + lfn + " produced by both " + it->second +
                            " and " + job.id);
      }
    }
  }
  (void)topological_order();  // throws on cycles
}

}  // namespace pga::wms
