// The engine's typed event stream.
//
// Every observable thing DagmanEngine does — a job released, an attempt
// submitted or finished, a retry cooled off, a node blacklisted, the run
// starting or finishing — is published as one EngineEvent on an EventBus.
// The jobstate log, the StatusBoard, the statistics accumulator and the
// trace/plot writers are all observers of that one stream (instead of the
// ad-hoc appends the pre-refactor loop scattered through itself), and
// RunReport is assembled from the same stream by RunReportBuilder.
//
// Event-emission order is part of the engine's contract: under the default
// FIFO policy the JobstateLogObserver reproduces the pre-refactor jobstate
// log byte-for-byte (tests/wms_golden_log_test.cpp pins this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "wms/exec_service.hpp"
#include "wms/id_table.hpp"
#include "wms/status.hpp"

namespace pga::wms {

/// What happened. Doc comments note which optional fields are set.
enum class EngineEventType {
  kRunStarted,      ///< workflow, service, total_jobs
  kJobRescued,      ///< job_id — completed in a previous run, skipped here
  kJobReady,        ///< job_id — all parents done (or retry rescheduled)
  kJobSubmitted,    ///< job_id, attempt (1-based)
  kAttemptFinished, ///< job_id, attempt, result, success
  kJobRetry,        ///< job_id, attempt — failed attempt will be retried
  kJobBackoff,      ///< job_id, backoff_seconds — cooling before the retry
  kAttemptTimedOut, ///< job_id, attempt — engine wrote the attempt off
  kNodeBlacklisted, ///< job_id (the attempt that tripped it), node
  kJobSucceeded,    ///< job_id
  kJobFailed,       ///< job_id, error — retry budget exhausted
  kRunFinished,     ///< success
};

/// Short label ("SUBMIT", "SUCCESS", ...) as used in the jobstate log.
const char* engine_event_name(EngineEventType type);

/// One engine event. `time` is always the service clock at emission.
///
/// Events are deliberately flat and copy-free: the job is carried as its
/// dense workflow handle plus a string_view into the workflow's IdTable, and
/// the other text fields are views into engine-owned storage. All views are
/// valid only during the observer callback (like `result` always was);
/// observers that keep text must copy it. At million-job scale this saves
/// 4+ string allocations per event across the fan-out.
struct EngineEvent {
  /// Sentinel `job` value for run-level events (== IdTable::kInvalid).
  static constexpr std::uint32_t kNoJob = IdTable::kInvalid;

  EngineEventType type = EngineEventType::kRunStarted;
  double time = 0;
  std::uint32_t job = kNoJob;    ///< dense job handle; kNoJob for run-level
  std::string_view job_id;       ///< spelling of `job`; empty for run-level
  int attempt = 0;               ///< 1-based attempt number, 0 if n/a
  bool success = false;          ///< kAttemptFinished / kRunFinished
  const TaskAttempt* result = nullptr;  ///< kAttemptFinished only; valid
                                        ///< only during the callback
  double backoff_seconds = 0;    ///< kJobBackoff
  std::string_view node;         ///< kNodeBlacklisted
  std::string_view error;        ///< kJobFailed / kAttemptTimedOut detail
  std::string_view workflow;     ///< kRunStarted
  std::string_view service;      ///< kRunStarted
  std::size_t total_jobs = 0;    ///< kRunStarted
};

/// Observer interface. Callbacks run synchronously on the engine's thread,
/// in emission order; implementations must not re-enter the engine.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  virtual void on_event(const EngineEvent& event) = 0;
};

/// A plain synchronous fan-out bus. Observers are borrowed, not owned.
class EventBus {
 public:
  void subscribe(EngineObserver* observer);
  void emit(const EngineEvent& event);
  [[nodiscard]] std::size_t observer_count() const { return observers_.size(); }

 private:
  std::vector<EngineObserver*> observers_;
};

/// Formats the DAGMan-style jobstate line ("<t> <job> <EVENT>") for
/// `event` into `line`; returns false (leaving `line` untouched) for event
/// types that don't produce one. Shared by JobstateLogObserver (which
/// stores lines) and the engine's lean-report digest (which hashes them
/// without storing) — one formatter, byte-identical output.
bool format_jobstate_line(const EngineEvent& event, std::string& line);

/// Writes DAGMan-style jobstate lines ("<t> <job> <EVENT>") into a sink
/// vector. Exactly the events the pre-refactor engine logged become lines:
/// RESCUED, SUBMIT/RETRY, SUCCESS, BACKOFF, FAILED, TIMEOUT,
/// BLACKLIST <node>; everything else is ignored.
class JobstateLogObserver final : public EngineObserver {
 public:
  /// `sink` must outlive the observer.
  explicit JobstateLogObserver(std::vector<std::string>& sink) : sink_(&sink) {}
  void on_event(const EngineEvent& event) override;

 private:
  std::vector<std::string>* sink_;
};

/// Adapts a StatusBoard to the event stream (begin, set_state, retry/
/// timeout counters, and the data layer's cache-hit and staged-bytes
/// telemetry) — the pegasus-status consumer.
class StatusBoardObserver final : public EngineObserver {
 public:
  /// `board` must outlive the observer.
  explicit StatusBoardObserver(StatusBoard& board) : board_(&board) {}
  void on_event(const EngineEvent& event) override;

 private:
  StatusBoard* board_;
};

}  // namespace pga::wms
