// pegasus-kickstart invocation records.
//
// Real Pegasus wraps every remote job in pegasus-kickstart, which emits an
// XML "invocation record" of the execution (host, timings, exit status);
// pegasus-statistics is computed from these records. This module provides
// the same provenance layer: one XML record per attempt, serializable to a
// records directory and parseable back into TaskAttempt form.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "wms/engine.hpp"

namespace pga::wms {

/// Renders one attempt as an invocation record, e.g.
///   <invocation job="run_cap3_7" transformation="run_cap3" attempt="2"
///               host="osg-site-3" status="preempted">
///     <timing submit="1200.000" start="1260.500" end="2400.000"
///             wait="60.500" install="300.000" exec="839.500"/>
///   </invocation>
std::string to_invocation_xml(const std::string& job_id, std::size_t attempt_number,
                              const TaskAttempt& attempt);

/// Parsed record: the attempt plus its ordinal.
struct InvocationRecord {
  std::size_t attempt_number = 1;
  TaskAttempt attempt;
};

/// Parses a record produced by to_invocation_xml. Throws ParseError on
/// malformed input.
InvocationRecord from_invocation_xml(const std::string& xml_text);

/// Writes one record file per attempt ("<job>.<attempt>.out.xml", the
/// pegasus-kickstart naming scheme) into `dir`. Returns the paths written.
std::vector<std::filesystem::path> write_invocation_records(
    const RunReport& report, const std::filesystem::path& dir);

/// Loads every "*.out.xml" record in `dir`, sorted by path.
std::vector<InvocationRecord> read_invocation_records(
    const std::filesystem::path& dir);

/// Reconstructs a RunReport from invocation records alone — the provenance
/// path pegasus-statistics actually takes. Attempts are grouped by job and
/// ordered by attempt number; a job succeeded if its last attempt did;
/// start/end times span the records. jobstate_log is not recoverable and
/// stays empty.
RunReport report_from_records(const std::vector<InvocationRecord>& records,
                              const std::string& workflow_name = "from-records");

}  // namespace pga::wms
