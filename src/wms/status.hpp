// pegasus-status equivalent (§III: "After the workflow is submitted, it
// can be monitored using the pegasus-status command that shows information
// about the running jobs and the percentage of finished jobs").
//
// The engine publishes job-state transitions to a StatusBoard; any thread
// may poll a consistent snapshot while a LocalService run is in flight.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace pga::wms {

/// Lifecycle states of one job, DAGMan-style.
enum class JobState {
  kUnready,    ///< waiting on parents
  kReady,      ///< parents done, not yet submitted
  kSubmitted,  ///< attempt in flight
  kSucceeded,
  kFailed,     ///< retries exhausted
  kRescued,    ///< completed in a previous run
};

/// Returns a short label ("READY", "RUN", ...).
const char* job_state_name(JobState state);

/// Thread-safe aggregation of workflow progress.
class StatusBoard {
 public:
  /// Consistent view of progress at one instant.
  struct Snapshot {
    std::size_t total = 0;
    std::size_t unready = 0;
    std::size_t ready = 0;
    std::size_t submitted = 0;
    std::size_t succeeded = 0;
    std::size_t failed = 0;
    std::size_t rescued = 0;
    std::size_t retries = 0;
    std::size_t timeouts = 0;  ///< attempts the engine declared timed out
    std::size_t cache_hits = 0;  ///< software setups served warm (data layer)
    std::uint64_t bytes_staged = 0;  ///< payload moved by modeled staging

    /// Finished fraction in [0, 100] (succeeded + rescued + failed).
    [[nodiscard]] double percent_done() const;
    /// One-line pegasus-status-style rendering.
    [[nodiscard]] std::string render() const;
  };

  /// Resets the board for a workflow of `total_jobs` jobs (engine calls
  /// this at run start).
  void begin(const std::string& workflow, std::size_t total_jobs);

  /// Records a state transition for `job` (engine calls these).
  void set_state(const std::string& job, JobState state);
  /// Counts one retry (job goes back to kReady separately).
  void count_retry();
  /// Counts one attempt declared dead by the engine's attempt timeout.
  void count_timeout();
  /// Counts one software setup served warm from a node cache.
  void count_cache_hit();
  /// Adds staged payload bytes from a finished transfer attempt.
  void add_staged_bytes(std::uint64_t bytes);

  /// Point-in-time copy; safe to call from any thread at any moment.
  [[nodiscard]] Snapshot snapshot() const;
  /// Name of the workflow being tracked ("" before begin()).
  [[nodiscard]] std::string workflow() const;
  /// State of one job (kUnready if unknown).
  [[nodiscard]] JobState state_of(const std::string& job) const;

 private:
  mutable std::mutex mutex_;
  std::string workflow_;
  std::size_t total_ = 0;
  std::size_t retries_ = 0;
  std::size_t timeouts_ = 0;
  std::size_t cache_hits_ = 0;
  std::uint64_t bytes_staged_ = 0;
  std::map<std::string, JobState> states_;
};

}  // namespace pga::wms
