#include "wms/events.hpp"

#include <string>

#include "common/strings.hpp"

namespace pga::wms {

const char* engine_event_name(EngineEventType type) {
  switch (type) {
    case EngineEventType::kRunStarted: return "RUN_STARTED";
    case EngineEventType::kJobRescued: return "RESCUED";
    case EngineEventType::kJobReady: return "READY";
    case EngineEventType::kJobSubmitted: return "SUBMIT";
    case EngineEventType::kAttemptFinished: return "ATTEMPT_FINISHED";
    case EngineEventType::kJobRetry: return "RETRY";
    case EngineEventType::kJobBackoff: return "BACKOFF";
    case EngineEventType::kAttemptTimedOut: return "TIMEOUT";
    case EngineEventType::kNodeBlacklisted: return "BLACKLIST";
    case EngineEventType::kJobSucceeded: return "SUCCESS";
    case EngineEventType::kJobFailed: return "FAILED";
    case EngineEventType::kRunFinished: return "RUN_FINISHED";
  }
  return "?";
}

void EventBus::subscribe(EngineObserver* observer) {
  if (observer != nullptr) observers_.push_back(observer);
}

void EventBus::emit(const EngineEvent& event) {
  for (EngineObserver* observer : observers_) observer->on_event(event);
}

bool format_jobstate_line(const EngineEvent& event, std::string& line) {
  std::string_view text;
  std::string_view suffix;  // only BLACKLIST carries one (the node)
  switch (event.type) {
    case EngineEventType::kJobRescued: text = "RESCUED"; break;
    case EngineEventType::kJobSubmitted:
      text = event.attempt == 1 ? "SUBMIT" : "RETRY";
      break;
    case EngineEventType::kJobSucceeded: text = "SUCCESS"; break;
    case EngineEventType::kJobBackoff: text = "BACKOFF"; break;
    case EngineEventType::kJobFailed: text = "FAILED"; break;
    case EngineEventType::kAttemptTimedOut: text = "TIMEOUT"; break;
    case EngineEventType::kNodeBlacklisted:
      text = "BLACKLIST";
      suffix = event.node;
      break;
    default: return false;  // not a jobstate line
  }
  // One string build, no stringstream: this runs once per logged event and
  // dominated the observer fan-out's allocation profile at scale.
  line = common::format_fixed(event.time, 3);
  line.reserve(line.size() + event.job_id.size() + text.size() + suffix.size() + 3);
  line += ' ';
  line += event.job_id;
  line += ' ';
  line += text;
  if (!suffix.empty()) {
    line += ' ';
    line += suffix;
  }
  return true;
}

void JobstateLogObserver::on_event(const EngineEvent& event) {
  std::string line;
  if (format_jobstate_line(event, line)) sink_->push_back(std::move(line));
}

void StatusBoardObserver::on_event(const EngineEvent& event) {
  switch (event.type) {
    case EngineEventType::kRunStarted:
      board_->begin(std::string(event.workflow), event.total_jobs);
      break;
    case EngineEventType::kJobRescued:
      board_->set_state(std::string(event.job_id), JobState::kRescued);
      break;
    case EngineEventType::kJobReady:
      board_->set_state(std::string(event.job_id), JobState::kReady);
      break;
    case EngineEventType::kJobSubmitted:
      board_->set_state(std::string(event.job_id), JobState::kSubmitted);
      break;
    case EngineEventType::kJobRetry:
      board_->count_retry();
      break;
    case EngineEventType::kAttemptFinished:
      // Data-layer telemetry; both fields are zero/false without the cache
      // and staging models, leaving stock snapshots untouched.
      if (event.result != nullptr) {
        if (event.result->install_cache_hit) board_->count_cache_hit();
        if (event.result->transferred_bytes > 0) {
          board_->add_staged_bytes(event.result->transferred_bytes);
        }
      }
      break;
    case EngineEventType::kAttemptTimedOut:
      board_->count_timeout();
      break;
    case EngineEventType::kJobSucceeded:
      board_->set_state(std::string(event.job_id), JobState::kSucceeded);
      break;
    case EngineEventType::kJobFailed:
      board_->set_state(std::string(event.job_id), JobState::kFailed);
      break;
    default:
      break;
  }
}

}  // namespace pga::wms
