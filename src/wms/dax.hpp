// Abstract workflows — the DAX layer of the Pegasus model.
//
// An abstract workflow names *logical* transformations and files only; it
// knows nothing about sites, physical paths, or software setup. The
// planner (planner.hpp) maps it onto a concrete, executable workflow.
//
// Jobs are interned: every id maps to a dense u32 handle (IdTable) and the
// dependency graph is stored as flat per-node adjacency vectors of handles
// instead of string-keyed map<set> — one hash probe per touch instead of
// O(log n) string compares. The string-based parents()/children()/
// topological_order() remain as thin shims over the handle layout and
// preserve the original sorted-id ordering exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wms/id_table.hpp"

namespace pga::wms {

/// Direction of a file use.
enum class LinkType { kInput, kOutput };

/// One logical-file usage by a job.
struct FileUse {
  std::string lfn;  ///< logical file name, e.g. "alignments.out"
  LinkType link = LinkType::kInput;

  friend bool operator==(const FileUse&, const FileUse&) = default;
};

/// One abstract job (a DAX <job> element).
struct AbstractJob {
  std::string id;              ///< unique within the workflow, e.g. "split"
  std::string transformation;  ///< logical executable name
  std::vector<std::string> args;
  std::vector<FileUse> uses;
  /// Cost-model hint: CPU-seconds of work at reference speed. Carried into
  /// the concrete workflow for simulated execution.
  double cpu_seconds_hint = 0;

  [[nodiscard]] std::vector<std::string> inputs() const;
  [[nodiscard]] std::vector<std::string> outputs() const;
};

/// A directed acyclic graph of abstract jobs.
class AbstractWorkflow {
 public:
  explicit AbstractWorkflow(std::string name);

  /// Adds a job; throws InvalidArgument on duplicate or empty id. Returns
  /// the job's dense handle (== position in jobs()).
  std::uint32_t add_job(AbstractJob job);

  /// Adds an explicit parent -> child edge; both ids must exist; duplicate
  /// edges are ignored. Throws WorkflowError if the edge creates a cycle.
  void add_dependency(const std::string& parent, const std::string& child);
  /// Handle-based edge insertion — no id lookups, for bulk graph builds.
  void add_dependency(std::uint32_t parent, std::uint32_t child);

  /// Derives edges from data flow: if job A outputs an LFN that job B
  /// inputs, adds A -> B. Call after all jobs are added (Pegasus does the
  /// same from <uses> declarations).
  void infer_dependencies_from_files();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<AbstractJob>& jobs() const { return jobs_; }
  [[nodiscard]] const AbstractJob& job(const std::string& id) const;
  [[nodiscard]] bool has_job(const std::string& id) const;

  // ----------------------------------------------------- handle interface
  /// Dense handle of `id` (its position in jobs()); throws InvalidArgument
  /// for unknown ids.
  [[nodiscard]] std::uint32_t job_index(const std::string& id) const;
  /// The job-id interner; handle h names jobs()[h].id.
  [[nodiscard]] const IdTable& ids() const { return ids_; }
  /// Parent handles of `index`, sorted by parent id.
  [[nodiscard]] const std::vector<std::uint32_t>& parents_of(std::uint32_t index) const;
  /// Child handles of `index`, sorted by child id.
  [[nodiscard]] const std::vector<std::uint32_t>& children_of(std::uint32_t index) const;
  /// Kahn topological order over handles; same sequence as
  /// topological_order() maps to.
  [[nodiscard]] std::vector<std::uint32_t> topological_order_indices() const;

  // ------------------------------------------------- string compatibility
  /// Parents of `id` (sorted).
  [[nodiscard]] std::vector<std::string> parents(const std::string& id) const;
  /// Children of `id` (sorted).
  [[nodiscard]] std::vector<std::string> children(const std::string& id) const;
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  /// Kahn topological order; throws WorkflowError if the graph is cyclic
  /// (cannot normally happen — add_dependency rejects cycles).
  [[nodiscard]] std::vector<std::string> topological_order() const;

  /// LFNs consumed by some job but produced by none: the workflow's
  /// external inputs (must come from the replica catalog).
  [[nodiscard]] std::vector<std::string> workflow_inputs() const;

  /// LFNs produced but never consumed: the workflow's final outputs.
  [[nodiscard]] std::vector<std::string> workflow_outputs() const;

  /// Sanity checks: every LFN has at most one producer. Throws
  /// WorkflowError with a description of the first violation.
  void validate() const;

 private:
  std::string name_;
  std::vector<AbstractJob> jobs_;
  IdTable ids_;  // job id -> handle == index into jobs_
  /// Flat adjacency by handle, each list sorted by the neighbour's id so
  /// the string shims (and everything ordered on top of them) see exactly
  /// the order the old map<string, set<string>> produced.
  std::vector<std::vector<std::uint32_t>> children_;
  std::vector<std::vector<std::uint32_t>> parents_;
  std::size_t edge_count_ = 0;
  /// Cycle-check scratch: epoch-stamped visit marks so each BFS touches
  /// only the nodes it reaches instead of clearing an O(n) bitmap per edge.
  mutable std::vector<std::uint32_t> visit_mark_;
  mutable std::uint32_t visit_epoch_ = 0;

  [[nodiscard]] bool path_exists(std::uint32_t from, std::uint32_t to) const;
};

}  // namespace pga::wms
