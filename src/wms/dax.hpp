// Abstract workflows — the DAX layer of the Pegasus model.
//
// An abstract workflow names *logical* transformations and files only; it
// knows nothing about sites, physical paths, or software setup. The
// planner (planner.hpp) maps it onto a concrete, executable workflow.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace pga::wms {

/// Direction of a file use.
enum class LinkType { kInput, kOutput };

/// One logical-file usage by a job.
struct FileUse {
  std::string lfn;  ///< logical file name, e.g. "alignments.out"
  LinkType link = LinkType::kInput;

  friend bool operator==(const FileUse&, const FileUse&) = default;
};

/// One abstract job (a DAX <job> element).
struct AbstractJob {
  std::string id;              ///< unique within the workflow, e.g. "split"
  std::string transformation;  ///< logical executable name
  std::vector<std::string> args;
  std::vector<FileUse> uses;
  /// Cost-model hint: CPU-seconds of work at reference speed. Carried into
  /// the concrete workflow for simulated execution.
  double cpu_seconds_hint = 0;

  [[nodiscard]] std::vector<std::string> inputs() const;
  [[nodiscard]] std::vector<std::string> outputs() const;
};

/// A directed acyclic graph of abstract jobs.
class AbstractWorkflow {
 public:
  explicit AbstractWorkflow(std::string name);

  /// Adds a job; throws InvalidArgument on duplicate or empty id.
  void add_job(AbstractJob job);

  /// Adds an explicit parent -> child edge; both ids must exist; duplicate
  /// edges are ignored. Throws WorkflowError if the edge creates a cycle.
  void add_dependency(const std::string& parent, const std::string& child);

  /// Derives edges from data flow: if job A outputs an LFN that job B
  /// inputs, adds A -> B. Call after all jobs are added (Pegasus does the
  /// same from <uses> declarations).
  void infer_dependencies_from_files();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<AbstractJob>& jobs() const { return jobs_; }
  [[nodiscard]] const AbstractJob& job(const std::string& id) const;
  [[nodiscard]] bool has_job(const std::string& id) const;

  /// Parents of `id` (sorted).
  [[nodiscard]] std::vector<std::string> parents(const std::string& id) const;
  /// Children of `id` (sorted).
  [[nodiscard]] std::vector<std::string> children(const std::string& id) const;
  [[nodiscard]] std::size_t edge_count() const;

  /// Kahn topological order; throws WorkflowError if the graph is cyclic
  /// (cannot normally happen — add_dependency rejects cycles).
  [[nodiscard]] std::vector<std::string> topological_order() const;

  /// LFNs consumed by some job but produced by none: the workflow's
  /// external inputs (must come from the replica catalog).
  [[nodiscard]] std::vector<std::string> workflow_inputs() const;

  /// LFNs produced but never consumed: the workflow's final outputs.
  [[nodiscard]] std::vector<std::string> workflow_outputs() const;

  /// Sanity checks: every LFN has at most one producer. Throws
  /// WorkflowError with a description of the first violation.
  void validate() const;

 private:
  std::string name_;
  std::vector<AbstractJob> jobs_;
  std::map<std::string, std::size_t> index_;           // id -> jobs_ index
  std::map<std::string, std::set<std::string>> children_;
  std::map<std::string, std::set<std::string>> parents_;

  [[nodiscard]] bool path_exists(const std::string& from, const std::string& to) const;
};

}  // namespace pga::wms
