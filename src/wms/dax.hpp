// Abstract workflows — the DAX layer of the Pegasus model.
//
// An abstract workflow names *logical* transformations and files only; it
// knows nothing about sites, physical paths, or software setup. The
// planner (planner.hpp) maps it onto a concrete, executable workflow.
//
// Jobs are interned: every id maps to a dense u32 handle (IdTable) and the
// dependency graph lives in a WorkflowGraph — a sparse explicit adjacency
// plus O(1)-storage EdgePatterns for regular fan-out/fan-in
// (edge_pattern.hpp). The string-based parents()/children()/
// topological_order() remain as thin shims over the handle layout and
// preserve the original sorted-id ordering exactly, whether an edge is
// stored explicitly or arithmetically.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "wms/edge_pattern.hpp"
#include "wms/id_table.hpp"

namespace pga::wms {

/// Direction of a file use.
enum class LinkType { kInput, kOutput };

/// One logical-file usage by a job.
struct FileUse {
  std::string lfn;  ///< logical file name, e.g. "alignments.out"
  LinkType link = LinkType::kInput;

  friend bool operator==(const FileUse&, const FileUse&) = default;
};

/// One abstract job (a DAX <job> element).
struct AbstractJob {
  std::string id;              ///< unique within the workflow, e.g. "split"
  std::string transformation;  ///< logical executable name
  std::vector<std::string> args;
  std::vector<FileUse> uses;
  /// Cost-model hint: CPU-seconds of work at reference speed. Carried into
  /// the concrete workflow for simulated execution.
  double cpu_seconds_hint = 0;

  [[nodiscard]] std::vector<std::string> inputs() const;
  [[nodiscard]] std::vector<std::string> outputs() const;
};

/// A directed acyclic graph of abstract jobs.
class AbstractWorkflow {
 public:
  explicit AbstractWorkflow(std::string name);

  /// Adds a job; throws InvalidArgument on duplicate or empty id. Returns
  /// the job's dense handle (== position in jobs()).
  std::uint32_t add_job(AbstractJob job);

  /// Pre-sizes the job vector, interner arena and adjacency index for
  /// `job_count` jobs whose ids total ~`id_bytes` — kills realloc/rehash
  /// churn in million-job builds.
  void reserve(std::size_t job_count, std::size_t id_bytes);

  /// Adds an explicit parent -> child edge; both ids must exist; duplicate
  /// edges are ignored (including edges a pattern already covers). Throws
  /// WorkflowError if the edge creates a cycle.
  void add_dependency(const std::string& parent, const std::string& child);
  /// Handle-based edge insertion — no id lookups, for bulk graph builds.
  void add_dependency(std::uint32_t parent, std::uint32_t child);

  /// Adds a whole arithmetic family of edges in O(1) storage. All endpoint
  /// handles must already exist and each strided side must ascend in name
  /// order (zero-padded ids); see WorkflowGraph::add_pattern for the
  /// validation rules. No cycle check — validate() catches cycles.
  void add_edge_pattern(const EdgePattern& pattern);
  [[nodiscard]] const std::vector<EdgePattern>& edge_patterns() const {
    return graph_.patterns();
  }

  /// Derives edges from data flow: if job A outputs an LFN that job B
  /// inputs, adds A -> B. Call after all jobs are added (Pegasus does the
  /// same from <uses> declarations).
  void infer_dependencies_from_files();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<AbstractJob>& jobs() const { return jobs_; }
  [[nodiscard]] const AbstractJob& job(const std::string& id) const;
  [[nodiscard]] bool has_job(const std::string& id) const;

  // ----------------------------------------------------- handle interface
  /// Dense handle of `id` (its position in jobs()); throws InvalidArgument
  /// for unknown ids.
  [[nodiscard]] std::uint32_t job_index(const std::string& id) const;
  /// The job-id interner; handle h names jobs()[h].id.
  [[nodiscard]] const IdTable& ids() const { return ids_; }
  /// Parent handles of `index`, sorted by parent id (materialized — use
  /// for_each_parent/parent_count on hot paths).
  [[nodiscard]] std::vector<std::uint32_t> parents_of(std::uint32_t index) const;
  /// Child handles of `index`, sorted by child id.
  [[nodiscard]] std::vector<std::uint32_t> children_of(std::uint32_t index) const;
  [[nodiscard]] std::size_t parent_count(std::uint32_t index) const {
    return graph_.parent_count(index);
  }
  [[nodiscard]] std::size_t child_count(std::uint32_t index) const {
    return graph_.child_count(index);
  }
  /// Visits children/parents of `index` in neighbour-name order without
  /// materializing a list.
  template <typename Fn>
  void for_each_child(std::uint32_t index, Fn&& fn) const {
    graph_.for_each_child(index, ids_, std::forward<Fn>(fn));
  }
  template <typename Fn>
  void for_each_parent(std::uint32_t index, Fn&& fn) const {
    graph_.for_each_parent(index, ids_, std::forward<Fn>(fn));
  }
  /// The underlying pattern-compressed graph (planner bulk copies).
  [[nodiscard]] const WorkflowGraph& graph() const { return graph_; }
  /// Kahn topological order over handles; same sequence as
  /// topological_order() maps to.
  [[nodiscard]] std::vector<std::uint32_t> topological_order_indices() const;

  // ------------------------------------------------- string compatibility
  /// Parents of `id` (sorted).
  [[nodiscard]] std::vector<std::string> parents(const std::string& id) const;
  /// Children of `id` (sorted).
  [[nodiscard]] std::vector<std::string> children(const std::string& id) const;
  [[nodiscard]] std::size_t edge_count() const { return graph_.edge_count(); }

  /// Kahn topological order; throws WorkflowError if the graph is cyclic
  /// (cannot normally happen — add_dependency rejects cycles; patterns are
  /// only checked here).
  [[nodiscard]] std::vector<std::string> topological_order() const;

  /// LFNs consumed by some job but produced by none: the workflow's
  /// external inputs (must come from the replica catalog).
  [[nodiscard]] std::vector<std::string> workflow_inputs() const;

  /// LFNs produced but never consumed: the workflow's final outputs.
  [[nodiscard]] std::vector<std::string> workflow_outputs() const;

  /// Sanity checks: every LFN has at most one producer, graph acyclic.
  /// Throws WorkflowError with a description of the first violation.
  void validate() const;

 private:
  std::string name_;
  std::vector<AbstractJob> jobs_;
  IdTable ids_;  // job id -> handle == index into jobs_
  WorkflowGraph graph_;
};

}  // namespace pga::wms
