#include "wms/exec_service.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"

namespace pga::wms {

// ---------------------------------------------------------- LocalService

LocalService::LocalService(std::size_t slots, JobRunner runner)
    : runner_(std::move(runner)), executor_(slots) {
  if (!runner_) throw common::InvalidArgument("LocalService: null runner");
}

void LocalService::submit(const ConcreteJob& job) {
  {
    const std::scoped_lock lock(mutex_);
    ++outstanding_;
  }
  const double submit_time = clock_.seconds();
  // The future from the executor is intentionally dropped: completion is
  // delivered through the queue below instead.
  (void)executor_.submit([this, job, submit_time] {
    TaskAttempt attempt;
    attempt.job_id = job.id;
    attempt.job = job.index;
    attempt.transformation = job.transformation;
    attempt.node = "local";
    attempt.submit_time = submit_time;
    const double start = clock_.seconds();
    attempt.wait_seconds = start - submit_time;
    try {
      runner_(job);
      attempt.success = true;
    } catch (const std::exception& e) {
      attempt.success = false;
      attempt.error = e.what();
    } catch (...) {
      attempt.success = false;
      attempt.error = "unknown exception";
    }
    attempt.end_time = clock_.seconds();
    attempt.exec_seconds = attempt.end_time - start;
    {
      const std::scoped_lock lock(mutex_);
      completed_.push_back(std::move(attempt));
      --outstanding_;
    }
    cv_.notify_all();
  });
}

std::vector<TaskAttempt> LocalService::drain_locked() {
  std::vector<TaskAttempt> out(std::make_move_iterator(completed_.begin()),
                               std::make_move_iterator(completed_.end()));
  completed_.clear();
  return out;
}

std::vector<TaskAttempt> LocalService::wait() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return !completed_.empty() || outstanding_ == 0; });
  return drain_locked();
}

std::vector<TaskAttempt> LocalService::wait_for(double timeout_seconds) {
  std::unique_lock lock(mutex_);
  // Unlike wait(), sleep out the full deadline even with nothing
  // outstanding: a decorator above us may have swallowed the attempt (a
  // hung job), and the engine relies on this call consuming wall time.
  cv_.wait_for(lock, std::chrono::duration<double>(std::max(0.0, timeout_seconds)),
               [this] { return !completed_.empty(); });
  return drain_locked();
}

double LocalService::now() { return clock_.seconds(); }

// ------------------------------------------------------------ SimService

SimService::SimService(sim::EventQueue& queue, sim::ExecutionPlatform& platform)
    : queue_(queue), platform_(platform) {}

void SimService::submit(const ConcreteJob& job) {
  ++outstanding_;
  sim::SimJob sim_job;
  sim_job.id = job.id;
  sim_job.transformation = job.transformation;
  sim_job.cpu_seconds = job.cpu_seconds_hint;
  sim_job.needs_software_setup = job.needs_software_setup;
  sim_job.software_bytes = job.software_bytes;
  platform_.submit(sim_job, [this](const sim::AttemptResult& result) {
    TaskAttempt attempt;
    attempt.job_id = result.job_id;
    attempt.transformation = result.transformation;
    attempt.success = result.success;
    attempt.error = result.failure;
    attempt.node = result.node;
    attempt.submit_time = result.submit_time;
    attempt.end_time = result.end_time;
    attempt.wait_seconds = result.wait_seconds;
    attempt.install_seconds = result.install_seconds;
    attempt.exec_seconds = result.exec_seconds;
    attempt.install_cache_hit = result.install_cache_hit;
    completed_.push_back(std::move(attempt));
    --outstanding_;
  });
}

void SimService::pump(std::optional<double> deadline) {
  if (!deadline.has_value()) {
    // Advance simulated time until at least one completion lands.
    while (completed_.empty() && outstanding_ > 0) {
      if (!queue_.step()) {
        throw common::WorkflowError(
            "simulation deadlock: outstanding jobs but no pending events");
      }
    }
    return;
  }
  while (completed_.empty()) {
    const auto next = queue_.next_time();
    if (!next.has_value() || *next > *deadline) break;
    queue_.step();
  }
  if (completed_.empty()) {
    // Nothing landed by the deadline: burn the remaining simulated time so
    // the engine's clock reaches it (even when nothing is scheduled at all,
    // e.g. every outstanding attempt was swallowed by a fault injector).
    queue_.advance_to(*deadline);
  }
}

std::vector<TaskAttempt> SimService::take_completed() {
  std::vector<TaskAttempt> out(std::make_move_iterator(completed_.begin()),
                               std::make_move_iterator(completed_.end()));
  completed_.clear();
  return out;
}

std::vector<TaskAttempt> SimService::wait() {
  pump(std::nullopt);
  return take_completed();
}

std::vector<TaskAttempt> SimService::wait_for(double timeout_seconds) {
  pump(queue_.now() + std::max(0.0, timeout_seconds));
  return take_completed();
}

double SimService::now() { return queue_.now(); }

}  // namespace pga::wms
