// Minimal XML reading/writing shared by the DAX and kickstart formats.
//
// Supports the subset this library emits: elements, attributes, character
// data, self-closing tags, and prologs/comments (skipped). No namespaces,
// CDATA or processing instructions.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace pga::wms::xml {

/// One parsed element.
struct Element {
  std::string name;
  std::map<std::string, std::string> attrs;
  std::string text;  ///< concatenated character data
  std::vector<Element> children;

  /// First child with the given name; nullptr if absent.
  [[nodiscard]] const Element* child(const std::string& name) const;
  /// Attribute value; throws ParseError if absent.
  [[nodiscard]] const std::string& attr(const std::string& name) const;
  [[nodiscard]] bool has_attr(const std::string& name) const;
};

/// Parses a document (prolog and comments tolerated); returns the root.
/// Throws ParseError on malformed input.
Element parse_document(const std::string& input);

/// Escapes &<>"' for attribute/text contexts.
std::string escape(const std::string& text);

/// Reverses escape(); throws ParseError on unknown entities.
std::string unescape(const std::string& text);

}  // namespace pga::wms::xml
