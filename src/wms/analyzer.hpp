// pegasus-analyzer / pegasus-plots equivalents (§III: "The whole workflow
// and the failed jobs can be debugged using the pegasus-analyzer tool ...
// the resulting data can be summarized using pegasus-statistics and
// pegasus-plots").
//
// Works over the engine's RunReport: failure triage, an ASCII Gantt
// timeline of job execution, slot-utilization series, and CSV trace export
// for external plotting.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "wms/engine.hpp"
#include "wms/events.hpp"
#include "wms/id_table.hpp"

namespace pga::wms {

/// One failed job's triage entry.
struct FailureDiagnosis {
  std::string job_id;
  std::string transformation;
  std::size_t attempts = 0;
  std::string last_error;
  double wasted_seconds = 0;  ///< badput across failed attempts
  /// Jobs that could not run because this one died (direct children).
  std::vector<std::string> blocked_children;
};

/// Analysis of a (possibly failed) run.
struct Analysis {
  bool success = false;
  std::size_t jobs_total = 0;
  std::size_t jobs_succeeded = 0;
  std::size_t jobs_failed = 0;
  std::size_t jobs_never_ran = 0;  ///< blocked behind failures
  std::vector<FailureDiagnosis> failures;
};

/// Triage a run against its workflow (for blocked-children resolution).
Analysis analyze_run(const RunReport& report, const ConcreteWorkflow& workflow);

/// pegasus-analyzer-style text report.
std::string render_analysis(const Analysis& analysis);

/// Options for the ASCII Gantt timeline.
struct TimelineOptions {
  std::size_t width = 80;        ///< columns for the time axis
  std::size_t max_rows = 60;     ///< truncate very wide workflows
  bool include_waiting = true;   ///< draw the waiting segment ('.') before
                                 ///< execution ('#'); failed attempts are 'x'
};

/// Renders one row per job: id, then a time-scaled bar. Jobs are ordered
/// by first submit time. Example:
///   split        |..##                |
///   run_cap3_0   |    .....###########|
std::string render_timeline(const RunReport& report, const TimelineOptions& options = {});

/// One step of the slot-utilization curve.
struct UtilizationSample {
  double time = 0;          ///< sample start
  std::size_t running = 0;  ///< attempts executing at this time
};

/// Piecewise-constant count of concurrently executing attempts, sampled at
/// every attempt start/end (successful and failed alike).
std::vector<UtilizationSample> utilization(const RunReport& report);

/// Peak concurrently-running attempts.
std::size_t peak_utilization(const RunReport& report);

/// Collects per-attempt trace records for the plot/trace writers — either
/// live, as an engine-event observer (EngineOptions.observers), or after the
/// fact from a finished report via ingest(). Both paths produce the same
/// rows; attempts_csv() is implemented on top of this. Reusable: observing
/// kRunStarted resets the collection.
class TraceCollector final : public EngineObserver {
 public:
  void on_event(const EngineEvent& event) override;
  /// Replays every recorded attempt of a finished report into the trace.
  void ingest(const RunReport& report);
  /// CSV with one row per attempt, jobs in id order:
  ///   job,transformation,attempt,success,node,submit,start,end,wait,install,exec
  [[nodiscard]] std::string csv() const;
  [[nodiscard]] std::size_t attempt_count() const;

 private:
  struct JobTrace {
    std::string id;
    std::string transformation;
    std::vector<TaskAttempt> attempts;
  };
  /// Jobs in first-seen order, interned by id; csv() sorts by id at render
  /// time (the order the old map produced).
  IdTable ids_;
  std::vector<JobTrace> jobs_;
};

/// Exports per-attempt rows as CSV (TraceCollector::csv over one report):
///   job,transformation,attempt,success,node,submit,start,end,wait,install,exec
std::string attempts_csv(const RunReport& report);

}  // namespace pga::wms
