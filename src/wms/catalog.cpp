#include "wms/catalog.hpp"

#include <tuple>

#include "common/error.hpp"

namespace pga::wms {

void ReplicaCatalog::add(const std::string& lfn, Replica replica) {
  if (lfn.empty()) throw common::InvalidArgument("empty LFN");
  entries_[lfn].push_back(std::move(replica));
}

std::vector<Replica> ReplicaCatalog::lookup(const std::string& lfn) const {
  const auto it = entries_.find(lfn);
  return it == entries_.end() ? std::vector<Replica>{} : it->second;
}

std::optional<Replica> ReplicaCatalog::best_for_site(const std::string& lfn,
                                                     const std::string& site) const {
  const auto it = entries_.find(lfn);
  if (it == entries_.end() || it->second.empty()) return std::nullopt;
  // Deterministic selection regardless of insertion order: the same-site
  // replica with the lexicographically smallest pfn wins; with no same-site
  // replica, the smallest (site, pfn) pair anywhere does.
  const Replica* local = nullptr;
  const Replica* any = nullptr;
  for (const auto& replica : it->second) {
    if (replica.site == site && (local == nullptr || replica.pfn < local->pfn)) {
      local = &replica;
    }
    if (any == nullptr || std::tie(replica.site, replica.pfn) <
                              std::tie(any->site, any->pfn)) {
      any = &replica;
    }
  }
  return local != nullptr ? *local : *any;
}

bool ReplicaCatalog::has(const std::string& lfn) const {
  return entries_.count(lfn) != 0;
}

void TransformationCatalog::add(const std::string& transformation,
                                const std::string& site, TransformationEntry entry) {
  if (transformation.empty()) throw common::InvalidArgument("empty transformation");
  entries_[{transformation, site}] = std::move(entry);
}

std::optional<TransformationEntry> TransformationCatalog::lookup(
    const std::string& transformation, const std::string& site) const {
  const auto it = entries_.find({transformation, site});
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool TransformationCatalog::available(const std::string& transformation,
                                      const std::string& site) const {
  return entries_.count({transformation, site}) != 0;
}

void SiteCatalog::add(SiteEntry site) {
  if (site.name.empty()) throw common::InvalidArgument("empty site name");
  sites_[site.name] = std::move(site);
}

const SiteEntry& SiteCatalog::site(const std::string& name) const {
  const auto it = sites_.find(name);
  if (it == sites_.end()) throw common::InvalidArgument("unknown site: " + name);
  return it->second;
}

bool SiteCatalog::has(const std::string& name) const { return sites_.count(name) != 0; }

std::vector<std::string> SiteCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [name, entry] : sites_) out.push_back(name);
  return out;
}

}  // namespace pga::wms
