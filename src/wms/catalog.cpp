#include "wms/catalog.hpp"

#include <algorithm>
#include <tuple>

#include "common/digest.hpp"
#include "common/error.hpp"

namespace pga::wms {

ReplicaCatalog::Shard& ReplicaCatalog::shard_for(std::string_view lfn) {
  return shards_[common::fnv1a(lfn) & (kShards - 1)];
}

const ReplicaCatalog::Shard& ReplicaCatalog::shard_for(std::string_view lfn) const {
  return shards_[common::fnv1a(lfn) & (kShards - 1)];
}

void ReplicaCatalog::add(const std::string& lfn, Replica replica) {
  if (lfn.empty()) throw common::InvalidArgument("empty LFN");
  Shard& shard = shard_for(lfn);
  const std::uint32_t id = shard.lfns.intern(lfn);
  if (id >= shard.replicas.size()) shard.replicas.resize(id + 1);
  if (shard.replicas[id].empty()) ++non_empty_;
  shard.replicas[id].push_back(std::move(replica));
}

const std::vector<Replica>* ReplicaCatalog::find(const std::string& lfn) const {
  const Shard& shard = shard_for(lfn);
  const std::uint32_t id = shard.lfns.find(lfn);
  if (id == IdTable::kInvalid || id >= shard.replicas.size() ||
      shard.replicas[id].empty()) {
    return nullptr;
  }
  return &shard.replicas[id];
}

std::vector<Replica> ReplicaCatalog::lookup(const std::string& lfn) const {
  const std::vector<Replica>* replicas = find(lfn);
  return replicas == nullptr ? std::vector<Replica>{} : *replicas;
}

std::optional<Replica> ReplicaCatalog::best_for_site(const std::string& lfn,
                                                     const std::string& site) const {
  const std::vector<Replica>* replicas = find(lfn);
  if (replicas == nullptr) return std::nullopt;
  // Deterministic selection regardless of insertion order: the same-site
  // replica with the lexicographically smallest pfn wins; with no same-site
  // replica, the smallest (site, pfn) pair anywhere does.
  const Replica* local = nullptr;
  const Replica* any = nullptr;
  for (const auto& replica : *replicas) {
    if (replica.site == site && (local == nullptr || replica.pfn < local->pfn)) {
      local = &replica;
    }
    if (any == nullptr || std::tie(replica.site, replica.pfn) <
                              std::tie(any->site, any->pfn)) {
      any = &replica;
    }
  }
  return local != nullptr ? *local : *any;
}

bool ReplicaCatalog::has(const std::string& lfn) const {
  return find(lfn) != nullptr;
}

std::size_t ReplicaCatalog::remove(const std::string& lfn, const std::string& site) {
  Shard& shard = shard_for(lfn);
  const std::uint32_t id = shard.lfns.find(lfn);
  if (id == IdTable::kInvalid || id >= shard.replicas.size()) return 0;
  std::vector<Replica>& replicas = shard.replicas[id];
  const std::size_t before = replicas.size();
  replicas.erase(std::remove_if(replicas.begin(), replicas.end(),
                                [&site](const Replica& replica) {
                                  return replica.site == site;
                                }),
                 replicas.end());
  if (before != 0 && replicas.empty()) --non_empty_;
  return before - replicas.size();
}

std::map<std::string, std::vector<Replica>> ReplicaCatalog::entries() const {
  std::map<std::string, std::vector<Replica>> out;
  for (const Shard& shard : shards_) {
    for (std::size_t id = 0; id < shard.replicas.size(); ++id) {
      if (shard.replicas[id].empty()) continue;
      out.emplace(std::string(shard.lfns.name(static_cast<std::uint32_t>(id))),
                  shard.replicas[id]);
    }
  }
  return out;
}

void ReplicaCatalog::reserve(std::size_t lfns) {
  const std::size_t per_shard = lfns / kShards + 1;
  for (Shard& shard : shards_) {
    shard.lfns.reserve(per_shard);
    shard.replicas.reserve(per_shard);
  }
}

void TransformationCatalog::add(const std::string& transformation,
                                const std::string& site, TransformationEntry entry) {
  if (transformation.empty()) throw common::InvalidArgument("empty transformation");
  entries_[{transformation, site}] = std::move(entry);
}

std::optional<TransformationEntry> TransformationCatalog::lookup(
    const std::string& transformation, const std::string& site) const {
  const auto it = entries_.find({transformation, site});
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool TransformationCatalog::available(const std::string& transformation,
                                      const std::string& site) const {
  return entries_.count({transformation, site}) != 0;
}

void SiteCatalog::add(SiteEntry site) {
  if (site.name.empty()) throw common::InvalidArgument("empty site name");
  sites_[site.name] = std::move(site);
}

const SiteEntry& SiteCatalog::site(const std::string& name) const {
  const auto it = sites_.find(name);
  if (it == sites_.end()) throw common::InvalidArgument("unknown site: " + name);
  return it->second;
}

bool SiteCatalog::has(const std::string& name) const { return sites_.count(name) != 0; }

std::vector<std::string> SiteCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [name, entry] : sites_) out.push_back(name);
  return out;
}

}  // namespace pga::wms
