#include "wms/kickstart.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "common/fsutil.hpp"
#include "common/strings.hpp"
#include "wms/xml_util.hpp"

namespace pga::wms {

using common::ParseError;

std::string to_invocation_xml(const std::string& job_id, std::size_t attempt_number,
                              const TaskAttempt& attempt) {
  std::ostringstream os;
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  os << "<invocation job=\"" << xml::escape(job_id) << "\" transformation=\""
     << xml::escape(attempt.transformation) << "\" attempt=\"" << attempt_number
     << "\" host=\"" << xml::escape(attempt.node) << "\" status=\""
     << (attempt.success ? "success" : xml::escape(attempt.error.empty()
                                                       ? "failed"
                                                       : attempt.error))
     << "\">\n";
  os << "  <timing submit=\"" << common::format_fixed(attempt.submit_time, 3)
     << "\" end=\"" << common::format_fixed(attempt.end_time, 3) << "\" wait=\""
     << common::format_fixed(attempt.wait_seconds, 3) << "\" install=\""
     << common::format_fixed(attempt.install_seconds, 3) << "\" exec=\""
     << common::format_fixed(attempt.exec_seconds, 3) << "\"/>\n";
  os << "</invocation>\n";
  return os.str();
}

InvocationRecord from_invocation_xml(const std::string& xml_text) {
  const xml::Element root = xml::parse_document(xml_text);
  if (root.name != "invocation") {
    throw ParseError("kickstart record root must be <invocation>");
  }
  InvocationRecord record;
  record.attempt_number =
      static_cast<std::size_t>(common::parse_long(root.attr("attempt")));
  record.attempt.job_id = root.attr("job");
  record.attempt.transformation = root.attr("transformation");
  record.attempt.node = root.attr("host");
  const std::string& status = root.attr("status");
  record.attempt.success = status == "success";
  if (!record.attempt.success) record.attempt.error = status;

  const xml::Element* timing = root.child("timing");
  if (timing == nullptr) throw ParseError("invocation record missing <timing>");
  record.attempt.submit_time = common::parse_double(timing->attr("submit"));
  record.attempt.end_time = common::parse_double(timing->attr("end"));
  record.attempt.wait_seconds = common::parse_double(timing->attr("wait"));
  record.attempt.install_seconds = common::parse_double(timing->attr("install"));
  record.attempt.exec_seconds = common::parse_double(timing->attr("exec"));
  return record;
}

std::vector<std::filesystem::path> write_invocation_records(
    const RunReport& report, const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> paths;
  for (const JobRun& run : report.runs) {
    std::size_t attempt_number = 1;
    for (const TaskAttempt& attempt : run.attempts) {
      auto path =
          dir / (run.id + "." + std::to_string(attempt_number) + ".out.xml");
      common::write_file(path, to_invocation_xml(run.id, attempt_number, attempt));
      paths.push_back(std::move(path));
      ++attempt_number;
    }
  }
  return paths;
}

std::vector<InvocationRecord> read_invocation_records(
    const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() &&
        entry.path().filename().string().ends_with(".out.xml")) {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<InvocationRecord> records;
  records.reserve(paths.size());
  for (const auto& path : paths) {
    records.push_back(from_invocation_xml(common::read_file(path)));
  }
  return records;
}

RunReport report_from_records(const std::vector<InvocationRecord>& records,
                              const std::string& workflow_name) {
  RunReport report;
  report.workflow = workflow_name;
  report.service = "records";

  // Group by job id, order attempts by number.
  std::map<std::string, std::vector<const InvocationRecord*>> by_job;
  for (const auto& record : records) {
    by_job[record.attempt.job_id].push_back(&record);
  }
  report.jobs_total = by_job.size();
  double start = std::numeric_limits<double>::max();
  double end = 0;
  for (auto& [job_id, job_records] : by_job) {
    std::sort(job_records.begin(), job_records.end(),
              [](const InvocationRecord* a, const InvocationRecord* b) {
                return a->attempt_number < b->attempt_number;
              });
    JobRun run;
    run.id = job_id;
    run.transformation = job_records.front()->attempt.transformation;
    for (const InvocationRecord* record : job_records) {
      run.attempts.push_back(record->attempt);
      start = std::min(start, record->attempt.submit_time);
      end = std::max(end, record->attempt.end_time);
    }
    run.succeeded = run.attempts.back().success;
    report.total_attempts += run.attempts.size();
    report.total_retries += run.attempts.size() - 1;
    if (run.succeeded) ++report.jobs_succeeded;
    else ++report.jobs_failed;
    report.runs.push_back(std::move(run));
  }
  if (!records.empty()) {
    report.start_time = start;
    report.end_time = end;
  }
  report.success = report.jobs_failed == 0 && report.jobs_total > 0;
  return report;
}

}  // namespace pga::wms
