#include "wms/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace pga::wms {

const char* sched_state_name(SchedState state) {
  switch (state) {
    case SchedState::kIdle: return "IDLE";
    case SchedState::kReady: return "READY";
    case SchedState::kSubmitted: return "SUBMITTED";
    case SchedState::kBackoff: return "BACKOFF";
    case SchedState::kDone: return "DONE";
    case SchedState::kFailed: return "FAILED";
    case SchedState::kSkipped: return "SKIPPED";
  }
  return "?";
}

// ------------------------------------------------------------- policies

namespace {

/// Scans `ready` for the job maximizing `score`, keeping the earliest
/// arrival on ties — FIFO within a score level, like DAGMan priorities.
template <typename Score>
std::size_t argmax_position(const std::deque<std::uint32_t>& ready, Score&& score) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < ready.size(); ++i) {
    if (score(ready[i]) > score(ready[best])) best = i;
  }
  return best;
}

class FifoPolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "fifo"; }
  [[nodiscard]] std::size_t pick(const std::deque<std::uint32_t>& ready) override {
    (void)ready;
    return 0;
  }
};

class JobPriorityPolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "priority"; }
  void prepare(const ConcreteWorkflow& workflow) override {
    priority_.clear();
    priority_.reserve(workflow.jobs().size());
    for (const auto& job : workflow.jobs()) priority_.push_back(job.priority);
  }
  [[nodiscard]] std::size_t pick(const std::deque<std::uint32_t>& ready) override {
    return argmax_position(ready, [this](std::uint32_t i) { return priority_[i]; });
  }

 private:
  std::vector<int> priority_;
};

class CriticalPathPolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "critical-path"; }
  void prepare(const ConcreteWorkflow& workflow) override {
    // Upward rank: cost of the job plus the costliest path below it,
    // computed in one reverse-topological sweep over dense handles.
    const auto& jobs = workflow.jobs();
    rank_.assign(jobs.size(), 0.0);
    const auto order = workflow.topological_order_indices();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const std::uint32_t index = *it;
      double below = 0;
      workflow.for_each_child(index, [&](std::uint32_t child) {
        below = std::max(below, rank_[child]);
      });
      rank_[index] = jobs[index].cpu_seconds_hint + below;
    }
  }
  [[nodiscard]] std::size_t pick(const std::deque<std::uint32_t>& ready) override {
    return argmax_position(ready, [this](std::uint32_t i) { return rank_[i]; });
  }

 private:
  std::vector<double> rank_;
};

class WidestBranchPolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "widest-branch"; }
  void prepare(const ConcreteWorkflow& workflow) override {
    fan_out_.clear();
    fan_out_.reserve(workflow.jobs().size());
    for (std::uint32_t i = 0; i < workflow.jobs().size(); ++i) {
      fan_out_.push_back(workflow.child_count(i));
    }
  }
  [[nodiscard]] std::size_t pick(const std::deque<std::uint32_t>& ready) override {
    return argmax_position(ready, [this](std::uint32_t i) { return fan_out_[i]; });
  }

 private:
  std::vector<std::size_t> fan_out_;
};

}  // namespace

std::unique_ptr<SchedulingPolicy> fifo_policy() {
  return std::make_unique<FifoPolicy>();
}
std::unique_ptr<SchedulingPolicy> job_priority_policy() {
  return std::make_unique<JobPriorityPolicy>();
}
std::unique_ptr<SchedulingPolicy> critical_path_policy() {
  return std::make_unique<CriticalPathPolicy>();
}
std::unique_ptr<SchedulingPolicy> widest_branch_policy() {
  return std::make_unique<WidestBranchPolicy>();
}

std::unique_ptr<SchedulingPolicy> make_policy(const std::string& name) {
  if (name == "fifo") return fifo_policy();
  if (name == "priority") return job_priority_policy();
  if (name == "critical-path") return critical_path_policy();
  if (name == "widest-branch") return widest_branch_policy();
  throw common::InvalidArgument("unknown scheduling policy: " + name +
                                " (expected fifo, priority, critical-path or "
                                "widest-branch)");
}

const std::vector<std::string>& policy_names() {
  static const std::vector<std::string> names{"fifo", "priority", "critical-path",
                                              "widest-branch"};
  return names;
}

// ------------------------------------------------------ JobStateMachine

JobStateMachine::JobStateMachine(const ConcreteWorkflow& workflow)
    : workflow_(&workflow) {
  const std::size_t n = workflow.jobs().size();
  nodes_.resize(n);
  // One bulk sweep over explicit lists + pattern arithmetic instead of a
  // per-node materialization — the O(1)-per-pattern seed at million scale.
  std::vector<std::uint32_t> counts;
  workflow.fill_parent_counts(counts);
  for (std::uint32_t i = 0; i < n; ++i) {
    nodes_[i].remaining_parents = counts[i];
  }
}

std::uint32_t JobStateMachine::index_of(const std::string& id) const {
  return workflow_->job_index(id);
}

const std::string& JobStateMachine::id_of(std::uint32_t index) const {
  return workflow_->jobs()[index].id;
}

SchedState JobStateMachine::state(std::uint32_t index) const {
  return nodes_[index].state;
}

int JobStateMachine::attempts(std::uint32_t index) const {
  return nodes_[index].attempts;
}

void JobStateMachine::expect(std::uint32_t index, SchedState from,
                             const char* transition) const {
  if (nodes_[index].state != from) {
    throw common::WorkflowError(
        std::string("illegal scheduler transition '") + transition + "' for job " +
        id_of(index) + ": state is " + sched_state_name(nodes_[index].state) +
        ", expected " + sched_state_name(from));
  }
}

void JobStateMachine::mark_skipped(std::uint32_t index) {
  expect(index, SchedState::kIdle, "skip");
  nodes_[index].state = SchedState::kSkipped;
  ++done_;
}

std::vector<std::uint32_t> JobStateMachine::release_children(std::uint32_t index) {
  std::vector<std::uint32_t> released;
  workflow_->for_each_child(index, [&](std::uint32_t child) {
    Node& node = nodes_[child];
    if (--node.remaining_parents == 0 && node.state == SchedState::kIdle) {
      node.state = SchedState::kReady;
      ready_.push_back(child);
      released.push_back(child);
    }
  });
  return released;
}

void JobStateMachine::seed_root(std::uint32_t index) {
  Node& node = nodes_[index];
  if (node.state != SchedState::kIdle || node.remaining_parents != 0) return;
  node.state = SchedState::kReady;
  ready_.push_back(index);
}

std::uint32_t JobStateMachine::take_ready(std::size_t position) {
  if (position >= ready_.size()) {
    throw common::InvalidArgument("scheduling policy picked position " +
                                  std::to_string(position) + " of a ready queue of " +
                                  std::to_string(ready_.size()));
  }
  const std::uint32_t index = ready_[position];
  ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(position));
  expect(index, SchedState::kReady, "submit");
  nodes_[index].state = SchedState::kSubmitted;
  ++nodes_[index].attempts;
  ++submitted_;
  return index;
}

void JobStateMachine::mark_done(std::uint32_t index) {
  expect(index, SchedState::kSubmitted, "done");
  nodes_[index].state = SchedState::kDone;
  --submitted_;
  ++done_;
}

void JobStateMachine::requeue(std::uint32_t index) {
  expect(index, SchedState::kSubmitted, "requeue");
  nodes_[index].state = SchedState::kReady;
  --submitted_;
  ready_.push_back(index);
}

void JobStateMachine::start_backoff(std::uint32_t index, double release_time) {
  expect(index, SchedState::kSubmitted, "backoff");
  nodes_[index].state = SchedState::kBackoff;
  --submitted_;
  cooling_.push_back(Cooling{index, release_time});
}

void JobStateMachine::mark_failed(std::uint32_t index) {
  expect(index, SchedState::kSubmitted, "fail");
  nodes_[index].state = SchedState::kFailed;
  --submitted_;
  ++failed_;
}

std::vector<std::uint32_t> JobStateMachine::release_due(double now, double eps) {
  std::vector<std::uint32_t> released;
  for (auto it = cooling_.begin(); it != cooling_.end();) {
    if (it->release_time <= now + eps) {
      expect(it->index, SchedState::kBackoff, "release");
      nodes_[it->index].state = SchedState::kReady;
      ready_.push_back(it->index);
      released.push_back(it->index);
      it = cooling_.erase(it);
    } else {
      ++it;
    }
  }
  return released;
}

double JobStateMachine::earliest_release() const {
  double earliest = std::numeric_limits<double>::infinity();
  for (const Cooling& cool : cooling_) {
    earliest = std::min(earliest, cool.release_time);
  }
  return earliest;
}

std::uint32_t JobStateMachine::force_release_earliest() {
  if (cooling_.empty()) {
    throw common::WorkflowError("force_release_earliest with nothing cooling");
  }
  auto it = cooling_.begin();
  for (auto jt = std::next(it); jt != cooling_.end(); ++jt) {
    if (jt->release_time < it->release_time) it = jt;
  }
  const std::uint32_t index = it->index;
  cooling_.erase(it);
  expect(index, SchedState::kBackoff, "release");
  nodes_[index].state = SchedState::kReady;
  ready_.push_back(index);
  return index;
}

}  // namespace pga::wms
