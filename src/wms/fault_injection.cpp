#include "wms/fault_injection.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace pga::wms {

namespace {
constexpr double kEps = 1e-9;
}  // namespace

// -------------------------------------------------------------- FaultPlan

FaultPlan& FaultPlan::fail(const std::string& job, int attempt,
                           const std::string& error, const std::string& node) {
  if (attempt < 0) throw common::InvalidArgument("FaultPlan: attempt must be >= 0");
  directives_.push_back(FaultDirective{job, attempt, FaultAction::kFail, error, 0,
                                       node.empty() ? "injected" : node});
  return *this;
}

FaultPlan& FaultPlan::fail_first(const std::string& job, int k,
                                 const std::string& error, const std::string& node) {
  if (k < 0) throw common::InvalidArgument("FaultPlan: k must be >= 0");
  for (int attempt = 1; attempt <= k; ++attempt) fail(job, attempt, error, node);
  return *this;
}

FaultPlan& FaultPlan::always_fail(const std::string& job, const std::string& error,
                                  const std::string& node) {
  return fail(job, 0, error, node);
}

FaultPlan& FaultPlan::hang(const std::string& job, int attempt) {
  if (attempt < 0) throw common::InvalidArgument("FaultPlan: attempt must be >= 0");
  directives_.push_back(FaultDirective{job, attempt, FaultAction::kHang, "", 0, ""});
  return *this;
}

FaultPlan& FaultPlan::delay(const std::string& job, int attempt, double seconds) {
  if (attempt < 0) throw common::InvalidArgument("FaultPlan: attempt must be >= 0");
  if (seconds < 0) throw common::InvalidArgument("FaultPlan: delay must be >= 0");
  directives_.push_back(
      FaultDirective{job, attempt, FaultAction::kDelay, "", seconds, ""});
  return *this;
}

FaultPlan& FaultPlan::corrupt_node(const std::string& job, int attempt,
                                   const std::string& node) {
  if (attempt < 0) throw common::InvalidArgument("FaultPlan: attempt must be >= 0");
  if (node.empty()) throw common::InvalidArgument("FaultPlan: corrupt node is empty");
  directives_.push_back(
      FaultDirective{job, attempt, FaultAction::kCorruptNode, "", 0, node});
  return *this;
}

FaultPlan& FaultPlan::chaos(const ChaosConfig& config) {
  const double total = config.fail_probability + config.hang_probability +
                       config.delay_probability + config.corrupt_probability;
  if (config.fail_probability < 0 || config.hang_probability < 0 ||
      config.delay_probability < 0 || config.corrupt_probability < 0 ||
      total > 1.0 + kEps) {
    throw common::InvalidArgument(
        "ChaosConfig: probabilities must be >= 0 and sum to <= 1");
  }
  if (config.max_delay_seconds < 0) {
    throw common::InvalidArgument("ChaosConfig: max_delay_seconds must be >= 0");
  }
  chaos_ = config;
  return *this;
}

std::vector<const FaultDirective*> FaultPlan::match(const std::string& job,
                                                    int attempt) const {
  std::vector<const FaultDirective*> out;
  for (const auto& d : directives_) {
    if (d.job_id == job && (d.attempt == 0 || d.attempt == attempt)) {
      out.push_back(&d);
    }
  }
  return out;
}

// ---------------------------------------------------------- FaultyService

FaultyService::FaultyService(ExecutionService& inner, FaultPlan plan)
    : inner_(inner),
      plan_(std::move(plan)),
      rng_(plan_.chaos_config() ? plan_.chaos_config()->seed : 0) {}

int FaultyService::attempts_seen(const std::string& job) const {
  const auto it = attempt_counts_.find(job);
  return it == attempt_counts_.end() ? 0 : it->second;
}

void FaultyService::submit(const ConcreteJob& job) {
  const int attempt = ++attempt_counts_[job.id];
  const auto matches = plan_.match(job.id, attempt);

  // Resolve the scripted directives into one primary action plus rewrites.
  bool do_hang = false;
  const FaultDirective* do_fail = nullptr;
  Post post;
  for (const FaultDirective* d : matches) {
    switch (d->action) {
      case FaultAction::kHang: do_hang = true; break;
      case FaultAction::kFail:
        if (do_fail == nullptr) do_fail = d;
        break;
      case FaultAction::kDelay: post.delay_seconds += d->delay_seconds; break;
      case FaultAction::kCorruptNode: post.corrupt_node = d->node; break;
    }
  }

  // Chaos mode fills in when nothing is scripted for this submission. One
  // uniform draw per submission keeps the stream a pure function of
  // (seed, submission order).
  std::string chaos_fail_error;
  if (matches.empty() && plan_.chaos_config()) {
    const ChaosConfig& c = *plan_.chaos_config();
    const double u = rng_.uniform();
    if (u < c.fail_probability) {
      chaos_fail_error = "chaos failure";
    } else if (u < c.fail_probability + c.hang_probability) {
      do_hang = true;
    } else if (u < c.fail_probability + c.hang_probability + c.delay_probability) {
      post.delay_seconds = rng_.uniform(0.0, c.max_delay_seconds);
    } else if (u < c.fail_probability + c.hang_probability + c.delay_probability +
                       c.corrupt_probability) {
      post.corrupt_node = "chaos-node-" + std::to_string(rng_.below(4));
    }
  }

  if (do_hang) {
    ++injected_hangs_;
    ++hung_outstanding_;
    return;  // swallowed: the inner service never sees this attempt
  }
  if (do_fail != nullptr || !chaos_fail_error.empty()) {
    ++injected_failures_;
    TaskAttempt failed;
    failed.job_id = job.id;
    failed.transformation = job.transformation;
    failed.success = false;
    failed.error = do_fail != nullptr ? do_fail->error : chaos_fail_error;
    failed.node = !post.corrupt_node.empty() ? post.corrupt_node
                  : do_fail != nullptr       ? do_fail->node
                                             : "chaos-node";
    failed.submit_time = inner_.now();
    failed.end_time = failed.submit_time;
    due_.push_back(std::move(failed));
    return;
  }

  if (post.delay_seconds > 0 || !post.corrupt_node.empty()) {
    post_[job.id] = post;
  }
  inner_.submit(job);
}

bool FaultyService::apply_post(TaskAttempt& attempt) {
  const auto it = post_.find(attempt.job_id);
  if (it == post_.end()) return false;
  const Post post = it->second;
  post_.erase(it);
  if (!post.corrupt_node.empty()) {
    ++corrupted_nodes_;
    attempt.node = post.corrupt_node;
  }
  if (post.delay_seconds > 0) {
    ++injected_delays_;
    // Slow-node semantics: the node took delay_seconds longer to finish, so
    // the attempt's execution time and end time stretch, and delivery is
    // withheld until the service clock reaches the stretched end.
    attempt.exec_seconds += post.delay_seconds;
    attempt.end_time += post.delay_seconds;
    held_.push_back(Held{std::move(attempt), inner_.now() + post.delay_seconds});
    return true;
  }
  return false;
}

double FaultyService::earliest_release() const {
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& held : held_) earliest = std::min(earliest, held.release_time);
  return earliest;
}

std::vector<TaskAttempt> FaultyService::take_due() {
  const double now = inner_.now();
  for (auto it = held_.begin(); it != held_.end();) {
    if (it->release_time <= now + kEps) {
      due_.push_back(std::move(it->attempt));
      it = held_.erase(it);
    } else {
      ++it;
    }
  }
  std::vector<TaskAttempt> out(std::make_move_iterator(due_.begin()),
                               std::make_move_iterator(due_.end()));
  due_.clear();
  return out;
}

std::vector<TaskAttempt> FaultyService::wait() {
  while (true) {
    auto out = take_due();
    if (!out.empty()) return out;
    if (held_.empty()) {
      // Nothing synthesized or parked: defer to the inner service. An empty
      // batch means the inner service is idle — if attempts were swallowed
      // (hangs), only an engine attempt timeout can make progress, so
      // return empty rather than block forever.
      auto batch = inner_.wait();
      if (batch.empty()) return {};
      for (auto& attempt : batch) {
        if (!apply_post(attempt)) due_.push_back(std::move(attempt));
      }
    } else {
      // Burn inner time until the earliest delayed completion is due.
      const double target = earliest_release();
      auto batch = inner_.wait_for(std::max(0.0, target - inner_.now()));
      for (auto& attempt : batch) {
        if (!apply_post(attempt)) due_.push_back(std::move(attempt));
      }
      if (batch.empty() && inner_.now() + kEps < target) {
        // The inner clock cannot advance (a bare stub): release by fiat so
        // callers are never wedged by an injected delay.
        for (auto& held : held_) held.release_time = inner_.now();
      }
    }
  }
}

std::vector<TaskAttempt> FaultyService::poll() {
  auto batch = inner_.poll();
  for (auto& attempt : batch) {
    if (!apply_post(attempt)) due_.push_back(std::move(attempt));
  }
  return take_due();
}

std::vector<TaskAttempt> FaultyService::wait_for(double timeout_seconds) {
  const double deadline = inner_.now() + std::max(0.0, timeout_seconds);
  while (true) {
    auto out = take_due();
    if (!out.empty()) return out;
    const double remaining = deadline - inner_.now();
    if (remaining <= kEps) return {};
    double horizon = remaining;
    if (!held_.empty()) {
      horizon = std::min(horizon, std::max(0.0, earliest_release() - inner_.now()));
    }
    const double before = inner_.now();
    auto batch = inner_.wait_for(horizon);
    for (auto& attempt : batch) {
      if (!apply_post(attempt)) due_.push_back(std::move(attempt));
    }
    if (batch.empty() && inner_.now() <= before + kEps) {
      // No completions and no clock progress: the inner service cannot burn
      // time. Release any parked completions by fiat to stay live, else
      // report the (advisory) timeout expired.
      if (held_.empty()) return {};
      for (auto& held : held_) held.release_time = inner_.now();
    }
  }
}

}  // namespace pga::wms
