// The paper-scale workload model.
//
// The Fig. 4/Fig. 5 experiments ran on 236,529 wheat transcripts with
// 1,717,454 BLASTX hits; the serial blast2cap3 run took 100 hours. We
// cannot rerun that hardware, so this model reproduces the *workload
// shape*: a heavy-tailed distribution of protein-cluster sizes and a
// superlinear CAP3 cost per cluster, calibrated so that
//   * total serial CAP3 work matches the paper's 100-hour run, and
//   * the largest single cluster costs ~9,500 s — the straggler that
//     floors the workflow wall time near 10,000 s for every n >= 100
//     (paper §VI.A).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pga::core {

/// Knobs for the paper-scale workload.
struct WorkloadParams {
  std::size_t transcripts = 236'529;    ///< paper: transcripts.fasta records
  std::size_t proteins = 2'000;         ///< distinct protein clusters
  double zipf_s = 0.40;                 ///< cluster-size skew
  double cost_beta = 1.6;               ///< CAP3 cost ~ size^beta (superlinear)
  double serial_cap3_seconds = 352'000; ///< total CAP3 work (100 h minus prep)
  std::uint64_t seed = 42;

  // Fixed (per-task) costs of the non-CAP3 steps, from the paper's "few
  // minutes" description of the list/merge tasks.
  double create_list_seconds = 180;
  double split_base_seconds = 120;
  double split_per_chunk_seconds = 1.0;
  double run_cap3_fixed_seconds = 90;   ///< dict loading etc. per chunk
  double merge_joined_seconds = 150;
  double find_unjoined_seconds = 200;
  double final_merge_seconds = 120;
  /// The merge steps read one file per chunk; their cost grows with n.
  double merge_per_chunk_seconds = 0.3;
};

/// Deterministic cluster-size + cost model.
class WorkloadModel {
 public:
  explicit WorkloadModel(const WorkloadParams& params = {});

  [[nodiscard]] const WorkloadParams& params() const { return params_; }

  /// Transcript count per protein cluster, descending, sized so they sum
  /// to ~params.transcripts.
  [[nodiscard]] const std::vector<std::size_t>& cluster_sizes() const {
    return cluster_sizes_;
  }

  /// CAP3 CPU-seconds for a cluster of `size` transcripts.
  [[nodiscard]] double cluster_cost(std::size_t size) const;

  /// Sum of all cluster costs — the serial CAP3 time.
  [[nodiscard]] double total_cap3_seconds() const { return total_cost_; }

  /// Cost of the most expensive single cluster (the parallel floor).
  [[nodiscard]] double largest_cluster_cost() const;

  /// CPU-seconds of each run_cap3 chunk when the alignments are split into
  /// n protein-atomic chunks with greedy largest-first balancing (the same
  /// policy b2c3::plan_split uses). Includes the per-chunk fixed cost.
  [[nodiscard]] std::vector<double> chunk_costs(std::size_t n) const;

  /// End-to-end serial pipeline time: prep + all CAP3 clusters + merges.
  [[nodiscard]] double serial_pipeline_seconds() const;

 private:
  WorkloadParams params_;
  std::vector<std::size_t> cluster_sizes_;
  double cost_alpha_ = 1.0;  ///< calibrated scale factor
  double total_cost_ = 0;
};

}  // namespace pga::core
