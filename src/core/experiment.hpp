// The paper's experiments, reproduced on the simulated platforms.
//
// run_platform_sweep() regenerates the data behind Fig. 4 (workflow wall
// time: serial vs. Sandhills vs. OSG for n in {10,100,300,500}) and Fig. 5
// (per-task Kickstart / Waiting / Download-Install breakdown).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/b2c3_workflow.hpp"
#include "core/workload.hpp"
#include "data/software_cache.hpp"
#include "data/transfer_manager.hpp"
#include "sim/campus_cluster.hpp"
#include "sim/cloud.hpp"
#include "sim/osg.hpp"
#include "wms/statistics.hpp"
#include "workload/generator.hpp"

namespace pga::core {

/// Data-layer knobs (src/data/): per-node software caching and modeled
/// staging. Both default off, which reproduces the paper's per-attempt
/// install and hint-priced transfers byte-identically.
struct DataLayerConfig {
  /// Attach a per-node SoftwareCache to the platform so install overhead
  /// is paid once per node instead of once per attempt (§VII future work).
  bool cache_installs = false;
  data::SoftwareCacheConfig cache{};
  /// Replace the flat-cost stage-in/stage-out jobs with bandwidth-modeled
  /// transfers between per-site storage elements.
  bool model_staging = false;
  data::TransferConfig transfers{};
  /// Concurrent-transfer slots per auto-built site storage element.
  std::size_t transfer_slots = 4;
};

/// Sweep configuration. Defaults reproduce the paper's setup.
struct ExperimentConfig {
  std::vector<std::size_t> n_values{10, 100, 300, 500};
  WorkloadParams workload{};
  sim::CampusClusterConfig sandhills{};
  sim::OsgConfig osg{};
  int engine_retries = 100;  ///< DAGMan retry budget (OSG preemptions)
  std::uint64_t seed = 7;    ///< base seed; varied per (platform, n, repetition)
  std::size_t repetitions = 1;  ///< independent runs averaged per point (the
                                ///< paper ran "multiple times"; means tame the
                                ///< run-to-run variance §VI.A acknowledges)
  bool include_cloud = false;  ///< also run the §VII future-work platform
  sim::CloudConfig cloud{};
  /// Engine scheduling policy (wms::make_policy name): "fifo" (default,
  /// the paper's DAGMan behaviour), "priority", "critical-path" or
  /// "widest-branch". Lets the Fig. 4 sweep quantify how much of the n=10
  /// straggler penalty smarter release order can claw back.
  std::string scheduling_policy = "fifo";
  /// DAGMan -maxjobs submit throttle. 0 = unlimited (the platform model
  /// does all the slot scheduling, so release order barely matters); set
  /// it at or below the slot count to make the policy choice decisive.
  std::size_t max_jobs_in_flight = 0;
  /// Data-layer models (software cache + modeled staging); off by default.
  DataLayerConfig data{};
};

/// One (platform, n) simulated point, possibly averaged over repetitions.
struct SweepPoint {
  std::string platform;  ///< "sandhills" | "osg" | "cloud"
  std::size_t n = 0;
  wms::WorkflowStatistics stats;  ///< statistics of the first repetition
  std::vector<double> walls;      ///< wall seconds of every repetition
  std::size_t preemptions = 0;    ///< OSG only (first repetition)

  /// Mean wall time across repetitions.
  [[nodiscard]] double mean_wall() const;
};

/// Full sweep results.
struct SweepResults {
  double serial_seconds = 0;  ///< the 100-hour baseline (model)
  std::vector<SweepPoint> points;

  /// Mean wall seconds for (platform, n); throws if missing.
  [[nodiscard]] double wall(const std::string& platform, std::size_t n) const;
  [[nodiscard]] const SweepPoint& point(const std::string& platform,
                                        std::size_t n) const;
};

/// Runs every (platform, n) combination on fresh simulated platforms.
SweepResults run_platform_sweep(const ExperimentConfig& config = {});

/// Runs a single simulated (platform, n) point with config.repetitions
/// independent seeds. `platform` must be "sandhills", "osg" or "cloud".
SweepPoint run_sim_point(const ExperimentConfig& config, const std::string& platform,
                         std::size_t n);

/// Derived §VI.A headline claims, checked against the sweep.
struct PaperClaims {
  double reduction_vs_serial_percent = 0;  ///< best parallel vs serial (paper: >95%)
  bool sandhills_beats_osg_low_n = false;  ///< n in {10,100,300} (paper: yes)
  std::size_t best_sandhills_n = 0;        ///< paper: 300
  double sandhills_n10_over_n300 = 0;      ///< paper: ~4x (41,593 vs ~10,000)
  bool osg_kickstart_beats_sandhills = false;  ///< §VI.B: pure exec faster on OSG
};

/// Evaluates the claims over sweep results.
PaperClaims evaluate_claims(const SweepResults& results);

// ------------------------------------------------------ cross-shape sweeps
//
// Every blast2cap3 result above is one DAG shape; the generated-shape sweep
// re-runs the scheduling-policy ablation over the workload generator's
// whole taxonomy (src/workload/) on the same two platforms, so a policy
// ranking can be confirmed — or refuted — off the paper's pipeline.

/// Which (shape, platform, policy) grid to sweep.
struct ShapeSweepConfig {
  std::vector<workload::ShapeSpec> shapes;
  std::vector<std::string> platforms{"sandhills", "osg"};
  std::vector<std::string> policies{"fifo", "priority", "critical-path",
                                    "widest-branch"};
};

/// One simulated (shape, platform, policy) run.
struct ShapeRun {
  std::string shape;      ///< workload::shape_name of the spec
  std::size_t size = 0;   ///< the spec's scale knob
  std::uint64_t seed = 0;  ///< the spec's instance seed
  std::string platform;   ///< "sandhills" | "osg"
  std::string policy;     ///< wms::make_policy name
  std::size_t jobs = 0;   ///< concrete (planned) job count
  std::size_t events = 0;  ///< engine events observed during the run
  wms::WorkflowStatistics stats;
  /// Ids of every succeeded job, sorted — identical across policies when
  /// the policies only reorder work (the cross-shape completeness claim).
  std::vector<std::string> succeeded_jobs;

  [[nodiscard]] double wall() const { return stats.wall_seconds(); }
};

/// Grid of ShapeRuns with (shape, platform, policy) lookup.
struct ShapeAblationResults {
  std::vector<ShapeRun> rows;

  [[nodiscard]] const ShapeRun& row(const std::string& shape,
                                    const std::string& platform,
                                    const std::string& policy) const;
  [[nodiscard]] double wall(const std::string& shape, const std::string& platform,
                            const std::string& policy) const;
};

/// Runs one generated shape on one platform under one policy. The run seed
/// folds (config.seed, platform, spec) but NOT the policy, so two policies
/// face byte-identical platform randomness and their walls are comparable.
/// Honors config.engine_retries, config.max_jobs_in_flight and config.data
/// (software cache + modeled staging against the generator's catalogs).
ShapeRun run_shape_point(const ExperimentConfig& config,
                         const workload::ShapeSpec& spec,
                         const std::string& platform, const std::string& policy);

/// The full grid: every shape x platform x policy of `sweep`.
ShapeAblationResults run_shape_ablation(const ExperimentConfig& base,
                                        const ShapeSweepConfig& sweep);

}  // namespace pga::core
