#include "core/b2c3_workflow.hpp"

#include "common/error.hpp"

namespace pga::core {

using wms::AbstractJob;
using wms::AbstractWorkflow;
using wms::FileUse;
using wms::LinkType;

AbstractWorkflow build_blast2cap3_dax(const B2c3WorkflowSpec& spec,
                                      const WorkloadModel* workload) {
  if (spec.n == 0) throw common::InvalidArgument("blast2cap3: n must be >= 1");
  AbstractWorkflow wf("blast2cap3-n" + std::to_string(spec.n));

  const auto cost = [&](double seconds) {
    return workload == nullptr ? 0.0 : seconds;
  };
  const WorkloadParams params = workload ? workload->params() : WorkloadParams{};

  // create_transcripts_list(): FASTA -> transcript dict.
  {
    AbstractJob job;
    job.id = "create_transcripts_list";
    job.transformation = "create_list";
    job.args = {spec.transcripts_lfn};
    job.uses = {{spec.transcripts_lfn, LinkType::kInput},
                {"transcripts_dict.txt", LinkType::kOutput}};
    job.cpu_seconds_hint = cost(params.create_list_seconds);
    wf.add_job(std::move(job));
  }
  // create_alignments_list(): validate/normalize the BLASTX table.
  {
    AbstractJob job;
    job.id = "create_alignments_list";
    job.transformation = "create_list";
    job.args = {spec.alignments_lfn};
    job.uses = {{spec.alignments_lfn, LinkType::kInput},
                {"alignments_list.txt", LinkType::kOutput}};
    job.cpu_seconds_hint = cost(params.create_list_seconds);
    wf.add_job(std::move(job));
  }
  // split(): n protein-atomic chunks.
  {
    AbstractJob job;
    job.id = "split";
    job.transformation = "split_alignments";
    job.args = {"-n", std::to_string(spec.n)};
    job.uses.push_back({"alignments_list.txt", LinkType::kInput});
    for (std::size_t i = 0; i < spec.n; ++i) {
      job.uses.push_back({"protein_" + std::to_string(i) + ".txt", LinkType::kOutput});
    }
    job.cpu_seconds_hint =
        cost(params.split_base_seconds +
             params.split_per_chunk_seconds * static_cast<double>(spec.n));
    wf.add_job(std::move(job));
  }
  // run_cap3_i(): the parallel heart of the workflow.
  const std::vector<double> chunk_costs =
      workload ? workload->chunk_costs(spec.n) : std::vector<double>(spec.n, 0.0);
  for (std::size_t i = 0; i < spec.n; ++i) {
    AbstractJob job;
    job.id = "run_cap3_" + std::to_string(i);
    job.transformation = "run_cap3";
    job.args = {"protein_" + std::to_string(i) + ".txt"};
    job.uses = {{"transcripts_dict.txt", LinkType::kInput},
                {"protein_" + std::to_string(i) + ".txt", LinkType::kInput},
                {"joined_" + std::to_string(i) + ".fasta", LinkType::kOutput},
                {"members_" + std::to_string(i) + ".txt", LinkType::kOutput}};
    job.cpu_seconds_hint = chunk_costs[i];
    wf.add_job(std::move(job));
  }
  // merge_joined(): concatenate all per-chunk contigs.
  {
    AbstractJob job;
    job.id = "merge_joined";
    job.transformation = "merge_joined";
    for (std::size_t i = 0; i < spec.n; ++i) {
      job.uses.push_back({"joined_" + std::to_string(i) + ".fasta", LinkType::kInput});
    }
    job.uses.push_back({"joined.fasta", LinkType::kOutput});
    job.cpu_seconds_hint =
        cost(params.merge_joined_seconds +
             params.merge_per_chunk_seconds * static_cast<double>(spec.n));
    wf.add_job(std::move(job));
  }
  // find_unjoined(): transcripts absorbed by no contig.
  {
    AbstractJob job;
    job.id = "find_unjoined";
    job.transformation = "find_unjoined";
    job.uses.push_back({"transcripts_dict.txt", LinkType::kInput});
    for (std::size_t i = 0; i < spec.n; ++i) {
      job.uses.push_back({"members_" + std::to_string(i) + ".txt", LinkType::kInput});
    }
    job.uses.push_back({"unjoined.fasta", LinkType::kOutput});
    job.cpu_seconds_hint =
        cost(params.find_unjoined_seconds +
             params.merge_per_chunk_seconds * static_cast<double>(spec.n));
    wf.add_job(std::move(job));
  }
  // final_merge(): joined + unjoined -> the assembly.
  {
    AbstractJob job;
    job.id = "final_merge";
    job.transformation = "final_merge";
    job.uses = {{"joined.fasta", LinkType::kInput},
                {"unjoined.fasta", LinkType::kInput},
                {spec.output_lfn, LinkType::kOutput}};
    job.cpu_seconds_hint = cost(params.final_merge_seconds);
    wf.add_job(std::move(job));
  }

  wf.infer_dependencies_from_files();
  wf.validate();
  return wf;
}

wms::SiteCatalog paper_site_catalog(std::size_t sandhills_slots,
                                    std::size_t osg_slots) {
  wms::SiteCatalog sites;
  // Campus scratch filesystems sustain ~100 MB/s; wide-area transfers into
  // opportunistic OSG sites run an order of magnitude slower.
  sites.add({"sandhills", sandhills_slots, /*software_preinstalled=*/true,
             "/work/group/scratch", /*stage_bandwidth_bps=*/100e6});
  sites.add({"osg", osg_slots, /*software_preinstalled=*/false, "/tmp/osg-scratch",
             /*stage_bandwidth_bps=*/10e6});
  return sites;
}

wms::TransformationCatalog paper_transformation_catalog() {
  wms::TransformationCatalog tc;
  const char* transformations[] = {"create_list", "split_alignments", "run_cap3",
                                   "merge_joined", "find_unjoined", "final_merge"};
  // The OSG bundle is the whole Python/Biopython/CAP3 stack each modified
  // task downloads (§IV.B); ~350 MB is what the 180–600 s install window
  // implies at the paper-era stage bandwidths.
  const std::uint64_t osg_bundle_bytes = 350ull * 1024 * 1024;
  for (const char* tf : transformations) {
    tc.add(tf, "sandhills", {std::string("/util/opt/") + tf, /*installed=*/true});
    tc.add(tf, "osg", {std::string("http://stash/b2c3/") + tf + ".tar.gz",
                       /*installed=*/false, osg_bundle_bytes});
  }
  return tc;
}

wms::ReplicaCatalog paper_replica_catalog(const B2c3WorkflowSpec& spec) {
  wms::ReplicaCatalog rc;
  // §V.A: transcripts.fasta is 404 MB, alignments.out is 155 MB.
  rc.add(spec.transcripts_lfn,
         {"/data/" + spec.transcripts_lfn, "local", 404ull * 1024 * 1024});
  rc.add(spec.alignments_lfn,
         {"/data/" + spec.alignments_lfn, "local", 155ull * 1024 * 1024});
  return rc;
}

wms::ConcreteWorkflow plan_for_site(const wms::AbstractWorkflow& dax,
                                    const std::string& site,
                                    const B2c3WorkflowSpec& spec,
                                    std::size_t cluster_factor) {
  wms::PlannerOptions options;
  options.target_site = site;
  options.cluster_factor = cluster_factor;
  return wms::plan(dax, paper_site_catalog(), paper_transformation_catalog(),
                   paper_replica_catalog(spec), options);
}

}  // namespace pga::core
