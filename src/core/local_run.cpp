#include "core/local_run.hpp"

#include "b2c3/splitter.hpp"
#include "b2c3/tasks.hpp"
#include "common/error.hpp"
#include "common/fsutil.hpp"
#include "common/strings.hpp"
#include "wms/exec_service.hpp"
#include "wms/kickstart.hpp"

namespace pga::core {

namespace fs = std::filesystem;

LocalRunResult run_blast2cap3_locally(const fs::path& transcripts_fasta,
                                      const fs::path& alignments_out,
                                      const LocalRunConfig& config) {
  if (!fs::exists(config.workspace)) {
    throw common::InvalidArgument("workspace does not exist: " +
                                  config.workspace.string());
  }
  B2c3WorkflowSpec spec;
  spec.n = config.n;
  spec.policy = config.policy;
  const auto dax = build_blast2cap3_dax(spec, /*workload=*/nullptr);
  const auto concrete = plan_for_site(dax, "sandhills", spec);

  const fs::path ws = config.workspace;
  const auto lfn = [&ws](const std::string& name) { return ws / name; };

  const auto runner = [&, spec](const wms::ConcreteJob& job) {
    if (job.kind == wms::JobKind::kStageIn) {
      fs::copy_file(transcripts_fasta, lfn(spec.transcripts_lfn),
                    fs::copy_options::overwrite_existing);
      fs::copy_file(alignments_out, lfn(spec.alignments_lfn),
                    fs::copy_options::overwrite_existing);
      return;
    }
    if (job.kind == wms::JobKind::kStageOut) {
      return;  // outputs already live in the workspace
    }
    if (job.transformation == "create_list") {
      if (job.args.at(0) == spec.transcripts_lfn) {
        b2c3::make_transcript_dict(lfn(spec.transcripts_lfn),
                                   lfn("transcripts_dict.txt"));
      } else {
        b2c3::make_alignment_list(lfn(spec.alignments_lfn),
                                  lfn("alignments_list.txt"));
      }
      return;
    }
    if (job.transformation == "split_alignments") {
      b2c3::split_alignment_file(lfn("alignments_list.txt"), ws, spec.n, "protein",
                                 spec.policy);
      return;
    }
    if (job.transformation == "run_cap3") {
      // args[0] = "protein_<i>.txt".
      const std::string& chunk_file = job.args.at(0);
      const auto underscore = chunk_file.rfind('_');
      const auto dot = chunk_file.rfind('.');
      const std::string index = chunk_file.substr(underscore + 1, dot - underscore - 1);
      b2c3::run_cap3_chunk(lfn("transcripts_dict.txt"), lfn(chunk_file),
                           lfn("joined_" + index + ".fasta"),
                           lfn("members_" + index + ".txt"), "c" + index,
                           config.assembly, spec.policy);
      return;
    }
    if (job.transformation == "merge_joined") {
      std::vector<fs::path> joined;
      for (std::size_t i = 0; i < spec.n; ++i) {
        joined.push_back(lfn("joined_" + std::to_string(i) + ".fasta"));
      }
      b2c3::merge_joined(joined, lfn("joined.fasta"));
      return;
    }
    if (job.transformation == "find_unjoined") {
      std::vector<fs::path> members;
      for (std::size_t i = 0; i < spec.n; ++i) {
        members.push_back(lfn("members_" + std::to_string(i) + ".txt"));
      }
      b2c3::find_unjoined(lfn("transcripts_dict.txt"), members, lfn("unjoined.fasta"));
      return;
    }
    if (job.transformation == "final_merge") {
      b2c3::concat_final(lfn("joined.fasta"), lfn("unjoined.fasta"),
                         lfn(spec.output_lfn));
      return;
    }
    throw common::WorkflowError("no local binding for transformation " +
                                job.transformation);
  };

  wms::LocalService service(config.slots, runner);
  wms::DagmanEngine engine(wms::EngineOptions{.retries = config.retries,
                                              .rescue_path = ws / "rescue.dag",
                                              .status = config.status});
  LocalRunResult result;
  result.report = engine.run(concrete, service);
  result.stats = wms::WorkflowStatistics::from_run(result.report);
  result.output = lfn(spec.output_lfn);
  // Provenance, like the real stack leaves behind in the submit
  // directory: one kickstart invocation record per attempt, plus the
  // DAGMan jobstate log.
  const fs::path records = ws / "kickstart";
  fs::create_directories(records);
  wms::write_invocation_records(result.report, records);
  common::write_file(ws / "jobstate.log",
                     common::join(result.report.jobstate_log, "\n") + "\n");
  return result;
}

}  // namespace pga::core
