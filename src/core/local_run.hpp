// Real end-to-end execution of the blast2cap3 workflow.
//
// Binds each workflow transformation to its actual C++ implementation
// (b2c3::tasks) over files in a workspace directory, then lets the DAGMan
// engine drive it on a thread pool. This is the proof that the workflow
// glue is real: the same DAX that the simulator times also produces a real
// assembly from real FASTA/tabular inputs.
#pragma once

#include <filesystem>

#include "assembly/cap3.hpp"
#include "core/b2c3_workflow.hpp"
#include "wms/engine.hpp"
#include "wms/statistics.hpp"

namespace pga::core {

/// Configuration for a local run.
struct LocalRunConfig {
  std::filesystem::path workspace;  ///< scratch dir (must exist); LFNs live here
  std::size_t n = 4;                ///< split width
  std::size_t slots = 4;            ///< thread-pool workers
  int retries = 2;                  ///< engine retry budget
  assembly::AssemblyOptions assembly{};
  /// Clustering rule applied by the run_cap3 tasks (and the matching
  /// atomic split).
  b2c3::ClusterPolicy policy = b2c3::ClusterPolicy::kBestHit;
  /// Optional live progress board (pegasus-status); must outlive the run.
  wms::StatusBoard* status = nullptr;
};

/// Outcome of a local run.
struct LocalRunResult {
  wms::RunReport report;
  wms::WorkflowStatistics stats;
  std::filesystem::path output;  ///< the produced assembly.fasta
};

/// Plans the Fig. 2 workflow for n chunks and really executes it:
/// stage-in copies the inputs into the workspace, every task reads/writes
/// workspace files, stage-out leaves assembly.fasta in place.
LocalRunResult run_blast2cap3_locally(const std::filesystem::path& transcripts_fasta,
                                      const std::filesystem::path& alignments_out,
                                      const LocalRunConfig& config);

}  // namespace pga::core
