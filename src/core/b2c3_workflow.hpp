// Builders for the blast2cap3 scientific workflow (Fig. 2 and Fig. 3).
//
// One function produces the abstract DAX; companions set up the catalogs
// for the two sites and plan the concrete workflow the way the paper did:
// the Sandhills plan uses preinstalled software; the OSG plan carries a
// download/install step on every compute task (the red rectangles).
#pragma once

#include <cstddef>
#include <string>

#include "b2c3/cluster.hpp"
#include "core/workload.hpp"
#include "wms/catalog.hpp"
#include "wms/dax.hpp"
#include "wms/planner.hpp"

namespace pga::core {

/// Parameters of the workflow instance.
struct B2c3WorkflowSpec {
  std::size_t n = 300;  ///< number of clusters of transcripts ("n" in §VI)
  std::string transcripts_lfn = "transcripts.fasta";
  std::string alignments_lfn = "alignments.out";
  std::string output_lfn = "assembly.fasta";
  /// Clustering rule the run_cap3 tasks apply; the split task picks the
  /// matching atomic partitioning automatically.
  b2c3::ClusterPolicy policy = b2c3::ClusterPolicy::kBestHit;
};

/// Builds the abstract blast2cap3 workflow with cost hints drawn from
/// `workload` (pass nullptr for no hints — e.g. when binding real
/// callables for local execution):
///
///   create_transcripts_list --+
///                             +--> run_cap3_i (x n) --> merge_joined --+
///   create_alignments_list -> split                                    +--> final_merge
///                             +-----------------------> find_unjoined -+
wms::AbstractWorkflow build_blast2cap3_dax(const B2c3WorkflowSpec& spec,
                                           const WorkloadModel* workload = nullptr);

/// The two execution sites of the paper, as catalog entries.
/// "sandhills": 1,440-core campus cluster, software preinstalled.
/// "osg": opportunistic grid, software must be staged per task.
wms::SiteCatalog paper_site_catalog(std::size_t sandhills_slots = 64,
                                    std::size_t osg_slots = 150);

/// Registers every blast2cap3 transformation for both sites (installed on
/// sandhills, stageable on osg).
wms::TransformationCatalog paper_transformation_catalog();

/// Registers the two input files at the "local" submit host.
wms::ReplicaCatalog paper_replica_catalog(const B2c3WorkflowSpec& spec = {});

/// Plans the workflow for one of the paper's sites ("sandhills" or "osg").
wms::ConcreteWorkflow plan_for_site(const wms::AbstractWorkflow& dax,
                                    const std::string& site,
                                    const B2c3WorkflowSpec& spec = {},
                                    std::size_t cluster_factor = 1);

}  // namespace pga::core
