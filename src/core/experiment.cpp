#include "core/experiment.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include "common/error.hpp"
#include "data/staging_service.hpp"
#include "wms/engine.hpp"
#include "wms/exec_service.hpp"

namespace pga::core {

double SweepPoint::mean_wall() const {
  if (walls.empty()) return stats.wall_seconds();
  double sum = 0;
  for (const double w : walls) sum += w;
  return sum / static_cast<double>(walls.size());
}

double SweepResults::wall(const std::string& platform, std::size_t n) const {
  return point(platform, n).mean_wall();
}

const SweepPoint& SweepResults::point(const std::string& platform,
                                      std::size_t n) const {
  for (const auto& p : points) {
    if (p.platform == platform && p.n == n) return p;
  }
  throw common::InvalidArgument("no sweep point for " + platform + " n=" +
                                std::to_string(n));
}

namespace {

/// One simulated run of the blast2cap3 workflow on one platform instance.
struct SingleRun {
  wms::WorkflowStatistics stats;
  std::size_t preemptions = 0;
};

/// Registers a storage element per catalog site (plus the submit host) on
/// `transfers`, deriving bandwidths from the site catalog.
void add_site_elements(data::TransferManager& transfers, const wms::SiteCatalog& sites,
                       std::size_t transfer_slots) {
  for (const auto& name : sites.names()) {
    const wms::SiteEntry& site = sites.site(name);
    data::StorageElementConfig element;
    element.site = name;
    element.bandwidth_in_bps = site.stage_bandwidth_bps;
    element.bandwidth_out_bps = site.stage_bandwidth_bps;
    element.transfer_slots = transfer_slots;
    transfers.add_element(std::move(element));
  }
  data::StorageElementConfig submit_host;
  submit_host.site = "local";
  submit_host.transfer_slots = transfer_slots;
  transfers.add_element(std::move(submit_host));
}

SingleRun run_once(const ExperimentConfig& config, const std::string& platform,
                   std::size_t n, std::uint64_t run_seed) {
  if (platform != "sandhills" && platform != "osg" && platform != "cloud") {
    throw common::InvalidArgument("unknown platform: " + platform);
  }
  const WorkloadModel workload(config.workload);
  const B2c3WorkflowSpec spec{.n = n};
  const auto dax = build_blast2cap3_dax(spec, &workload);
  const auto concrete =
      plan_for_site(dax, platform == "cloud" ? "osg" : platform, spec);

  sim::EventQueue queue;
  // Simulated attempts schedule a handful of events each; pre-sizing the
  // heap keeps large-n sweeps from reallocating it mid-run.
  queue.reserve(concrete.jobs().size() * 4);
  std::unique_ptr<sim::ExecutionPlatform> sim_platform;
  const sim::OsgPlatform* osg_ptr = nullptr;
  if (platform == "sandhills") {
    auto cfg = config.sandhills;
    cfg.seed = run_seed;
    sim_platform = std::make_unique<sim::CampusClusterPlatform>(queue, cfg);
  } else if (platform == "osg") {
    auto cfg = config.osg;
    cfg.seed = run_seed;
    auto osg = std::make_unique<sim::OsgPlatform>(queue, cfg);
    osg_ptr = osg.get();
    sim_platform = std::move(osg);
  } else if (platform == "cloud") {
    auto cfg = config.cloud;
    cfg.seed = run_seed;
    sim_platform = std::make_unique<sim::CloudPlatform>(queue, cfg);
  } else {
    throw common::InvalidArgument("unknown platform: " + platform);
  }

  // Optional data layer: per-node software cache and/or modeled staging.
  std::unique_ptr<data::SoftwareCache> cache;
  if (config.data.cache_installs) {
    cache = std::make_unique<data::SoftwareCache>(config.data.cache);
    sim_platform->set_install_model(cache.get());
  }

  wms::SimService sim_service(queue, *sim_platform);
  std::unique_ptr<data::TransferManager> transfers;
  std::unique_ptr<data::StagingService> staging;
  wms::ExecutionService* service = &sim_service;
  const wms::ReplicaCatalog replicas = paper_replica_catalog(spec);
  if (config.data.model_staging) {
    data::TransferConfig transfer_config = config.data.transfers;
    // Each repetition draws its own failure stream, like the platforms.
    transfer_config.seed ^= run_seed;
    transfers = std::make_unique<data::TransferManager>(queue, transfer_config);
    add_site_elements(*transfers, paper_site_catalog(), config.data.transfer_slots);
    data::StagingConfig staging_cfg;
    staging_cfg.execution_site = concrete.site();
    staging = std::make_unique<data::StagingService>(queue, sim_service, *transfers,
                                                     replicas, staging_cfg);
    service = staging.get();
  }

  wms::EngineOptions options{.retries = config.engine_retries, .rescue_path = {}};
  options.max_jobs_in_flight = config.max_jobs_in_flight;
  options.policy = wms::make_policy(config.scheduling_policy);
  wms::DagmanEngine engine(std::move(options));
  const auto report = engine.run(concrete, *service);
  if (!report.success) {
    throw common::WorkflowError("simulated run failed on " + platform + " n=" +
                                std::to_string(n));
  }
  SingleRun result;
  result.stats = wms::WorkflowStatistics::from_run(report);
  if (osg_ptr != nullptr) result.preemptions = osg_ptr->preemptions();
  return result;
}

}  // namespace

SweepPoint run_sim_point(const ExperimentConfig& config, const std::string& platform,
                         std::size_t n) {
  if (config.repetitions == 0) {
    throw common::InvalidArgument("repetitions must be >= 1");
  }
  SweepPoint point;
  point.platform = platform;
  point.n = n;
  for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
    const std::uint64_t run_seed =
        (config.seed + rep * 0x9e3779b9ULL) ^
        (std::hash<std::string>{}(platform) * 31 + n);
    SingleRun run = run_once(config, platform, n, run_seed);
    if (rep == 0) {
      point.stats = std::move(run.stats);
      point.preemptions = run.preemptions;
      point.walls.push_back(point.stats.wall_seconds());
    } else {
      point.walls.push_back(run.stats.wall_seconds());
    }
  }
  return point;
}

SweepResults run_platform_sweep(const ExperimentConfig& config) {
  SweepResults results;
  const WorkloadModel workload(config.workload);
  results.serial_seconds = workload.serial_pipeline_seconds();

  std::vector<std::string> platforms{"sandhills", "osg"};
  if (config.include_cloud) platforms.push_back("cloud");
  for (const auto& platform : platforms) {
    for (const std::size_t n : config.n_values) {
      results.points.push_back(run_sim_point(config, platform, n));
    }
  }
  return results;
}

const ShapeRun& ShapeAblationResults::row(const std::string& shape,
                                          const std::string& platform,
                                          const std::string& policy) const {
  for (const auto& r : rows) {
    if (r.shape == shape && r.platform == platform && r.policy == policy) return r;
  }
  throw common::InvalidArgument("no shape run for " + shape + "/" + platform +
                                "/" + policy);
}

double ShapeAblationResults::wall(const std::string& shape,
                                  const std::string& platform,
                                  const std::string& policy) const {
  return row(shape, platform, policy).wall();
}

namespace {

/// Counts engine events — the machine-independent work measure the scale
/// bench's smoke envelope asserts on.
struct CountingObserver final : wms::EngineObserver {
  std::size_t events = 0;
  void on_event(const wms::EngineEvent&) override { ++events; }
};

}  // namespace

ShapeRun run_shape_point(const ExperimentConfig& config,
                         const workload::ShapeSpec& spec,
                         const std::string& platform, const std::string& policy) {
  if (platform != "sandhills" && platform != "osg") {
    throw common::InvalidArgument("unknown shape-sweep platform: " + platform);
  }

  const auto abstract = workload::build_workflow(spec);
  const auto sites = workload::generator_site_catalog();
  const auto transformations = workload::generator_transformation_catalog(abstract);
  const auto replicas = workload::generator_replica_catalog(abstract, spec);
  wms::PlannerOptions plan_options;
  plan_options.target_site = platform;
  plan_options.expected_output_bytes = workload::expected_output_bytes(spec);
  const auto concrete =
      wms::plan(abstract, sites, transformations, replicas, plan_options);

  // Policy deliberately absent from the fold: every policy at one
  // (shape, platform) faces the same platform randomness.
  const std::uint64_t run_seed =
      (config.seed + spec.seed * 0x9e3779b9ULL) ^
      (std::hash<std::string>{}(platform) * 31 + spec.size);

  sim::EventQueue queue;
  queue.reserve(concrete.jobs().size() * 4);
  std::unique_ptr<sim::ExecutionPlatform> sim_platform;
  if (platform == "sandhills") {
    auto cfg = config.sandhills;
    cfg.seed = run_seed;
    sim_platform = std::make_unique<sim::CampusClusterPlatform>(queue, cfg);
  } else {
    auto cfg = config.osg;
    cfg.seed = run_seed;
    sim_platform = std::make_unique<sim::OsgPlatform>(queue, cfg);
  }

  std::unique_ptr<data::SoftwareCache> cache;
  if (config.data.cache_installs) {
    cache = std::make_unique<data::SoftwareCache>(config.data.cache);
    sim_platform->set_install_model(cache.get());
  }

  wms::SimService sim_service(queue, *sim_platform);
  std::unique_ptr<data::TransferManager> transfers;
  std::unique_ptr<data::StagingService> staging;
  wms::ExecutionService* service = &sim_service;
  if (config.data.model_staging) {
    data::TransferConfig transfer_config = config.data.transfers;
    transfer_config.seed ^= run_seed;
    transfers = std::make_unique<data::TransferManager>(queue, transfer_config);
    add_site_elements(*transfers, sites, config.data.transfer_slots);
    data::StagingConfig staging_cfg;
    staging_cfg.execution_site = concrete.site();
    staging = std::make_unique<data::StagingService>(queue, sim_service, *transfers,
                                                     replicas, staging_cfg);
    service = staging.get();
  }

  CountingObserver counting;
  wms::EngineOptions options{.retries = config.engine_retries, .rescue_path = {}};
  options.max_jobs_in_flight = config.max_jobs_in_flight;
  options.policy = wms::make_policy(policy);
  options.observers.push_back(&counting);
  wms::DagmanEngine engine(std::move(options));
  const auto report = engine.run(concrete, *service);
  if (!report.success) {
    throw common::WorkflowError("shape run failed: " + workload::spec_name(spec) +
                                " on " + platform + " under " + policy);
  }

  ShapeRun run;
  run.shape = workload::shape_name(spec.shape);
  run.size = spec.size;
  run.seed = spec.seed;
  run.platform = platform;
  run.policy = policy;
  run.jobs = concrete.jobs().size();
  run.events = counting.events;
  run.stats = wms::WorkflowStatistics::from_run(report);
  for (const auto& job_run : report.runs) {
    if (job_run.succeeded) run.succeeded_jobs.push_back(job_run.id);
  }
  std::sort(run.succeeded_jobs.begin(), run.succeeded_jobs.end());
  return run;
}

ShapeAblationResults run_shape_ablation(const ExperimentConfig& base,
                                        const ShapeSweepConfig& sweep) {
  ShapeAblationResults results;
  for (const auto& spec : sweep.shapes) {
    for (const auto& platform : sweep.platforms) {
      for (const auto& policy : sweep.policies) {
        results.rows.push_back(run_shape_point(base, spec, platform, policy));
      }
    }
  }
  return results;
}

PaperClaims evaluate_claims(const SweepResults& results) {
  PaperClaims claims;

  double best_parallel = std::numeric_limits<double>::max();
  for (const auto& p : results.points) {
    best_parallel = std::min(best_parallel, p.mean_wall());
  }
  claims.reduction_vs_serial_percent =
      100.0 * (1.0 - best_parallel / results.serial_seconds);

  claims.sandhills_beats_osg_low_n = true;
  for (const std::size_t n : {std::size_t{10}, std::size_t{100}, std::size_t{300}}) {
    bool have_both = true;
    double sandhills = 0, osg = 0;
    try {
      sandhills = results.wall("sandhills", n);
      osg = results.wall("osg", n);
    } catch (const common::InvalidArgument&) {
      have_both = false;
    }
    if (have_both && osg < sandhills) claims.sandhills_beats_osg_low_n = false;
  }

  double best_wall = std::numeric_limits<double>::max();
  for (const auto& p : results.points) {
    if (p.platform == "sandhills" && p.mean_wall() < best_wall) {
      best_wall = p.mean_wall();
      claims.best_sandhills_n = p.n;
    }
  }

  try {
    claims.sandhills_n10_over_n300 =
        results.wall("sandhills", 10) / results.wall("sandhills", 300);
  } catch (const common::InvalidArgument&) {
    claims.sandhills_n10_over_n300 = 0;
  }

  // §VI.B: compare mean run_cap3 kickstart across platforms at equal n.
  claims.osg_kickstart_beats_sandhills = true;
  for (const auto& p : results.points) {
    if (p.platform != "osg") continue;
    try {
      const auto& sandhills = results.point("sandhills", p.n);
      const auto osg_it = p.stats.per_transformation().find("run_cap3");
      const auto sh_it = sandhills.stats.per_transformation().find("run_cap3");
      if (osg_it != p.stats.per_transformation().end() &&
          sh_it != sandhills.stats.per_transformation().end() &&
          !osg_it->second.kickstart.empty() && !sh_it->second.kickstart.empty() &&
          osg_it->second.kickstart.mean() >= sh_it->second.kickstart.mean()) {
        claims.osg_kickstart_beats_sandhills = false;
      }
    } catch (const common::InvalidArgument&) {
    }
  }
  return claims;
}

}  // namespace pga::core
