#include "core/workload.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pga::core {

WorkloadModel::WorkloadModel(const WorkloadParams& params) : params_(params) {
  if (params.proteins == 0 || params.transcripts < params.proteins) {
    throw common::InvalidArgument("workload: need transcripts >= proteins >= 1");
  }
  if (params.cost_beta < 1.0) {
    throw common::InvalidArgument("workload: cost_beta must be >= 1");
  }
  if (params.serial_cap3_seconds <= 0) {
    throw common::InvalidArgument("workload: serial_cap3_seconds must be > 0");
  }

  // Zipf-shaped sizes with mild multiplicative noise, then scaled to the
  // transcript total. Every cluster keeps at least 1 transcript.
  common::Rng rng(params.seed);
  std::vector<double> raw(params.proteins);
  for (std::size_t k = 0; k < params.proteins; ++k) {
    const double zipf = std::pow(static_cast<double>(k + 1), -params.zipf_s);
    raw[k] = zipf * rng.lognormal(0.0, 0.25);
  }
  std::sort(raw.begin(), raw.end(), std::greater<>());
  double raw_sum = 0;
  for (const double r : raw) raw_sum += r;

  cluster_sizes_.resize(params.proteins);
  std::size_t assigned = 0;
  for (std::size_t k = 0; k < params.proteins; ++k) {
    const auto size = static_cast<std::size_t>(std::max(
        1.0, std::floor(raw[k] / raw_sum * static_cast<double>(params.transcripts))));
    cluster_sizes_[k] = size;
    assigned += size;
  }
  // Distribute the rounding remainder over the head.
  std::size_t k = 0;
  while (assigned < params.transcripts) {
    ++cluster_sizes_[k % params.proteins];
    ++assigned;
    ++k;
  }

  // Calibrate alpha so total CAP3 work hits the paper's serial time.
  double unscaled = 0;
  for (const std::size_t size : cluster_sizes_) {
    unscaled += std::pow(static_cast<double>(size), params.cost_beta);
  }
  cost_alpha_ = params.serial_cap3_seconds / unscaled;
  total_cost_ = 0;
  for (const std::size_t size : cluster_sizes_) total_cost_ += cluster_cost(size);
}

double WorkloadModel::cluster_cost(std::size_t size) const {
  return cost_alpha_ * std::pow(static_cast<double>(size), params_.cost_beta);
}

double WorkloadModel::largest_cluster_cost() const {
  return cluster_cost(cluster_sizes_.front());
}

std::vector<double> WorkloadModel::chunk_costs(std::size_t n) const {
  if (n == 0) throw common::InvalidArgument("chunk_costs: n must be >= 1");
  // Greedy largest-first into the least-loaded chunk — the same policy the
  // real splitter uses (b2c3::plan_split). Crucially the splitter balances
  // by *hit count* (cluster size), not by CAP3 cost; since cost is
  // superlinear in size, size-balanced chunks still carry a cost imbalance
  // — the origin of the paper's 41,593 s straggler chunk at n = 10.
  using Load = std::pair<double, std::size_t>;
  std::priority_queue<Load, std::vector<Load>, std::greater<>> chunks;
  for (std::size_t i = 0; i < n; ++i) chunks.push({0.0, i});
  std::vector<double> cost(n, 0.0);
  for (const std::size_t size : cluster_sizes_) {  // already descending
    auto [load, chunk] = chunks.top();
    chunks.pop();
    cost[chunk] += cluster_cost(size);
    chunks.push({load + static_cast<double>(size), chunk});
  }
  for (double& c : cost) c += params_.run_cap3_fixed_seconds;
  return cost;
}

double WorkloadModel::serial_pipeline_seconds() const {
  return 2 * params_.create_list_seconds + total_cost_ +
         params_.merge_joined_seconds + params_.find_unjoined_seconds +
         params_.final_merge_seconds;
}

}  // namespace pga::core
