#include "htc/local_executor.hpp"

#include <exception>

namespace pga::htc {

std::future<ExecutionRecord> LocalExecutor::submit(std::function<void()> payload) {
  common::Stopwatch queued;
  return pool_.submit([payload = std::move(payload), queued]() -> ExecutionRecord {
    ExecutionRecord record;
    record.queue_seconds = queued.seconds();
    const common::Stopwatch running;
    try {
      payload();
      record.success = true;
    } catch (const std::exception& e) {
      record.success = false;
      record.error = e.what();
    } catch (...) {
      record.success = false;
      record.error = "unknown exception";
    }
    record.run_seconds = running.seconds();
    return record;
  });
}

}  // namespace pga::htc
