#include "htc/classad.hpp"

#include <cctype>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace pga::htc {

using common::ParseError;

// ---------------------------------------------------------------- Value

bool Value::is_undefined() const { return std::holds_alternative<Undefined>(data_); }
bool Value::is_bool() const { return std::holds_alternative<bool>(data_); }
bool Value::is_number() const {
  return std::holds_alternative<long>(data_) || std::holds_alternative<double>(data_);
}
bool Value::is_integer() const { return std::holds_alternative<long>(data_); }
bool Value::is_string() const { return std::holds_alternative<std::string>(data_); }

double Value::as_number() const {
  if (const auto* i = std::get_if<long>(&data_)) return static_cast<double>(*i);
  if (const auto* d = std::get_if<double>(&data_)) return *d;
  throw common::InvalidArgument("ClassAd value is not a number: " + to_string());
}

bool Value::as_bool() const {
  if (const auto* b = std::get_if<bool>(&data_)) return *b;
  throw common::InvalidArgument("ClassAd value is not a bool: " + to_string());
}

const std::string& Value::as_string() const {
  if (const auto* s = std::get_if<std::string>(&data_)) return *s;
  throw common::InvalidArgument("ClassAd value is not a string: " + to_string());
}

std::string Value::to_string() const {
  if (is_undefined()) return "undefined";
  if (const auto* b = std::get_if<bool>(&data_)) return *b ? "true" : "false";
  if (const auto* i = std::get_if<long>(&data_)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&data_)) {
    std::ostringstream os;
    os << *d;
    return os.str();
  }
  return "\"" + std::get<std::string>(data_) + "\"";
}

// --------------------------------------------------------------- ClassAd

void ClassAd::set(const std::string& name, Value value) {
  attrs_[common::to_lower(name)] = std::move(value);
}

Value ClassAd::get(const std::string& name) const {
  const auto it = attrs_.find(common::to_lower(name));
  return it == attrs_.end() ? Value() : it->second;
}

bool ClassAd::has(const std::string& name) const {
  return attrs_.count(common::to_lower(name)) != 0;
}

// ------------------------------------------------------------ Expression

namespace {

enum class Op {
  kLiteral, kRefMy, kRefTarget, kRefAuto,
  kOr, kAnd, kNot, kNeg,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv,
  kTernary,  // lhs ? args[0] : args[1]
  kCall,     // name(args...)
};

}  // namespace

struct Expression::Node {
  Op op;
  Value literal;      // kLiteral
  std::string name;   // kRef*, kCall
  std::unique_ptr<Node> lhs, rhs;
  std::vector<std::unique_ptr<Node>> args;  // kCall, kTernary branches
};

namespace {

using Node = Expression::Node;

// ----- lexer -----

struct Token {
  enum Kind { kNumber, kString, kIdent, kOp, kEnd } kind;
  std::string text;
  double number = 0;
  bool is_integer = false;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Token next() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) return {Token::kEnd, ""};
    const char c = text_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      return lex_number();
    }
    if (c == '"') return lex_string();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return lex_ident();
    return lex_operator();
  }

 private:
  Token lex_number() {
    const std::size_t start = pos_;
    bool is_int = true;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      if (!std::isdigit(static_cast<unsigned char>(text_[pos_]))) is_int = false;
      ++pos_;
    }
    Token t{Token::kNumber, text_.substr(start, pos_ - start)};
    t.number = common::parse_double(t.text);
    t.is_integer = is_int;
    return t;
  }

  Token lex_string() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      out.push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) throw ParseError("unterminated string in expression");
    ++pos_;  // closing quote
    return {Token::kString, out};
  }

  Token lex_ident() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_' ||
            text_[pos_] == '.')) {
      ++pos_;
    }
    return {Token::kIdent, text_.substr(start, pos_ - start)};
  }

  Token lex_operator() {
    static const std::vector<std::string> kOps = {"||", "&&", "==", "!=", "<=",
                                                  ">=", "<",  ">",  "!",  "+",
                                                  "-",  "*",  "/",  "(",  ")",
                                                  "?",  ":",  ","};
    for (const auto& op : kOps) {
      if (text_.compare(pos_, op.size(), op) == 0) {
        pos_ += op.size();
        return {Token::kOp, op};
      }
    }
    throw ParseError(std::string("unexpected character '") + text_[pos_] +
                     "' in expression");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ----- parser (recursive descent) -----

class Parser {
 public:
  explicit Parser(const std::string& text) : lexer_(text) { advance(); }

  std::unique_ptr<Node> parse() {
    auto node = parse_ternary();
    if (current_.kind != Token::kEnd) {
      throw ParseError("trailing tokens in expression near '" + current_.text + "'");
    }
    return node;
  }

 private:
  void advance() { current_ = lexer_.next(); }

  bool accept_op(const std::string& op) {
    if (current_.kind == Token::kOp && current_.text == op) {
      advance();
      return true;
    }
    return false;
  }

  std::unique_ptr<Node> make_binary(Op op, std::unique_ptr<Node> lhs,
                                    std::unique_ptr<Node> rhs) {
    auto node = std::make_unique<Node>();
    node->op = op;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
  }

  std::unique_ptr<Node> parse_ternary() {
    auto condition = parse_or();
    if (!accept_op("?")) return condition;
    auto node = std::make_unique<Node>();
    node->op = Op::kTernary;
    node->lhs = std::move(condition);
    node->args.push_back(parse_ternary());
    if (!accept_op(":")) throw ParseError("expected ':' in ternary expression");
    node->args.push_back(parse_ternary());
    return node;
  }

  std::unique_ptr<Node> parse_or() {
    auto lhs = parse_and();
    while (accept_op("||")) lhs = make_binary(Op::kOr, std::move(lhs), parse_and());
    return lhs;
  }

  std::unique_ptr<Node> parse_and() {
    auto lhs = parse_cmp();
    while (accept_op("&&")) lhs = make_binary(Op::kAnd, std::move(lhs), parse_cmp());
    return lhs;
  }

  std::unique_ptr<Node> parse_cmp() {
    auto lhs = parse_add();
    static const std::vector<std::pair<std::string, Op>> kCmps = {
        {"==", Op::kEq}, {"!=", Op::kNe}, {"<=", Op::kLe},
        {">=", Op::kGe}, {"<", Op::kLt},  {">", Op::kGt}};
    for (const auto& [text, op] : kCmps) {
      if (accept_op(text)) return make_binary(op, std::move(lhs), parse_add());
    }
    return lhs;
  }

  std::unique_ptr<Node> parse_add() {
    auto lhs = parse_mul();
    while (true) {
      if (accept_op("+")) lhs = make_binary(Op::kAdd, std::move(lhs), parse_mul());
      else if (accept_op("-")) lhs = make_binary(Op::kSub, std::move(lhs), parse_mul());
      else return lhs;
    }
  }

  std::unique_ptr<Node> parse_mul() {
    auto lhs = parse_unary();
    while (true) {
      if (accept_op("*")) lhs = make_binary(Op::kMul, std::move(lhs), parse_unary());
      else if (accept_op("/")) lhs = make_binary(Op::kDiv, std::move(lhs), parse_unary());
      else return lhs;
    }
  }

  std::unique_ptr<Node> parse_unary() {
    if (accept_op("!")) {
      auto node = std::make_unique<Node>();
      node->op = Op::kNot;
      node->lhs = parse_unary();
      return node;
    }
    if (accept_op("-")) {
      auto node = std::make_unique<Node>();
      node->op = Op::kNeg;
      node->lhs = parse_unary();
      return node;
    }
    return parse_primary();
  }

  std::unique_ptr<Node> parse_primary() {
    if (accept_op("(")) {
      auto node = parse_ternary();
      if (!accept_op(")")) throw ParseError("expected ')' in expression");
      return node;
    }
    auto node = std::make_unique<Node>();
    switch (current_.kind) {
      case Token::kNumber:
        node->op = Op::kLiteral;
        node->literal = current_.is_integer
                            ? Value(static_cast<long>(current_.number))
                            : Value(current_.number);
        advance();
        return node;
      case Token::kString:
        node->op = Op::kLiteral;
        node->literal = Value(current_.text);
        advance();
        return node;
      case Token::kIdent: {
        const std::string lower = common::to_lower(current_.text);
        // Function call?
        advance();
        if (current_.kind == Token::kOp && current_.text == "(") {
          advance();
          node->op = Op::kCall;
          node->name = lower;
          if (!(current_.kind == Token::kOp && current_.text == ")")) {
            node->args.push_back(parse_ternary());
            while (accept_op(",")) node->args.push_back(parse_ternary());
          }
          if (!accept_op(")")) {
            throw ParseError("expected ')' after arguments of " + lower);
          }
          return node;
        }
        // Not a call: current_ already holds the token after the
        // identifier, so no further advance below.
        if (lower == "true" || lower == "false") {
          node->op = Op::kLiteral;
          node->literal = Value(lower == "true");
        } else if (lower == "undefined") {
          node->op = Op::kLiteral;
          node->literal = Value();
        } else if (lower.starts_with("my.")) {
          node->op = Op::kRefMy;
          node->name = lower.substr(3);
        } else if (lower.starts_with("target.")) {
          node->op = Op::kRefTarget;
          node->name = lower.substr(7);
        } else {
          node->op = Op::kRefAuto;
          node->name = lower;
        }
        return node;
      }
      default:
        throw ParseError("unexpected token '" + current_.text + "' in expression");
    }
  }

  Lexer lexer_;
  Token current_;
};

// ----- evaluator -----

Value eval_node(const Node& node, const ClassAd& my, const ClassAd* target);

Value eval_compare(Op op, const Value& a, const Value& b) {
  if (a.is_undefined() || b.is_undefined()) return Value();
  // Strings compare with strings, everything else numerically/boolean.
  if (a.is_string() != b.is_string()) {
    return Value();  // incomparable types -> undefined, like HTCondor error
  }
  int cmp;
  if (a.is_string()) {
    cmp = a.as_string().compare(b.as_string());
  } else {
    const double x = a.is_bool() ? (a.as_bool() ? 1.0 : 0.0) : a.as_number();
    const double y = b.is_bool() ? (b.as_bool() ? 1.0 : 0.0) : b.as_number();
    cmp = x < y ? -1 : (x > y ? 1 : 0);
  }
  switch (op) {
    case Op::kEq: return Value(cmp == 0);
    case Op::kNe: return Value(cmp != 0);
    case Op::kLt: return Value(cmp < 0);
    case Op::kLe: return Value(cmp <= 0);
    case Op::kGt: return Value(cmp > 0);
    case Op::kGe: return Value(cmp >= 0);
    default: throw common::InvalidArgument("not a comparison op");
  }
}

Value eval_arith(Op op, const Value& a, const Value& b) {
  if (a.is_undefined() || b.is_undefined()) return Value();
  if (!a.is_number() || !b.is_number()) return Value();
  const double x = a.as_number();
  const double y = b.as_number();
  double result;
  switch (op) {
    case Op::kAdd: result = x + y; break;
    case Op::kSub: result = x - y; break;
    case Op::kMul: result = x * y; break;
    case Op::kDiv:
      if (y == 0) return Value();
      result = x / y;
      break;
    default: throw common::InvalidArgument("not an arithmetic op");
  }
  // Integer op integer stays integer when exact (division may not be);
  // anything involving a real stays real, like HTCondor.
  if (a.is_integer() && b.is_integer() && result == std::floor(result) &&
      std::abs(result) < 1e15) {
    return Value(static_cast<long>(result));
  }
  return Value(result);
}

/// Builtin function dispatch. Unknown functions and arity mismatches
/// evaluate to undefined (HTCondor's error-as-undefined behaviour), except
/// clearly-diagnosable misuse at parse time.
Value eval_call(const Node& node, const ClassAd& my, const ClassAd* target) {
  std::vector<Value> args;
  args.reserve(node.args.size());
  for (const auto& arg : node.args) args.push_back(eval_node(*arg, my, target));
  const std::string& fn = node.name;
  const auto arity = args.size();
  const auto num = [&](std::size_t i) { return args[i].as_number(); };
  const auto all_numbers = [&] {
    for (const auto& a : args) {
      if (!a.is_number()) return false;
    }
    return true;
  };

  if (fn == "isundefined") {
    return arity == 1 ? Value(args[0].is_undefined()) : Value();
  }
  if (fn == "ifthenelse") {
    if (arity != 3) return Value();
    if (!args[0].is_bool()) return Value();
    return args[0].as_bool() ? args[1] : args[2];
  }
  // Everything below propagates undefined.
  for (const auto& a : args) {
    if (a.is_undefined()) return Value();
  }
  if (fn == "min" && arity == 2 && all_numbers()) {
    return num(0) <= num(1) ? args[0] : args[1];
  }
  if (fn == "max" && arity == 2 && all_numbers()) {
    return num(0) >= num(1) ? args[0] : args[1];
  }
  if (fn == "floor" && arity == 1 && all_numbers()) {
    return Value(static_cast<long>(std::floor(num(0))));
  }
  if (fn == "ceiling" && arity == 1 && all_numbers()) {
    return Value(static_cast<long>(std::ceil(num(0))));
  }
  if (fn == "round" && arity == 1 && all_numbers()) {
    return Value(static_cast<long>(std::llround(num(0))));
  }
  if (fn == "abs" && arity == 1 && all_numbers()) {
    const double v = std::abs(num(0));
    return v == std::floor(v) ? Value(static_cast<long>(v)) : Value(v);
  }
  if (fn == "pow" && arity == 2 && all_numbers()) {
    return Value(std::pow(num(0), num(1)));
  }
  if (fn == "strcat") {
    std::string out;
    for (const auto& a : args) {
      if (a.is_string()) out += a.as_string();
      else out += a.to_string();
    }
    return Value(std::move(out));
  }
  if (fn == "tolower" && arity == 1 && args[0].is_string()) {
    return Value(common::to_lower(args[0].as_string()));
  }
  if (fn == "toupper" && arity == 1 && args[0].is_string()) {
    return Value(common::to_upper(args[0].as_string()));
  }
  if (fn == "size" && arity == 1 && args[0].is_string()) {
    return Value(static_cast<long>(args[0].as_string().size()));
  }
  if (fn == "stringlistmember" && (arity == 2 || arity == 3) &&
      args[0].is_string() && args[1].is_string()) {
    const char delim = arity == 3 && args[2].is_string() && !args[2].as_string().empty()
                           ? args[2].as_string()[0]
                           : ',';
    for (const auto& item : common::split(args[1].as_string(), delim)) {
      if (std::string(common::trim(item)) == args[0].as_string()) {
        return Value(true);
      }
    }
    return Value(false);
  }
  return Value();  // unknown function or bad argument types
}

Value eval_node(const Node& node, const ClassAd& my, const ClassAd* target) {
  switch (node.op) {
    case Op::kTernary: {
      const Value condition = eval_node(*node.lhs, my, target);
      if (!condition.is_bool()) return Value();
      return eval_node(condition.as_bool() ? *node.args[0] : *node.args[1], my,
                       target);
    }
    case Op::kCall:
      return eval_call(node, my, target);
    case Op::kLiteral:
      return node.literal;
    case Op::kRefMy:
      return my.get(node.name);
    case Op::kRefTarget:
      return target != nullptr ? target->get(node.name) : Value();
    case Op::kRefAuto: {
      if (my.has(node.name)) return my.get(node.name);
      if (target != nullptr && target->has(node.name)) return target->get(node.name);
      return Value();
    }
    case Op::kOr: {
      const Value lhs = eval_node(*node.lhs, my, target);
      if (lhs.is_bool() && lhs.as_bool()) return Value(true);
      const Value rhs = eval_node(*node.rhs, my, target);
      if (rhs.is_bool() && rhs.as_bool()) return Value(true);
      if (lhs.is_bool() && rhs.is_bool()) return Value(false);
      return Value();
    }
    case Op::kAnd: {
      const Value lhs = eval_node(*node.lhs, my, target);
      if (lhs.is_bool() && !lhs.as_bool()) return Value(false);
      const Value rhs = eval_node(*node.rhs, my, target);
      if (rhs.is_bool() && !rhs.as_bool()) return Value(false);
      if (lhs.is_bool() && rhs.is_bool()) return Value(true);
      return Value();
    }
    case Op::kNot: {
      const Value v = eval_node(*node.lhs, my, target);
      return v.is_bool() ? Value(!v.as_bool()) : Value();
    }
    case Op::kNeg: {
      const Value v = eval_node(*node.lhs, my, target);
      if (!v.is_number()) return Value();
      if (v.is_integer()) return Value(-static_cast<long>(v.as_number()));
      return Value(-v.as_number());
    }
    case Op::kEq: case Op::kNe: case Op::kLt:
    case Op::kLe: case Op::kGt: case Op::kGe:
      return eval_compare(node.op, eval_node(*node.lhs, my, target),
                          eval_node(*node.rhs, my, target));
    case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kDiv:
      return eval_arith(node.op, eval_node(*node.lhs, my, target),
                        eval_node(*node.rhs, my, target));
  }
  throw common::InvalidArgument("corrupt expression node");
}

std::unique_ptr<Node> clone_node(const Node* node) {
  if (node == nullptr) return nullptr;
  auto copy = std::make_unique<Node>();
  copy->op = node->op;
  copy->literal = node->literal;
  copy->name = node->name;
  copy->lhs = clone_node(node->lhs.get());
  copy->rhs = clone_node(node->rhs.get());
  copy->args.reserve(node->args.size());
  for (const auto& arg : node->args) copy->args.push_back(clone_node(arg.get()));
  return copy;
}

}  // namespace

Expression Expression::parse(const std::string& text) {
  Parser parser(text);
  return Expression(parser.parse(), text);
}

Expression::Expression(std::unique_ptr<Node> root, std::string text)
    : root_(std::move(root)), text_(std::move(text)) {}

Expression::Expression(Expression&&) noexcept = default;
Expression& Expression::operator=(Expression&&) noexcept = default;
Expression::~Expression() = default;

Expression::Expression(const Expression& other)
    : root_(clone_node(other.root_.get())), text_(other.text_) {}

Expression& Expression::operator=(const Expression& other) {
  if (this != &other) {
    root_ = clone_node(other.root_.get());
    text_ = other.text_;
  }
  return *this;
}

Value Expression::evaluate(const ClassAd& my, const ClassAd* target) const {
  return eval_node(*root_, my, target);
}

bool Expression::evaluate_bool(const ClassAd& my, const ClassAd* target) const {
  const Value v = evaluate(my, target);
  return v.is_bool() && v.as_bool();
}

}  // namespace pga::htc
