#include "htc/matchmaker.hpp"

namespace pga::htc {

MachineAd MachineAd::make(const std::string& name, long cpus, long memory_mb,
                          double speed_factor, bool has_software_stack) {
  MachineAd machine;
  machine.ad.set("name", name);
  machine.ad.set("cpus", cpus);
  machine.ad.set("memory", memory_mb);
  machine.ad.set("speed", speed_factor);
  machine.ad.set("has_python", has_software_stack);
  machine.ad.set("has_biopython", has_software_stack);
  machine.ad.set("has_cap3", has_software_stack);
  return machine;
}

bool is_match(const JobAd& job, const MachineAd& machine) {
  if (job.requirements.has_value() &&
      !job.requirements->evaluate_bool(job.ad, &machine.ad)) {
    return false;
  }
  if (machine.requirements.has_value() &&
      !machine.requirements->evaluate_bool(machine.ad, &job.ad)) {
    return false;
  }
  return true;
}

std::optional<Match> match_best(const JobAd& job,
                                const std::vector<MachineAd>& machines) {
  std::optional<Match> best;
  for (std::size_t i = 0; i < machines.size(); ++i) {
    if (!is_match(job, machines[i])) continue;
    double rank = 0.0;
    if (job.rank.has_value()) {
      const Value v = job.rank->evaluate(job.ad, &machines[i].ad);
      if (v.is_number()) rank = v.as_number();
    }
    if (!best.has_value() || rank > best->rank) best = Match{i, rank};
  }
  return best;
}

std::vector<std::size_t> match_all(const JobAd& job,
                                   const std::vector<MachineAd>& machines) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < machines.size(); ++i) {
    if (is_match(job, machines[i])) out.push_back(i);
  }
  return out;
}

}  // namespace pga::htc
