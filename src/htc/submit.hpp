// A condor_submit-style job description parser.
//
// Accepts the familiar attribute-per-line format:
//
//   # blast2cap3 chunk task
//   executable     = /util/opt/run_cap3
//   arguments      = protein_0.txt
//   request_memory = 4096
//   requirements   = TARGET.has_cap3 && TARGET.memory >= MY.request_memory
//   rank           = TARGET.speed
//   queue 3
//
// and produces a JobAd template plus a queue count. Values are typed:
// integers, reals and booleans are recognized; everything else is a string
// (surrounding double quotes stripped). `requirements` and `rank` are
// parsed as ClassAd expressions.
#pragma once

#include <cstddef>
#include <string>

#include "htc/matchmaker.hpp"

namespace pga::htc {

/// Parsed submit description.
struct SubmitDescription {
  JobAd job;               ///< template ad with requirements/rank attached
  std::size_t queue = 1;   ///< number of instances to queue
};

/// Parses the description; throws ParseError on malformed lines,
/// duplicate `queue` statements, or invalid expressions.
SubmitDescription parse_submit_description(const std::string& text);

/// Expands the description into `queue` job ads; each instance gets a
/// `process` attribute (0-based), mirroring HTCondor's $(Process).
std::vector<JobAd> expand_submit_description(const SubmitDescription& description);

}  // namespace pga::htc
