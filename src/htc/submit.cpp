#include "htc/submit.hpp"

#include <cctype>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace pga::htc {

using common::ParseError;

namespace {

/// Types a raw value string: integer, real, boolean, else string.
Value type_value(std::string_view raw) {
  const auto trimmed = common::trim(raw);
  if (trimmed.empty()) return Value(std::string());
  if (trimmed.size() >= 2 && trimmed.front() == '"' && trimmed.back() == '"') {
    return Value(std::string(trimmed.substr(1, trimmed.size() - 2)));
  }
  const std::string lower = common::to_lower(trimmed);
  if (lower == "true") return Value(true);
  if (lower == "false") return Value(false);
  try {
    return Value(common::parse_long(trimmed));
  } catch (const ParseError&) {
  }
  try {
    return Value(common::parse_double(trimmed));
  } catch (const ParseError&) {
  }
  return Value(std::string(trimmed));
}

}  // namespace

SubmitDescription parse_submit_description(const std::string& text) {
  SubmitDescription description;
  bool queue_seen = false;

  std::size_t line_number = 0;
  for (const auto& raw_line : common::split(text, '\n')) {
    ++line_number;
    std::string line(common::trim(raw_line));
    // Strip trailing comments ('#' outside quotes).
    bool in_quotes = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '"') in_quotes = !in_quotes;
      if (line[i] == '#' && !in_quotes) {
        line = std::string(common::trim(line.substr(0, i)));
        break;
      }
    }
    if (line.empty()) continue;

    const std::string lower = common::to_lower(line);
    if (lower == "queue" || lower.starts_with("queue ")) {
      if (queue_seen) {
        throw ParseError("duplicate queue statement at line " +
                         std::to_string(line_number));
      }
      queue_seen = true;
      // Materialize: trim() returns a view into the substr temporary.
      const std::string rest(common::trim(line.substr(5)));
      if (!rest.empty()) {
        const long count = common::parse_long(rest);
        if (count < 1) {
          throw ParseError("queue count must be >= 1 at line " +
                           std::to_string(line_number));
        }
        description.queue = static_cast<std::size_t>(count);
      }
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw ParseError("expected 'name = value' at line " +
                       std::to_string(line_number) + ": " + line);
    }
    const std::string name = common::to_lower(common::trim(line.substr(0, eq)));
    const std::string value(common::trim(line.substr(eq + 1)));
    for (const char c : name) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
        throw ParseError("bad attribute name '" + name + "' at line " +
                         std::to_string(line_number));
      }
    }

    if (name == "requirements") {
      description.job.requirements = Expression::parse(value);
    } else if (name == "rank") {
      description.job.rank = Expression::parse(value);
    } else {
      description.job.ad.set(name, type_value(value));
    }
  }
  if (!queue_seen) {
    throw ParseError("submit description has no queue statement");
  }
  if (!description.job.ad.has("executable")) {
    throw ParseError("submit description has no executable");
  }
  return description;
}

std::vector<JobAd> expand_submit_description(const SubmitDescription& description) {
  std::vector<JobAd> jobs;
  jobs.reserve(description.queue);
  for (std::size_t process = 0; process < description.queue; ++process) {
    JobAd job = description.job;
    job.ad.set("process", static_cast<long>(process));
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace pga::htc
