// A miniature ClassAd system in the spirit of HTCondor's matchmaking
// language: attribute maps plus a small expression language evaluated
// against a (MY, TARGET) pair of ads.
//
// Supported syntax:
//   literals   42, 3.5, "string", true, false, undefined
//   references Attr, MY.Attr, TARGET.Attr   (case-insensitive)
//   operators  || && == != < <= > >= + - * / unary! unary-  ( ) ?:
//   functions  min max floor ceiling round abs pow isUndefined
//              ifThenElse strcat toLower toUpper size stringListMember
//
// Undefined propagates through operators like HTCondor's: any comparison
// or arithmetic touching undefined is undefined, and a requirements
// expression only matches when it evaluates to definitively true.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>

namespace pga::htc {

/// One attribute value.
class Value {
 public:
  Value() : data_(Undefined{}) {}
  Value(bool b) : data_(b) {}                         // NOLINT(google-explicit-constructor)
  Value(long i) : data_(i) {}                         // NOLINT
  Value(int i) : data_(static_cast<long>(i)) {}       // NOLINT
  Value(double d) : data_(d) {}                       // NOLINT
  Value(std::string s) : data_(std::move(s)) {}       // NOLINT
  Value(const char* s) : data_(std::string(s)) {}     // NOLINT

  [[nodiscard]] bool is_undefined() const;
  [[nodiscard]] bool is_bool() const;
  [[nodiscard]] bool is_number() const;  ///< integer or real
  [[nodiscard]] bool is_integer() const;
  [[nodiscard]] bool is_string() const;

  /// Numeric view (integer widens to double). Throws if not a number.
  [[nodiscard]] double as_number() const;
  [[nodiscard]] bool as_bool() const;                ///< throws if not bool
  [[nodiscard]] const std::string& as_string() const;  ///< throws if not string

  /// Human-readable rendering ("undefined", "true", "42", "\"str\"").
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Value&, const Value&) = default;

 private:
  struct Undefined {
    friend bool operator==(const Undefined&, const Undefined&) = default;
  };
  std::variant<Undefined, bool, long, double, std::string> data_;
};

/// An attribute map. Lookup is case-insensitive (attribute names are
/// normalized to lower case).
class ClassAd {
 public:
  /// Sets (or replaces) an attribute.
  void set(const std::string& name, Value value);

  /// Attribute value; Undefined when absent.
  [[nodiscard]] Value get(const std::string& name) const;

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::size_t size() const { return attrs_.size(); }
  [[nodiscard]] const std::map<std::string, Value>& attributes() const {
    return attrs_;
  }

 private:
  std::map<std::string, Value> attrs_;  // keys lower-cased
};

/// A parsed expression, reusable across evaluations.
class Expression {
 public:
  /// Parses `text`; throws ParseError on syntax errors.
  static Expression parse(const std::string& text);

  Expression(Expression&&) noexcept;
  Expression& operator=(Expression&&) noexcept;
  Expression(const Expression&);
  Expression& operator=(const Expression&);
  ~Expression();

  /// Evaluates against a MY ad and an optional TARGET ad. Bare attribute
  /// references resolve in MY first, then TARGET.
  [[nodiscard]] Value evaluate(const ClassAd& my, const ClassAd* target = nullptr) const;

  /// HTCondor requirements semantics: true only if evaluate() is the
  /// boolean true (undefined and non-bool are NOT matches).
  [[nodiscard]] bool evaluate_bool(const ClassAd& my,
                                   const ClassAd* target = nullptr) const;

  /// The original source text.
  [[nodiscard]] const std::string& text() const { return text_; }

  /// Parse-tree node (definition private to the implementation file).
  struct Node;

 private:
  explicit Expression(std::unique_ptr<Node> root, std::string text);
  std::unique_ptr<Node> root_;
  std::string text_;
};

}  // namespace pga::htc
