// The "local universe": really executes task callables on a bounded
// thread pool and produces kickstart-style timing records.
#pragma once

#include <functional>
#include <future>
#include <string>

#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"

namespace pga::htc {

/// Outcome + timing of one executed task (the shape of a
/// pegasus-kickstart invocation record).
struct ExecutionRecord {
  bool success = false;
  std::string error;         ///< exception message when !success
  double queue_seconds = 0;  ///< submit -> start (local queueing delay)
  double run_seconds = 0;    ///< start -> end (the "Kickstart Time")
};

/// Executes std::function<void()> payloads with a fixed worker count
/// (= the slots the experiment was allocated). Exceptions thrown by the
/// payload are captured into the record, never propagated — a failing job
/// must not take down the scheduler (the engine decides about retries).
class LocalExecutor {
 public:
  explicit LocalExecutor(std::size_t slots) : pool_(slots) {}

  /// Submits a payload; the future resolves when it finishes.
  std::future<ExecutionRecord> submit(std::function<void()> payload);

  [[nodiscard]] std::size_t slots() const { return pool_.size(); }

  /// Blocks until everything submitted so far has finished.
  void drain() { pool_.wait_idle(); }

 private:
  common::ThreadPool pool_;
};

}  // namespace pga::htc
