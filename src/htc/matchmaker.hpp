// Condor-style matchmaking: pairing job ads with machine ads.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "htc/classad.hpp"

namespace pga::htc {

/// A machine (execution slot) advertisement plus its own requirements on
/// jobs it will accept.
struct MachineAd {
  ClassAd ad;
  std::optional<Expression> requirements;  ///< empty = accepts anything

  /// Convenience constructor for the common attributes our platforms use.
  static MachineAd make(const std::string& name, long cpus, long memory_mb,
                        double speed_factor, bool has_software_stack);
};

/// A job advertisement: attributes + requirements + rank.
struct JobAd {
  ClassAd ad;
  std::optional<Expression> requirements;  ///< must be true of the machine
  std::optional<Expression> rank;          ///< higher is better (numeric)
};

/// One match decision.
struct Match {
  std::size_t machine_index;
  double rank = 0.0;
};

/// Two-sided matchmaking: the job's requirements must hold with
/// (MY=job, TARGET=machine) and the machine's with (MY=machine, TARGET=job).
bool is_match(const JobAd& job, const MachineAd& machine);

/// Best machine for a job: highest job-rank among matches (ties -> lowest
/// index). nullopt when nothing matches.
std::optional<Match> match_best(const JobAd& job,
                                const std::vector<MachineAd>& machines);

/// All matching machine indices, in input order.
std::vector<std::size_t> match_all(const JobAd& job,
                                   const std::vector<MachineAd>& machines);

}  // namespace pga::htc
