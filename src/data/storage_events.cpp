#include "data/storage_events.hpp"

namespace pga::data {

const char* storage_event_name(StorageEventType type) {
  switch (type) {
    case StorageEventType::kFileCreated: return "CREATE";
    case StorageEventType::kFileClosed: return "CLOSEW";
    case StorageEventType::kFileDeleted: return "DELETE";
    case StorageEventType::kCacheEvicted: return "EVICT";
  }
  return "UNKNOWN";
}

void StorageEventBus::subscribe(StorageObserver* observer) {
  observers_.push_back(observer);
}

void StorageEventBus::emit(StorageEvent event) {
  if (clock_ != nullptr) event.time = clock_->now();
  for (StorageObserver* observer : observers_) {
    observer->on_storage_event(event);
  }
}

}  // namespace pga::data
