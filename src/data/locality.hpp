// Data-locality-aware scheduling: release the ready job with the most of
// its data already resident where it will run.
//
// Lives in pga_data (not pga_wms with the other policies) because it
// scores against live TransferManager storage-element state, and the wms
// layer cannot depend on the data layer. Consequently wms::make_policy
// cannot construct it — callers that want it (FleetController via
// FleetOptions::policy = "data-locality", benches, tests) build it here
// with the manager in hand.
#pragma once

#include <memory>

#include "data/transfer_manager.hpp"
#include "wms/scheduler.hpp"

namespace pga::data {

/// Knob name accepted by FleetOptions::policy for this policy.
inline constexpr const char* kLocalityPolicyName = "data-locality";

/// Ranks ready jobs by the total bytes of their argument LFNs already
/// resident on the job's site's storage element, largest first — a
/// stage-in whose inputs are still cached beats one whose inputs were
/// evicted, so hot data is consumed before churn evicts it. Jobs whose
/// args aren't LFNs (plain compute) score 0; ties (including all-zero
/// rounds) fall back to FIFO order, so on sites without residency
/// tracking the policy degrades to exactly FIFO. `manager` is borrowed
/// and must outlive the policy.
[[nodiscard]] std::unique_ptr<wms::SchedulingPolicy> make_locality_policy(
    const TransferManager& manager);

}  // namespace pga::data
