// Bandwidth-modeled transfer scheduling over per-site storage elements.
//
// Stage-in/stage-out in the stock model is a flat cost hint; here each
// transfer is a discrete event: it queues for a slot on both endpoints,
// runs for latency + bytes / min(source out-bandwidth, dest in-bandwidth)
// simulated seconds, can fail (seeded draw) and retries with a fixed
// backoff until its retry budget is spent. Replica selection prefers a
// same-site copy, then the registered source with the largest serving
// bandwidth — the policy a Pegasus replica selector would apply.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "data/storage_element.hpp"
#include "sim/event_queue.hpp"
#include "wms/catalog.hpp"

namespace pga::data {

/// Tunables shared by every transfer.
struct TransferConfig {
  double latency_seconds = 2.0;      ///< per-transfer setup cost (handshake)
  double failure_probability = 0.0;  ///< per-attempt chance of a failed copy
  std::size_t max_retries = 3;       ///< extra attempts after the first
  double retry_backoff_seconds = 30; ///< cool-off before re-queuing a failure
  std::uint64_t seed = 11;           ///< failure-draw stream
};

/// Outcome of one logical transfer (after retries, if any).
struct TransferResult {
  std::string lfn;
  std::string source_site;
  std::string dest_site;
  std::uint64_t bytes = 0;
  double submit_time = 0;   ///< when the transfer was requested
  double start_time = 0;    ///< when the first attempt got its slots
  double end_time = 0;      ///< when it finished (or exhausted retries)
  std::size_t attempts = 0; ///< tries consumed (1 = clean first try)
  bool success = false;
  std::string failure;      ///< e.g. "transfer failed" when !success
};

/// Fires exactly once per transfer() call.
using TransferCallback = std::function<void(const TransferResult&)>;

/// Schedules transfers between registered StorageElements on the shared
/// simulation event queue. Deterministic: a fixed (config, seed) and call
/// sequence replays byte-identically.
class TransferManager {
 public:
  /// `queue` is the experiment's clock; it must outlive the manager.
  TransferManager(sim::EventQueue& queue, TransferConfig config = {});

  /// Registers a site's storage element. Re-adding a site replaces its
  /// configuration (but not any in-flight slot accounting — register
  /// elements before transferring).
  void add_element(StorageElementConfig config);
  [[nodiscard]] bool has_element(const std::string& site) const;

  /// Attaches a storage-event stream to every registered element, and to
  /// every element registered or auto-created afterwards (nullptr
  /// detaches). The bus is borrowed and must outlive the manager.
  void set_event_bus(StorageEventBus* bus);
  [[nodiscard]] StorageEventBus* event_bus() const { return event_bus_; }
  /// Throws InvalidArgument for unregistered sites.
  [[nodiscard]] StorageElement& element(const std::string& site);
  [[nodiscard]] const StorageElement& element(const std::string& site) const;

  /// Replica selection for staging `lfn` to `dest_site`: the same-site
  /// replica with the smallest pfn; else, among replicas whose site has a
  /// registered element, the one with the largest out-bandwidth (smallest
  /// (site, pfn) on ties); else the catalog-wide smallest (site, pfn).
  [[nodiscard]] std::optional<wms::Replica> select_source(
      const wms::ReplicaCatalog& catalog, const std::string& lfn,
      const std::string& dest_site) const;

  /// Queues one transfer. Unregistered endpoints are auto-registered with
  /// default element configs so callers can stage against sparse site
  /// catalogs. The callback fires via the event queue after the transfer
  /// succeeds or exhausts its retries.
  void transfer(const std::string& lfn, std::uint64_t bytes,
                const std::string& source_site, const std::string& dest_site,
                TransferCallback on_complete);

  /// Modeled duration of one clean attempt (latency + bandwidth term).
  [[nodiscard]] double duration_for(std::uint64_t bytes, const std::string& source_site,
                                    const std::string& dest_site) const;

  [[nodiscard]] std::size_t queued() const { return waiting_.size(); }
  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }

  /// Telemetry since construction.
  struct Stats {
    std::uint64_t bytes_moved = 0;  ///< successfully transferred payload
    std::size_t completed = 0;      ///< transfers that succeeded
    std::size_t failed = 0;         ///< transfers that exhausted retries
    std::size_t retries = 0;        ///< failed attempts that re-queued
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Request {
    std::string lfn;
    std::uint64_t bytes = 0;
    std::string source_site;
    std::string dest_site;
    TransferCallback on_complete;
    double submit_time = 0;
    double first_start = -1;  ///< <0 until the first attempt starts
    std::size_t attempts = 0;
  };

  StorageElement& ensure_element(const std::string& site);
  /// Starts every queued request whose endpoints have free slots. Scans
  /// past blocked requests so one saturated site pair cannot head-of-line
  /// block transfers between idle sites.
  void pump();
  void start(std::shared_ptr<Request> request);
  void finish(const std::shared_ptr<Request>& request, bool success);

  sim::EventQueue& queue_;
  TransferConfig config_;
  common::Rng rng_;
  std::map<std::string, StorageElement> elements_;
  StorageEventBus* event_bus_ = nullptr;
  std::deque<std::shared_ptr<Request>> waiting_;
  std::size_t in_flight_ = 0;
  Stats stats_;
};

}  // namespace pga::data
