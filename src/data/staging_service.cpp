#include "data/staging_service.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pga::data {

StagingService::StagingService(sim::EventQueue& queue, wms::ExecutionService& inner,
                               TransferManager& transfers,
                               const wms::ReplicaCatalog& replicas,
                               StagingConfig config)
    : queue_(queue),
      inner_(inner),
      transfers_(transfers),
      replicas_(replicas),
      config_(std::move(config)) {
  if (config_.submit_site.empty()) {
    throw common::InvalidArgument("StagingService: empty submit_site");
  }
  if (config_.execution_site.empty()) {
    throw common::InvalidArgument("StagingService: empty execution_site");
  }
}

void StagingService::submit(const wms::ConcreteJob& job) {
  const bool staging_job = (job.kind == wms::JobKind::kStageIn ||
                            job.kind == wms::JobKind::kStageOut) &&
                           !job.args.empty();
  if (!staging_job) {
    ++inner_outstanding_;
    inner_.submit(job);
    return;
  }
  stage(job);
}

void StagingService::stage(const wms::ConcreteJob& job) {
  ++own_outstanding_;
  ++staged_jobs_;
  auto staging = std::make_shared<StagingJob>();
  staging->job_id = job.id;
  staging->transformation = job.transformation;
  staging->site = config_.execution_site;
  staging->submit_time = queue_.now();
  staging->remaining = job.args.size();

  const std::string& exec_site = config_.execution_site;
  const bool inbound = job.kind == wms::JobKind::kStageIn;
  for (const auto& lfn : job.args) {
    if (inbound && config_.reuse_resident && transfers_.has_element(exec_site) &&
        transfers_.element(exec_site).holds(lfn)) {
      // Already resident at the destination: no transfer, just refresh LRU
      // recency. A fully-resident job completes synchronously here.
      StorageElement& element = transfers_.element(exec_site);
      bypassed_bytes_ += element.held_bytes(lfn);
      ++bypassed_files_;
      element.touch(lfn);
      if (--staging->remaining == 0) complete(staging);
      continue;
    }
    std::string source = inbound ? config_.submit_site : exec_site;
    std::string dest = inbound ? exec_site : config_.submit_site;
    std::uint64_t bytes = config_.default_file_bytes;
    if (inbound) {
      const auto replica = transfers_.select_source(replicas_, lfn, exec_site);
      if (replica.has_value()) {
        source = replica->site;
        if (replica->size_bytes > 0) bytes = replica->size_bytes;
      }
    } else {
      const auto replica = replicas_.best_for_site(lfn, exec_site);
      if (replica.has_value() && replica->size_bytes > 0) bytes = replica->size_bytes;
    }
    transfers_.transfer(lfn, bytes, source, dest,
                        [this, staging](const TransferResult& result) {
                          if (staging->first_start < 0 ||
                              result.start_time < staging->first_start) {
                            staging->first_start = result.start_time;
                          }
                          staging->last_end =
                              std::max(staging->last_end, result.end_time);
                          staging->attempts += result.attempts;
                          if (result.success) {
                            staging->bytes += result.bytes;
                          } else {
                            staging->all_ok = false;
                            if (staging->error.empty()) {
                              staging->error = result.lfn + ": " + result.failure;
                            }
                          }
                          if (--staging->remaining == 0) complete(staging);
                        });
  }
}

void StagingService::complete(const std::shared_ptr<StagingJob>& staging) {
  wms::TaskAttempt attempt;
  attempt.job_id = staging->job_id;
  attempt.transformation = staging->transformation;
  attempt.success = staging->all_ok;
  attempt.error = staging->error;
  attempt.node = staging->site + "-se";
  attempt.submit_time = staging->submit_time;
  // A job whose every file was bypassed never ran a transfer, leaving
  // last_end at 0 — clamp to the submit instant so time never runs
  // backwards in the attempt record.
  attempt.end_time = std::max(staging->last_end, staging->submit_time);
  const double start =
      staging->first_start < 0 ? staging->submit_time : staging->first_start;
  attempt.wait_seconds = start - staging->submit_time;
  attempt.exec_seconds = attempt.end_time - start;
  attempt.transferred_bytes = staging->bytes;
  attempt.transfer_attempts = staging->attempts;
  completed_.push_back(std::move(attempt));
  --own_outstanding_;
}

std::vector<wms::TaskAttempt> StagingService::drain() {
  // wait_for(0) drains the inner service's finished attempts (and lets it
  // run events already due at the current instant) without advancing time.
  // It must run BEFORE our own queue is snapshotted: stepping those
  // same-instant events can finish our transfers and push into completed_.
  std::vector<wms::TaskAttempt> out;
  for (auto& attempt : inner_.wait_for(0)) {
    --inner_outstanding_;
    out.push_back(std::move(attempt));
  }
  for (auto& attempt : completed_) out.push_back(std::move(attempt));
  completed_.clear();
  return out;
}

std::vector<wms::TaskAttempt> StagingService::wait() {
  for (;;) {
    auto out = drain();
    if (!out.empty()) return out;
    if (own_outstanding_ == 0 && inner_outstanding_ == 0) return {};
    if (queue_.step()) continue;
    if (inner_outstanding_ > 0) {
      // No queue event can make progress, but the inner service still owes
      // attempts: a decorator (e.g. a fault injector) may be withholding
      // completions on its own schedule. Let it advance the clock itself.
      auto held = inner_.wait();
      for (auto& attempt : held) {
        --inner_outstanding_;
        completed_.push_back(std::move(attempt));
      }
      if (!held.empty()) continue;
    }
    throw common::WorkflowError(
        "staging deadlock: outstanding transfers/jobs but no pending events");
  }
}

std::vector<wms::TaskAttempt> StagingService::wait_for(double timeout_seconds) {
  const double deadline = queue_.now() + std::max(0.0, timeout_seconds);
  for (;;) {
    auto out = drain();
    if (!out.empty()) return out;
    const auto next = queue_.next_time();
    if (next.has_value() && *next <= deadline) {
      queue_.step();
      continue;
    }
    // No queue event lands by the deadline, so none of OUR transfers can
    // finish in the window — but a decorated inner service may still be
    // withholding completions (e.g. delay faults), released only from its
    // own wait calls. Delegate the residual window so it can burn the
    // simulated time and surface those; with a bare SimService this just
    // advances the shared clock to the deadline.
    if (inner_outstanding_ > 0) {
      auto held = inner_.wait_for(std::max(0.0, deadline - queue_.now()));
      if (!held.empty()) {
        inner_outstanding_ -= held.size();
        return held;
      }
    }
    queue_.advance_to(deadline);
    return {};
  }
}

}  // namespace pga::data
