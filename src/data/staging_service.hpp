// StagingService — an ExecutionService decorator (same shape as
// wms::FaultyService) that intercepts the planner's stage-in/stage-out
// jobs and realizes them as modeled transfers on the TransferManager
// instead of flat-cost simulated jobs. Compute/setup/cleanup jobs pass
// through to the wrapped service untouched.
//
// Stage-in: every LFN in the job's args is transferred from its selected
// replica source (TransferManager::select_source) to the execution site.
// Stage-out: every LFN moves from the execution site back to the submit
// site. The per-file transfers of one job run concurrently (slots
// permitting) and are folded into one TaskAttempt: success means every
// file landed; a file that exhausts its retries fails the whole attempt,
// which the DAGMan engine then retries like any other failed job.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "data/transfer_manager.hpp"
#include "sim/event_queue.hpp"
#include "wms/catalog.hpp"
#include "wms/exec_service.hpp"

namespace pga::data {

/// Tunables for the staging decorator.
struct StagingConfig {
  std::string submit_site = "local";  ///< where inputs start and outputs land
  /// The execution site all staged jobs run against. The slimmed
  /// ConcreteJob no longer carries a per-job site (the planner maps one
  /// workflow to one site), so the decorator takes it once here instead.
  std::string execution_site;
  /// Bytes assumed per staged file when the replica catalog has no size
  /// (notably workflow outputs, which have no replica at plan time).
  std::uint64_t default_file_bytes = 0;
  /// Skip the transfer for a stage-in file already resident on the
  /// destination's storage element (touching it for LRU recency) instead
  /// of re-copying it — what makes data-locality scheduling save bytes.
  /// Off by default: staging behavior stays byte-identical.
  bool reuse_resident = false;
};

/// Decorates a simulation-backed ExecutionService with modeled staging.
/// The inner service must share `queue` (its completions and the
/// transfer events interleave on one clock); this matches SimService.
class StagingService final : public wms::ExecutionService {
 public:
  /// All references must outlive the service.
  StagingService(sim::EventQueue& queue, wms::ExecutionService& inner,
                 TransferManager& transfers, const wms::ReplicaCatalog& replicas,
                 StagingConfig config = {});

  void submit(const wms::ConcreteJob& job) override;
  std::vector<wms::TaskAttempt> wait() override;
  std::vector<wms::TaskAttempt> wait_for(double timeout_seconds) override;
  void avoid_node(const std::string& node) override { inner_.avoid_node(node); }
  double now() override { return queue_.now(); }
  [[nodiscard]] double next_event_time() override {
    return inner_.next_event_time();  // transfers are queue-driven
  }
  [[nodiscard]] std::string label() const override { return inner_.label(); }

  /// Staging attempts intercepted so far (for reporting/tests).
  [[nodiscard]] std::size_t staged_jobs() const { return staged_jobs_; }
  /// Stage-in files (and their bytes) skipped because the destination
  /// already held them (reuse_resident only).
  [[nodiscard]] std::size_t bypassed_files() const { return bypassed_files_; }
  [[nodiscard]] std::uint64_t bypassed_bytes() const { return bypassed_bytes_; }

 private:
  /// Aggregates the per-file transfers of one staging job.
  struct StagingJob {
    std::string job_id;
    std::string transformation;
    std::string site;
    double submit_time = 0;
    std::size_t remaining = 0;
    bool all_ok = true;
    std::string error;
    double first_start = -1;
    double last_end = 0;
    std::uint64_t bytes = 0;
    std::size_t attempts = 0;
  };

  void stage(const wms::ConcreteJob& job);
  void complete(const std::shared_ptr<StagingJob>& staging);
  /// Everything finished so far: own staged attempts + the inner
  /// service's, drained without advancing time.
  std::vector<wms::TaskAttempt> drain();

  sim::EventQueue& queue_;
  wms::ExecutionService& inner_;
  TransferManager& transfers_;
  const wms::ReplicaCatalog& replicas_;
  StagingConfig config_;

  std::deque<wms::TaskAttempt> completed_;
  std::size_t own_outstanding_ = 0;
  std::size_t inner_outstanding_ = 0;
  std::size_t staged_jobs_ = 0;
  std::size_t bypassed_files_ = 0;
  std::uint64_t bypassed_bytes_ = 0;
};

}  // namespace pga::data
