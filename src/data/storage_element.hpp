// Per-site storage elements — the data layer's model of a site's scratch
// or gridftp endpoint (CERN EOS being the production-scale exemplar): a
// byte capacity, asymmetric in/out bandwidth, and a bounded number of
// concurrent transfer slots. The TransferManager owns one element per
// site and schedules transfers against their slots and bandwidths.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>

namespace pga::data {

/// Tunables for one site's storage element.
struct StorageElementConfig {
  std::string site;                   ///< owning site ("local", "osg", ...)
  std::uint64_t capacity_bytes = 0;   ///< 0 = unbounded scratch
  double bandwidth_in_bps = 100e6;    ///< sustained ingest bandwidth
  double bandwidth_out_bps = 100e6;   ///< sustained serving bandwidth
  std::size_t transfer_slots = 4;     ///< concurrent transfers (in + out)
};

/// One site's storage: a set of held files plus transfer-slot accounting.
/// Purely bookkeeping — durations and queuing live in TransferManager, so
/// this class stays deterministic and trivially testable.
class StorageElement {
 public:
  explicit StorageElement(StorageElementConfig config);

  [[nodiscard]] const std::string& site() const { return config_.site; }
  [[nodiscard]] const StorageElementConfig& config() const { return config_; }

  /// Whether the element currently holds `lfn`.
  [[nodiscard]] bool holds(const std::string& lfn) const;
  /// Records `lfn` as held (replacing any previous size). Returns false —
  /// and stores nothing — when a bounded element lacks the free space;
  /// the transfer itself still succeeded, the copy just isn't retained.
  bool store(const std::string& lfn, std::uint64_t bytes);
  /// Drops `lfn` if held (no-op otherwise).
  void evict(const std::string& lfn);

  [[nodiscard]] std::uint64_t used_bytes() const { return used_; }
  /// Free space; unbounded elements report uint64 max.
  [[nodiscard]] std::uint64_t free_bytes() const;
  [[nodiscard]] std::size_t file_count() const { return files_.size(); }

  /// Transfer-slot accounting (one slot per active transfer touching this
  /// element, whichever direction).
  [[nodiscard]] bool slot_available() const {
    return active_transfers_ < config_.transfer_slots;
  }
  void acquire_slot();
  void release_slot();
  [[nodiscard]] std::size_t active_transfers() const { return active_transfers_; }

 private:
  StorageElementConfig config_;
  std::map<std::string, std::uint64_t> files_;  ///< lfn -> bytes
  std::uint64_t used_ = 0;
  std::size_t active_transfers_ = 0;
};

}  // namespace pga::data
