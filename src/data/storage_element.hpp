// Per-site storage elements — the data layer's model of a site's scratch
// or gridftp endpoint (CERN EOS being the production-scale exemplar): a
// byte capacity, asymmetric in/out bandwidth, and a bounded number of
// concurrent transfer slots. The TransferManager owns one element per
// site and schedules transfers against their slots and bandwidths.
//
// Elements optionally publish typed StorageEvents (create/closew/delete/
// evict, mirroring EOS) into a StorageEventBus — the stream the trigger
// subsystem chains workflows off — and can run a deterministic LRU
// eviction policy on bounded capacity instead of rejecting stores.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>

#include "data/storage_events.hpp"

namespace pga::data {

/// Tunables for one site's storage element.
struct StorageElementConfig {
  std::string site;                   ///< owning site ("local", "osg", ...)
  std::uint64_t capacity_bytes = 0;   ///< 0 = unbounded scratch
  double bandwidth_in_bps = 100e6;    ///< sustained ingest bandwidth
  double bandwidth_out_bps = 100e6;   ///< sustained serving bandwidth
  std::size_t transfer_slots = 4;     ///< concurrent transfers (in + out)
  /// When a bounded element lacks space for a store, evict least-recently-
  /// used files (oldest store/touch first) until it fits instead of
  /// rejecting the store. Off by default: the pre-existing reject-on-full
  /// behavior stays byte-identical.
  bool evict_lru = false;
};

/// One site's storage: a set of held files plus transfer-slot accounting.
/// Purely bookkeeping — durations and queuing live in TransferManager, so
/// this class stays deterministic and trivially testable.
class StorageElement {
 public:
  explicit StorageElement(StorageElementConfig config);

  [[nodiscard]] const std::string& site() const { return config_.site; }
  [[nodiscard]] const StorageElementConfig& config() const { return config_; }

  /// Whether the element currently holds `lfn`.
  [[nodiscard]] bool holds(const std::string& lfn) const;
  /// Bytes held for `lfn` (0 when not held).
  [[nodiscard]] std::uint64_t held_bytes(const std::string& lfn) const;
  /// Records `lfn` as held (replacing any previous size). Returns false —
  /// and stores nothing — when a bounded element lacks the free space;
  /// with `evict_lru` set, least-recently-used files are dropped first
  /// (each emitting kCacheEvicted) and the store only fails when the file
  /// is larger than the whole capacity. A successful store emits
  /// kFileCreated on first store of the LFN, then kFileClosed always.
  bool store(const std::string& lfn, std::uint64_t bytes);
  /// Drops `lfn` if held (no-op otherwise); emits kFileDeleted when held.
  void evict(const std::string& lfn);
  /// Marks `lfn` as recently used for LRU purposes (no-op when not held).
  void touch(const std::string& lfn);

  /// Attaches the event stream (nullptr detaches). The bus is borrowed
  /// and must outlive the element.
  void set_event_sink(StorageEventBus* bus) { events_ = bus; }
  [[nodiscard]] StorageEventBus* event_sink() const { return events_; }

  [[nodiscard]] std::uint64_t used_bytes() const { return used_; }
  /// Free space; unbounded elements report uint64 max.
  [[nodiscard]] std::uint64_t free_bytes() const;
  [[nodiscard]] std::size_t file_count() const { return files_.size(); }

  /// Transfer-slot accounting (one slot per active transfer touching this
  /// element, whichever direction).
  [[nodiscard]] bool slot_available() const {
    return active_transfers_ < config_.transfer_slots;
  }
  void acquire_slot();
  void release_slot();
  [[nodiscard]] std::size_t active_transfers() const { return active_transfers_; }

 private:
  struct FileInfo {
    std::uint64_t bytes = 0;
    std::uint64_t seq = 0;  ///< last store/touch tick, for LRU ordering
  };

  void emit(StorageEventType type, const std::string& lfn, std::uint64_t bytes);

  StorageElementConfig config_;
  std::map<std::string, FileInfo> files_;  ///< lfn -> info
  std::uint64_t used_ = 0;
  std::uint64_t seq_ = 0;
  std::size_t active_transfers_ = 0;
  StorageEventBus* events_ = nullptr;
};

}  // namespace pga::data
