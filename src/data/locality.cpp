#include "data/locality.hpp"

#include <cstdint>
#include <string>

namespace pga::data {
namespace {

class LocalityPolicy final : public wms::SchedulingPolicy {
 public:
  explicit LocalityPolicy(const TransferManager& manager) : manager_(&manager) {}

  [[nodiscard]] std::string name() const override { return kLocalityPolicyName; }

  void prepare(const wms::ConcreteWorkflow& workflow) override {
    workflow_ = &workflow;
  }

  [[nodiscard]] std::size_t pick(const std::deque<std::uint32_t>& ready) override {
    // Argmax with earliest-position tie-break (matches the argmax_position
    // discipline of the wms policies: strict > keeps FIFO order on ties).
    std::size_t best = 0;
    std::uint64_t best_score = resident_bytes(ready.front());
    for (std::size_t position = 1; position < ready.size(); ++position) {
      const std::uint64_t score = resident_bytes(ready[position]);
      if (score > best_score) {
        best = position;
        best_score = score;
      }
    }
    return best;
  }

 private:
  /// Total bytes of the job's argument LFNs already held on the element at
  /// the job's site. Args that aren't held (or aren't LFNs at all) add 0.
  [[nodiscard]] std::uint64_t resident_bytes(std::uint32_t index) const {
    const wms::ConcreteJob& job = workflow_->jobs()[index];
    const std::string& site = workflow_->site();
    if (!manager_->has_element(site)) return 0;
    const StorageElement& element = manager_->element(site);
    std::uint64_t total = 0;
    for (const std::string& lfn : job.args) {
      total += element.held_bytes(lfn);
    }
    return total;
  }

  const TransferManager* manager_;
  const wms::ConcreteWorkflow* workflow_ = nullptr;
};

}  // namespace

std::unique_ptr<wms::SchedulingPolicy> make_locality_policy(
    const TransferManager& manager) {
  return std::make_unique<LocalityPolicy>(manager);
}

}  // namespace pga::data
