#include "data/storage_element.hpp"

#include "common/error.hpp"

namespace pga::data {

StorageElement::StorageElement(StorageElementConfig config)
    : config_(std::move(config)) {
  if (config_.site.empty()) {
    throw common::InvalidArgument("StorageElement: empty site name");
  }
  if (config_.bandwidth_in_bps <= 0 || config_.bandwidth_out_bps <= 0) {
    throw common::InvalidArgument("StorageElement: bandwidth must be > 0");
  }
  if (config_.transfer_slots == 0) {
    throw common::InvalidArgument("StorageElement: transfer_slots must be >= 1");
  }
}

bool StorageElement::holds(const std::string& lfn) const {
  return files_.count(lfn) != 0;
}

std::uint64_t StorageElement::held_bytes(const std::string& lfn) const {
  const auto it = files_.find(lfn);
  return it == files_.end() ? 0 : it->second.bytes;
}

bool StorageElement::store(const std::string& lfn, std::uint64_t bytes) {
  const auto it = files_.find(lfn);
  const bool existed = it != files_.end();
  const std::uint64_t previous = existed ? it->second.bytes : 0;
  std::uint64_t would_use = used_ - previous + bytes;
  if (config_.capacity_bytes > 0 && would_use > config_.capacity_bytes) {
    if (!config_.evict_lru || bytes > config_.capacity_bytes) return false;
    // Drop least-recently-used victims (never the LFN being stored —
    // overwrite accounting already reclaimed its old bytes) until it fits.
    // The victim scan is O(n) but deterministic: smallest seq wins, and
    // seq ties are impossible because every store/touch gets a fresh tick.
    while (would_use > config_.capacity_bytes) {
      auto victim = files_.end();
      for (auto cur = files_.begin(); cur != files_.end(); ++cur) {
        if (cur->first == lfn) continue;
        if (victim == files_.end() || cur->second.seq < victim->second.seq) {
          victim = cur;
        }
      }
      if (victim == files_.end()) return false;  // nothing left to evict
      used_ -= victim->second.bytes;
      would_use -= victim->second.bytes;
      const std::string evicted = victim->first;
      const std::uint64_t evicted_bytes = victim->second.bytes;
      files_.erase(victim);
      emit(StorageEventType::kCacheEvicted, evicted, evicted_bytes);
    }
  }
  files_[lfn] = FileInfo{bytes, ++seq_};
  used_ = would_use;
  if (!existed) emit(StorageEventType::kFileCreated, lfn, bytes);
  emit(StorageEventType::kFileClosed, lfn, bytes);
  return true;
}

void StorageElement::evict(const std::string& lfn) {
  const auto it = files_.find(lfn);
  if (it == files_.end()) return;
  const std::uint64_t bytes = it->second.bytes;
  used_ -= bytes;
  files_.erase(it);
  emit(StorageEventType::kFileDeleted, lfn, bytes);
}

void StorageElement::touch(const std::string& lfn) {
  const auto it = files_.find(lfn);
  if (it == files_.end()) return;
  it->second.seq = ++seq_;
}

std::uint64_t StorageElement::free_bytes() const {
  if (config_.capacity_bytes == 0) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return config_.capacity_bytes > used_ ? config_.capacity_bytes - used_ : 0;
}

void StorageElement::acquire_slot() {
  if (!slot_available()) {
    throw common::WorkflowError("StorageElement " + config_.site +
                                ": no transfer slot available");
  }
  ++active_transfers_;
}

void StorageElement::release_slot() {
  if (active_transfers_ == 0) {
    throw common::WorkflowError("StorageElement " + config_.site +
                                ": release_slot without acquire");
  }
  --active_transfers_;
}

void StorageElement::emit(StorageEventType type, const std::string& lfn,
                          std::uint64_t bytes) {
  if (events_ == nullptr) return;
  StorageEvent event;
  event.type = type;
  event.site = config_.site;
  event.lfn = lfn;
  event.bytes = bytes;
  events_->emit(event);
}

}  // namespace pga::data
