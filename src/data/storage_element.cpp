#include "data/storage_element.hpp"

#include "common/error.hpp"

namespace pga::data {

StorageElement::StorageElement(StorageElementConfig config)
    : config_(std::move(config)) {
  if (config_.site.empty()) {
    throw common::InvalidArgument("StorageElement: empty site name");
  }
  if (config_.bandwidth_in_bps <= 0 || config_.bandwidth_out_bps <= 0) {
    throw common::InvalidArgument("StorageElement: bandwidth must be > 0");
  }
  if (config_.transfer_slots == 0) {
    throw common::InvalidArgument("StorageElement: transfer_slots must be >= 1");
  }
}

bool StorageElement::holds(const std::string& lfn) const {
  return files_.count(lfn) != 0;
}

bool StorageElement::store(const std::string& lfn, std::uint64_t bytes) {
  const auto it = files_.find(lfn);
  const std::uint64_t previous = it == files_.end() ? 0 : it->second;
  const std::uint64_t would_use = used_ - previous + bytes;
  if (config_.capacity_bytes > 0 && would_use > config_.capacity_bytes) {
    return false;
  }
  files_[lfn] = bytes;
  used_ = would_use;
  return true;
}

void StorageElement::evict(const std::string& lfn) {
  const auto it = files_.find(lfn);
  if (it == files_.end()) return;
  used_ -= it->second;
  files_.erase(it);
}

std::uint64_t StorageElement::free_bytes() const {
  if (config_.capacity_bytes == 0) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return config_.capacity_bytes > used_ ? config_.capacity_bytes - used_ : 0;
}

void StorageElement::acquire_slot() {
  if (!slot_available()) {
    throw common::WorkflowError("StorageElement " + config_.site +
                                ": no transfer slot available");
  }
  ++active_transfers_;
}

void StorageElement::release_slot() {
  if (active_transfers_ == 0) {
    throw common::WorkflowError("StorageElement " + config_.site +
                                ": release_slot without acquire");
  }
  --active_transfers_;
}

}  // namespace pga::data
