#include "data/transfer_manager.hpp"

#include <algorithm>
#include <tuple>

#include "common/error.hpp"

namespace pga::data {

using common::InvalidArgument;

TransferManager::TransferManager(sim::EventQueue& queue, TransferConfig config)
    : queue_(queue), config_(config), rng_(config.seed) {
  if (config_.latency_seconds < 0) {
    throw InvalidArgument("TransferManager: latency must be >= 0");
  }
  if (config_.failure_probability < 0 || config_.failure_probability >= 1.0) {
    throw InvalidArgument("TransferManager: failure_probability must be in [0,1)");
  }
  if (config_.retry_backoff_seconds < 0) {
    throw InvalidArgument("TransferManager: retry backoff must be >= 0");
  }
}

void TransferManager::add_element(StorageElementConfig config) {
  const std::string site = config.site;
  elements_.erase(site);
  auto it = elements_.emplace(site, StorageElement(std::move(config))).first;
  it->second.set_event_sink(event_bus_);
}

void TransferManager::set_event_bus(StorageEventBus* bus) {
  event_bus_ = bus;
  for (auto& [site, element] : elements_) element.set_event_sink(bus);
}

bool TransferManager::has_element(const std::string& site) const {
  return elements_.count(site) != 0;
}

StorageElement& TransferManager::element(const std::string& site) {
  const auto it = elements_.find(site);
  if (it == elements_.end()) {
    throw InvalidArgument("TransferManager: no storage element for site " + site);
  }
  return it->second;
}

const StorageElement& TransferManager::element(const std::string& site) const {
  const auto it = elements_.find(site);
  if (it == elements_.end()) {
    throw InvalidArgument("TransferManager: no storage element for site " + site);
  }
  return it->second;
}

StorageElement& TransferManager::ensure_element(const std::string& site) {
  const auto it = elements_.find(site);
  if (it != elements_.end()) return it->second;
  StorageElementConfig config;
  config.site = site;
  auto created = elements_.emplace(site, StorageElement(std::move(config))).first;
  created->second.set_event_sink(event_bus_);
  return created->second;
}

std::optional<wms::Replica> TransferManager::select_source(
    const wms::ReplicaCatalog& catalog, const std::string& lfn,
    const std::string& dest_site) const {
  const auto candidates = catalog.lookup(lfn);
  if (candidates.empty()) return std::nullopt;

  const wms::Replica* local = nullptr;
  const wms::Replica* fastest = nullptr;
  double fastest_bps = -1;
  const wms::Replica* any = nullptr;
  for (const auto& replica : candidates) {
    if (replica.site == dest_site && (local == nullptr || replica.pfn < local->pfn)) {
      local = &replica;
    }
    const auto it = elements_.find(replica.site);
    if (it != elements_.end()) {
      const double bps = it->second.config().bandwidth_out_bps;
      if (fastest == nullptr || bps > fastest_bps ||
          (bps == fastest_bps && std::tie(replica.site, replica.pfn) <
                                     std::tie(fastest->site, fastest->pfn))) {
        fastest = &replica;
        fastest_bps = bps;
      }
    }
    if (any == nullptr || std::tie(replica.site, replica.pfn) <
                              std::tie(any->site, any->pfn)) {
      any = &replica;
    }
  }
  if (local != nullptr) return *local;
  if (fastest != nullptr) return *fastest;
  return *any;
}

double TransferManager::duration_for(std::uint64_t bytes,
                                     const std::string& source_site,
                                     const std::string& dest_site) const {
  if (source_site == dest_site) return config_.latency_seconds;
  double bps = StorageElementConfig{}.bandwidth_out_bps;
  const auto src = elements_.find(source_site);
  const auto dst = elements_.find(dest_site);
  if (src != elements_.end() && dst != elements_.end()) {
    bps = std::min(src->second.config().bandwidth_out_bps,
                   dst->second.config().bandwidth_in_bps);
  } else if (src != elements_.end()) {
    bps = src->second.config().bandwidth_out_bps;
  } else if (dst != elements_.end()) {
    bps = dst->second.config().bandwidth_in_bps;
  }
  return config_.latency_seconds + static_cast<double>(bytes) / bps;
}

void TransferManager::transfer(const std::string& lfn, std::uint64_t bytes,
                               const std::string& source_site,
                               const std::string& dest_site,
                               TransferCallback on_complete) {
  if (!on_complete) throw InvalidArgument("TransferManager: null callback");
  ensure_element(source_site);
  ensure_element(dest_site);
  auto request = std::make_shared<Request>();
  request->lfn = lfn;
  request->bytes = bytes;
  request->source_site = source_site;
  request->dest_site = dest_site;
  request->on_complete = std::move(on_complete);
  request->submit_time = queue_.now();
  waiting_.push_back(std::move(request));
  pump();
}

void TransferManager::pump() {
  // Scan-first-dispatchable: a request blocked on a busy endpoint must not
  // starve transfers between idle sites behind it. FIFO order still wins
  // among requests contending for the same endpoints.
  for (auto it = waiting_.begin(); it != waiting_.end();) {
    StorageElement& src = element((*it)->source_site);
    StorageElement& dst = element((*it)->dest_site);
    const bool same_site = (*it)->source_site == (*it)->dest_site;
    const bool dispatchable =
        same_site ? dst.slot_available()
                  : (src.slot_available() && dst.slot_available());
    if (!dispatchable) {
      ++it;
      continue;
    }
    std::shared_ptr<Request> request = *it;
    it = waiting_.erase(it);
    start(std::move(request));
    // Restart the scan: start() may have freed nothing, but iterator
    // stability across erase + container growth elsewhere is not worth
    // reasoning about per element.
    it = waiting_.begin();
  }
}

void TransferManager::start(std::shared_ptr<Request> request) {
  StorageElement& src = element(request->source_site);
  StorageElement& dst = element(request->dest_site);
  const bool same_site = request->source_site == request->dest_site;
  if (!same_site) src.acquire_slot();
  dst.acquire_slot();
  // Reading from the source counts as a use for LRU recency (no-op when
  // the source doesn't hold the file or eviction is disabled).
  src.touch(request->lfn);
  ++in_flight_;
  ++request->attempts;
  if (request->first_start < 0) request->first_start = queue_.now();

  const double duration =
      duration_for(request->bytes, request->source_site, request->dest_site);
  // Failure draw order is fixed (fail?, then partial fraction) so the RNG
  // stream — and with it the whole run — replays from the seed.
  bool failed = false;
  double elapsed = duration;
  if (config_.failure_probability > 0) {
    failed = rng_.uniform() < config_.failure_probability;
    if (failed) elapsed = rng_.uniform(0.0, duration);
  }

  queue_.schedule_in(elapsed, [this, request = std::move(request), same_site,
                               failed]() mutable {
    StorageElement& src = element(request->source_site);
    StorageElement& dst = element(request->dest_site);
    if (!same_site) src.release_slot();
    dst.release_slot();
    --in_flight_;
    if (!failed) {
      dst.store(request->lfn, request->bytes);
      finish(request, /*success=*/true);
    } else if (request->attempts <= config_.max_retries) {
      ++stats_.retries;
      queue_.schedule_in(config_.retry_backoff_seconds,
                         [this, request = std::move(request)]() mutable {
                           waiting_.push_back(std::move(request));
                           pump();
                         });
    } else {
      finish(request, /*success=*/false);
    }
    pump();
  });
}

void TransferManager::finish(const std::shared_ptr<Request>& request, bool success) {
  TransferResult result;
  result.lfn = request->lfn;
  result.source_site = request->source_site;
  result.dest_site = request->dest_site;
  result.bytes = request->bytes;
  result.submit_time = request->submit_time;
  result.start_time = request->first_start;
  result.end_time = queue_.now();
  result.attempts = request->attempts;
  result.success = success;
  if (success) {
    stats_.bytes_moved += request->bytes;
    ++stats_.completed;
  } else {
    result.failure = "transfer failed after " + std::to_string(request->attempts) +
                     " attempts";
    ++stats_.failed;
  }
  request->on_complete(result);
}

}  // namespace pga::data
