// The data layer's typed storage-event stream.
//
// Mirrors the CERN EOS Work Flow Engine model: every observable thing a
// StorageElement does — a file written for the first time, a write
// completing (every successful store, EOS's "closew"), a deletion, an
// LRU eviction on a bounded element — is published as one StorageEvent
// on a StorageEventBus. The trigger subsystem (src/trigger/) subscribes
// to this stream and chains follow-on workflows off it; tests subscribe
// to pin the edge-case sequences.
//
// This composes with the PR-2 wms::EngineEvent model rather than reusing
// it: engine events narrate job lifecycle, storage events narrate file
// lifecycle, and the two streams share the same observer discipline
// (synchronous fan-out, borrowed observers, string_views valid only
// during the callback).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/event_queue.hpp"

namespace pga::data {

/// What happened to a file on a storage element.
enum class StorageEventType {
  kFileCreated,   ///< first store of this LFN on the element (EOS sync::create)
  kFileClosed,    ///< a store completed — fires on EVERY successful store,
                  ///< including overwrites (EOS closew); triggers key off this
  kFileDeleted,   ///< explicit evict()/delete of a held LFN (EOS sync::delete)
  kCacheEvicted,  ///< LRU victim dropped to make room on a bounded element
};

/// Short label ("CREATE", "CLOSEW", ...) in EOS's spirit, for logs/tests.
const char* storage_event_name(StorageEventType type);

/// One storage event. `time` is the shared simulation clock at emission
/// (0 when the bus has no clock attached). The string_views point into
/// element-owned storage and are valid only during the observer callback;
/// observers that keep text must copy it.
struct StorageEvent {
  StorageEventType type = StorageEventType::kFileCreated;
  double time = 0;
  std::string_view site;  ///< element the event happened on
  std::string_view lfn;   ///< logical file name
  std::uint64_t bytes = 0;
};

/// Observer interface. Callbacks run synchronously on the simulation
/// thread, in emission order; implementations must not mutate the element
/// that emitted the event from inside the callback.
class StorageObserver {
 public:
  virtual ~StorageObserver() = default;
  virtual void on_storage_event(const StorageEvent& event) = 0;
};

/// A plain synchronous fan-out bus, stamped with the shared simulation
/// clock. Observers are borrowed, not owned; the clock (if any) must
/// outlive the bus.
class StorageEventBus {
 public:
  StorageEventBus() = default;
  explicit StorageEventBus(const sim::EventQueue* clock) : clock_(clock) {}

  void subscribe(StorageObserver* observer);
  /// Stamps `event.time` from the attached clock (if any) and fans out.
  void emit(StorageEvent event);

  void set_clock(const sim::EventQueue* clock) { clock_ = clock; }
  [[nodiscard]] std::size_t observer_count() const { return observers_.size(); }

 private:
  const sim::EventQueue* clock_ = nullptr;
  std::vector<StorageObserver*> observers_;
};

}  // namespace pga::data
