// Per-node software cache — the §VII fix the paper names as future work
// ("setting the proper software configuration on the OSG resources for
// less time"). The stock OSG model charges a download/install draw on
// every attempt; with a cache attached the first completed install on a
// node pays the cold price and later attempts on the same node pay only
// a small hit latency. Eviction is LRU by bytes, so a bounded node disk
// behaves realistically when many bundles compete.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <string>

#include "sim/platform.hpp"

namespace pga::data {

/// Tunables for the per-node cache.
struct SoftwareCacheConfig {
  std::uint64_t capacity_bytes = 8ull << 30;  ///< per-node disk budget (8 GiB)
  double hit_seconds = 5.0;  ///< cost of a warm setup (unpack/verify only)
};

/// LRU-by-bytes cache of software bundles, keyed (node, package).
/// Implements sim::InstallModel: platforms call install() to price a
/// setup and commit() once the install ran to completion (a preempted
/// download never populates the cache). Fully deterministic — no clocks,
/// no randomness — so a cached run replays byte-identically from its seed.
class SoftwareCache final : public sim::InstallModel {
 public:
  explicit SoftwareCache(SoftwareCacheConfig config = {});

  sim::InstallOutcome install(const std::string& node, const std::string& package,
                              std::uint64_t bytes, double cold_seconds) override;
  void commit(const std::string& node, const std::string& package,
              std::uint64_t bytes) override;

  /// Whether `node` currently caches `package`.
  [[nodiscard]] bool cached(const std::string& node, const std::string& package) const;
  /// Bytes cached on `node` (0 for unknown nodes).
  [[nodiscard]] std::uint64_t node_bytes(const std::string& node) const;

  /// Telemetry since construction.
  struct Stats {
    std::size_t hits = 0;       ///< warm installs served
    std::size_t misses = 0;     ///< cold installs priced
    std::size_t evictions = 0;  ///< bundles LRU-evicted for space
    std::uint64_t bytes_cached = 0;  ///< currently held across all nodes
    [[nodiscard]] double hit_rate() const {
      const std::size_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    std::list<std::string>::iterator lru_pos;  ///< position in NodeCache::lru
    std::uint64_t bytes = 0;
  };
  struct NodeCache {
    std::list<std::string> lru;  ///< front = most recently used package
    std::map<std::string, Entry> entries;
    std::uint64_t used = 0;
  };

  void touch(NodeCache& node, const std::string& package);

  SoftwareCacheConfig config_;
  std::map<std::string, NodeCache> nodes_;
  Stats stats_;
};

}  // namespace pga::data
