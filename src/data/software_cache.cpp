#include "data/software_cache.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pga::data {

SoftwareCache::SoftwareCache(SoftwareCacheConfig config) : config_(config) {
  if (config_.hit_seconds < 0) {
    throw common::InvalidArgument("SoftwareCache: hit_seconds must be >= 0");
  }
}

void SoftwareCache::touch(NodeCache& node, const std::string& package) {
  const auto it = node.entries.find(package);
  node.lru.erase(it->second.lru_pos);
  node.lru.push_front(package);
  it->second.lru_pos = node.lru.begin();
}

sim::InstallOutcome SoftwareCache::install(const std::string& node,
                                           const std::string& package,
                                           std::uint64_t /*bytes*/,
                                           double cold_seconds) {
  const auto node_it = nodes_.find(node);
  if (node_it != nodes_.end() && node_it->second.entries.count(package) != 0) {
    touch(node_it->second, package);
    ++stats_.hits;
    return {std::min(config_.hit_seconds, cold_seconds), true};
  }
  ++stats_.misses;
  return {cold_seconds, false};
}

void SoftwareCache::commit(const std::string& node, const std::string& package,
                           std::uint64_t bytes) {
  // A bundle larger than the whole node disk can never be retained.
  if (config_.capacity_bytes > 0 && bytes > config_.capacity_bytes) return;
  NodeCache& cache = nodes_[node];
  const auto it = cache.entries.find(package);
  if (it != cache.entries.end()) {
    touch(cache, package);
    return;
  }
  // Make room, coldest-first.
  while (config_.capacity_bytes > 0 && cache.used + bytes > config_.capacity_bytes) {
    const std::string victim = cache.lru.back();
    const auto victim_it = cache.entries.find(victim);
    cache.used -= victim_it->second.bytes;
    stats_.bytes_cached -= victim_it->second.bytes;
    cache.lru.pop_back();
    cache.entries.erase(victim_it);
    ++stats_.evictions;
  }
  cache.lru.push_front(package);
  cache.entries[package] = {cache.lru.begin(), bytes};
  cache.used += bytes;
  stats_.bytes_cached += bytes;
}

bool SoftwareCache::cached(const std::string& node, const std::string& package) const {
  const auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.entries.count(package) != 0;
}

std::uint64_t SoftwareCache::node_bytes(const std::string& node) const {
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? 0 : it->second.used;
}

}  // namespace pga::data
