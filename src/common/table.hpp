// Fixed-width text table rendering for bench/report output.
#pragma once

#include <string>
#include <vector>

namespace pga::common {

/// Builds a padded ASCII table. Columns are sized to their widest cell;
/// numeric-looking cells are right-aligned, everything else left-aligned.
class Table {
 public:
  /// Sets the header row (defines the column count).
  explicit Table(std::vector<std::string> header);

  /// Appends a data row; must match the header's column count.
  void add_row(std::vector<std::string> row);

  /// Renders with a rule under the header, e.g.
  ///   n     platform   wall time
  ///   ----  ---------  ---------
  ///   10    sandhills  41593
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pga::common
