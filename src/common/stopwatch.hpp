// Wall-clock stopwatch for real (non-simulated) runs.
#pragma once

#include <chrono>

namespace pga::common {

/// Measures elapsed wall time from construction (or the last reset()).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction/reset.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pga::common
