// Filesystem helpers: scratch workspaces and whole-file I/O.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace pga::common {

/// RAII scratch directory. Created unique under the system temp dir (or a
/// given parent) and removed recursively on destruction. Workflow runs use
/// one workspace per run, mirroring a Pegasus scratch/work dir.
class ScratchDir {
 public:
  /// Creates `<parent>/<prefix>-XXXXXX`. Parent defaults to temp_directory_path().
  explicit ScratchDir(const std::string& prefix = "pga",
                      const std::filesystem::path& parent = {});
  ~ScratchDir();

  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;
  ScratchDir(ScratchDir&& other) noexcept;
  ScratchDir& operator=(ScratchDir&& other) noexcept;

  /// Absolute path to the scratch root.
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

  /// Path of a file inside the scratch dir.
  [[nodiscard]] std::filesystem::path file(const std::string& name) const {
    return path_ / name;
  }

  /// Releases ownership: the directory will NOT be deleted.
  void keep() { owned_ = false; }

 private:
  std::filesystem::path path_;
  bool owned_ = true;
};

/// Reads an entire file into a string; throws IoError if unreadable.
std::string read_file(const std::filesystem::path& path);

/// Writes (truncates) a file; throws IoError on failure.
void write_file(const std::filesystem::path& path, const std::string& content);

/// Appends to a file, creating it if missing.
void append_file(const std::filesystem::path& path, const std::string& content);

/// Reads a file as lines (without trailing newlines).
std::vector<std::string> read_lines(const std::filesystem::path& path);

}  // namespace pga::common
