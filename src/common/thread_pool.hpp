// Fixed-size task-queue thread pool.
//
// Follows C++ Core Guidelines CP.4 (think in tasks), CP.24/25 (threads are
// joined, never detached), CP.42 (condition-variable waits always carry a
// predicate) and CP.20 (RAII locking only).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pga::common {

namespace detail {

/// One claimant's range of unclaimed chunk indices, packed as
/// (head << 32) | tail over [head, tail). The owner pops from the front,
/// thieves pop from the back; both race on the same word with CAS, and
/// head/tail only ever move toward each other, so a successful exchange
/// claims its chunk exactly once. Cache-line aligned: each claimant's hot
/// CAS target lives on its own line.
struct alignas(64) ChunkDeque {
  std::atomic<std::uint64_t> range{0};

  static std::uint64_t pack(std::uint32_t head, std::uint32_t tail) {
    return (static_cast<std::uint64_t>(head) << 32) | tail;
  }

  /// Owner-side claim of the front chunk; false when empty.
  bool pop_front(std::size_t& out) {
    std::uint64_t cur = range.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t head = static_cast<std::uint32_t>(cur >> 32);
      const std::uint32_t tail = static_cast<std::uint32_t>(cur);
      if (head >= tail) return false;
      if (range.compare_exchange_weak(cur, pack(head + 1, tail),
                                      std::memory_order_acq_rel)) {
        out = head;
        return true;
      }
    }
  }

  /// Thief-side claim of the back chunk; false when empty.
  bool steal_back(std::size_t& out) {
    std::uint64_t cur = range.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t head = static_cast<std::uint32_t>(cur >> 32);
      const std::uint32_t tail = static_cast<std::uint32_t>(cur);
      if (head >= tail) return false;
      if (range.compare_exchange_weak(cur, pack(head, tail - 1),
                                      std::memory_order_acq_rel)) {
        out = tail - 1;
        return true;
      }
    }
  }

  [[nodiscard]] std::size_t size() const {
    const std::uint64_t cur = range.load(std::memory_order_relaxed);
    const std::uint32_t head = static_cast<std::uint32_t>(cur >> 32);
    const std::uint32_t tail = static_cast<std::uint32_t>(cur);
    return head < tail ? tail - head : 0;
  }
};

}  // namespace detail

/// A bounded-worker task executor. submit() returns a future; the pool
/// joins all workers on destruction after draining outstanding tasks.
class ThreadPool {
 public:
  /// Spawns `workers` threads (>=1; 0 selects hardware_concurrency).
  explicit ThreadPool(std::size_t workers);

  /// Blocks until the queue drains and all workers exit.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future carries its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      const std::scoped_lock lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(begin, end, chunk_index) for every chunk of [0, n), where
  /// chunk c always covers [c*chunk, min(n, (c+1)*chunk)) — the chunk
  /// decomposition is a pure function of (n, chunk), never of the worker
  /// count, so callers that write results into chunk-indexed slots get
  /// output independent of scheduling. Work-stealing over the pool's
  /// workers plus the calling thread: the chunk index space is pre-split
  /// into one contiguous block per claimant; each claimant pops its own
  /// block front-to-back (preserving locality) and, once empty, steals
  /// single chunks from the back of the fullest remaining block. One task
  /// per worker (not per chunk), so per-item submit/future overhead is
  /// gone. Blocks until every chunk ran; rethrows the first exception fn
  /// threw (remaining chunks are skipped once a chunk has failed).
  template <typename F>
  void parallel_for(std::size_t n, std::size_t chunk, F&& fn) {
    if (n == 0) return;
    if (chunk == 0) chunk = 1;
    const std::size_t num_chunks = (n + chunk - 1) / chunk;
    const std::size_t claimants = workers_.size() + 1;  // + calling thread
    std::vector<detail::ChunkDeque> deques(claimants);
    const std::size_t per = (num_chunks + claimants - 1) / claimants;
    for (std::size_t c = 0; c < claimants; ++c) {
      const std::size_t lo = std::min(num_chunks, c * per);
      const std::size_t hi = std::min(num_chunks, lo + per);
      deques[c].range.store(detail::ChunkDeque::pack(
                                static_cast<std::uint32_t>(lo),
                                static_cast<std::uint32_t>(hi)),
                            std::memory_order_relaxed);
    }

    std::atomic<bool> failed{false};
    std::mutex err_mutex;
    std::exception_ptr first_error;

    auto run_claimant = [&](std::size_t self) {
      std::size_t c;
      for (;;) {
        if (!deques[self].pop_front(c)) {
          // Own block drained: steal from the fullest victim, looping
          // until every block is empty (a lost CAS just rescans).
          std::size_t victim = claimants;
          std::size_t best = 0;
          for (std::size_t v = 0; v < claimants; ++v) {
            const std::size_t sz = deques[v].size();
            if (sz > best) {
              best = sz;
              victim = v;
            }
          }
          if (victim == claimants) break;
          if (!deques[victim].steal_back(c)) continue;
        }
        if (failed.load(std::memory_order_relaxed)) continue;
        try {
          fn(c * chunk, std::min(n, (c + 1) * chunk), c);
        } catch (...) {
          const std::scoped_lock lock(err_mutex);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
    };

    std::vector<std::future<void>> joins;
    joins.reserve(workers_.size());
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      joins.push_back(submit([&run_claimant, w] { run_claimant(w); }));
    }
    run_claimant(claimants - 1);
    for (auto& j : joins) j.get();
    if (first_error) std::rethrow_exception(first_error);
  }

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace pga::common
