// Fixed-size task-queue thread pool.
//
// Follows C++ Core Guidelines CP.4 (think in tasks), CP.24/25 (threads are
// joined, never detached), CP.42 (condition-variable waits always carry a
// predicate) and CP.20 (RAII locking only).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pga::common {

/// A bounded-worker task executor. submit() returns a future; the pool
/// joins all workers on destruction after draining outstanding tasks.
class ThreadPool {
 public:
  /// Spawns `workers` threads (>=1; 0 selects hardware_concurrency).
  explicit ThreadPool(std::size_t workers);

  /// Blocks until the queue drains and all workers exit.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future carries its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      const std::scoped_lock lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace pga::common
