#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pga::common {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

std::uint64_t mix64(std::uint64_t x) {
  return splitmix64(x);  // the counter advance is part of the mix
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  if (n == 0) throw InvalidArgument("Rng::below(0)");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  while (true) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw InvalidArgument("Rng::range: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(double p) { return uniform() < p; }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double mean) {
  if (mean <= 0) throw InvalidArgument("Rng::exponential: mean must be > 0");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n == 0) throw InvalidArgument("Rng::zipf(0)");
  // Inverse-CDF over the (small) support; n is at most a few hundred
  // thousand in our workloads and callers cache cluster shapes, so the
  // linear scan is acceptable and exact.
  double norm = 0.0;
  for (std::size_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(static_cast<double>(k), s);
  double u = uniform() * norm;
  for (std::size_t k = 1; k <= n; ++k) {
    u -= 1.0 / std::pow(static_cast<double>(k), s);
    if (u <= 0) return k - 1;
  }
  return n - 1;
}

Rng Rng::fork() {
  // Derive a child seed from fresh parent output; parent advances.
  return Rng((*this)() ^ 0xa5a5a5a55a5a5a5aULL);
}

}  // namespace pga::common
