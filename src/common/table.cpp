#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/error.hpp"

namespace pga::common {

namespace {
bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  bool digit_seen = false;
  for (const char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' &&
               c != '%' && c != ',') {
      return false;
    }
  }
  return digit_seen;
}
}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw InvalidArgument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw InvalidArgument("Table: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row, bool align_numeric) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << "  ";
      const bool right = align_numeric && looks_numeric(row[c]);
      const std::size_t pad = width[c] - row[c].size();
      if (right) os << std::string(pad, ' ') << row[c];
      else os << row[c] << std::string(pad, ' ');
    }
    os << "\n";
  };
  emit(header_, /*align_numeric=*/false);
  std::vector<std::string> rule;
  rule.reserve(header_.size());
  for (const std::size_t w : width) rule.emplace_back(w, '-');
  emit(rule, /*align_numeric=*/false);
  for (const auto& row : rows_) emit(row, /*align_numeric=*/true);
  return os.str();
}

}  // namespace pga::common
