// Shared non-cryptographic digest helpers.
//
// FNV-1a is the codebase's fingerprint primitive: the WaaS fleet folds
// every workflow's jobstate log into one digest for double-run identity
// checks, the trigger pipeline does the same for storage-event-chained
// runs, and the sharded replica catalog uses the raw hash to pick a
// shard. One implementation lives here so "two runs produced the same
// bytes" always means the same thing everywhere.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pga::common {

/// The FNV-1a 64-bit offset basis — the canonical starting hash.
inline constexpr std::uint64_t kFnv1aOffset = 1469598103934665603ULL;

/// Folds `text` into a running FNV-1a hash and returns the new hash.
[[nodiscard]] std::uint64_t fnv1a(std::uint64_t hash, std::string_view text);

/// One-shot FNV-1a of `text` from the offset basis.
[[nodiscard]] std::uint64_t fnv1a(std::string_view text);

/// Order-sensitive digest of a line vector: each line is folded followed
/// by a '\n', so {"a","b"} and {"ab",""} hash differently. This is the
/// jobstate-log fingerprint the fleet's and the trigger pipeline's
/// double-run identity checks compare.
[[nodiscard]] std::uint64_t lines_digest(const std::vector<std::string>& lines);

}  // namespace pga::common
