#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace pga::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const std::scoped_lock lock(g_mutex);
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
}

}  // namespace pga::common
