#include "common/strings.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace pga::common {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t j = i;
    while (j < text.size() && !std::isspace(static_cast<unsigned char>(text[j]))) ++j;
    if (j > i) out.emplace_back(text.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer matcher with backtracking to the last '*'.
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star = std::string_view::npos;
  std::size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string to_upper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string format_duration(double seconds) {
  if (seconds < 0) return "-" + format_duration(-seconds);
  auto total = static_cast<long long>(std::llround(seconds));
  const long long days = total / 86'400;
  total %= 86'400;
  const long long hours = total / 3'600;
  total %= 3'600;
  const long long mins = total / 60;
  const long long secs = total % 60;
  std::ostringstream os;
  bool emitted = false;
  if (days > 0) {
    os << days << "d ";
    emitted = true;
  }
  if (emitted || hours > 0) {
    os << (emitted && hours < 10 ? "0" : "") << hours << "h ";
    emitted = true;
  }
  if (emitted || mins > 0) {
    os << (emitted && mins < 10 ? "0" : "") << mins << "m ";
    emitted = true;
  }
  os << (emitted && secs < 10 ? "0" : "") << secs << "s";
  return os.str();
}

std::string format_fixed(double value, int digits) {
  // std::to_chars(fixed) is specified to match printf("%.*f"), which is
  // also what a fixed-mode ostringstream produces under the default
  // locale — same bytes, no stream construction per call. This runs twice
  // per job in the jobstate log, so it is hot at million-job scale.
  std::array<char, 64> buf;
  const auto result = std::to_chars(buf.data(), buf.data() + buf.size(), value,
                                    std::chars_format::fixed, digits);
  if (result.ec == std::errc{}) {
    return std::string(buf.data(), result.ptr);
  }
  // Magnitude too large for the buffer: fall back to the stream path.
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << value;
  return os.str();
}

long parse_long(std::string_view text) {
  const std::string_view t = trim(text);
  long value = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc{} || ptr != t.data() + t.size()) {
    throw ParseError("expected integer, got '" + std::string(text) + "'");
  }
  return value;
}

double parse_double(std::string_view text) {
  const std::string t{trim(text)};
  if (t.empty()) throw ParseError("expected number, got empty string");
  std::size_t consumed = 0;
  double value = 0;
  try {
    value = std::stod(t, &consumed);
  } catch (const std::exception&) {
    throw ParseError("expected number, got '" + t + "'");
  }
  if (consumed != t.size()) throw ParseError("trailing junk in number '" + t + "'");
  return value;
}

}  // namespace pga::common
