// Minimal leveled logger.
//
// The library logs sparingly (planner decisions, engine retries, platform
// events at debug level). Output goes to stderr; tests silence it by
// raising the threshold.
#pragma once

#include <sstream>
#include <string>

namespace pga::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded. Thread-safe.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line ("[level] message") to stderr if `level` passes the
/// threshold. Thread-safe (one lock per line, never interleaves).
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }

}  // namespace pga::common
