// Deterministic random-number generation for simulation and data synthesis.
//
// All stochastic components of the library (transcriptome generator, OSG
// availability model, queue-wait sampling) draw from this engine so that a
// (seed) pair fully reproduces an experiment.
#pragma once

#include <cstdint>
#include <vector>

namespace pga::common {

/// One SplitMix64 finalization step: a strong 64-bit mixer. This is the
/// canonical seed-folding primitive across the codebase — per-request
/// arrival seeds, per-instance cost streams and the fleet controller's
/// per-tenant RNG streams all derive sub-seeds as mix64(base ^ salt), so
/// nearby salts yield unrelated streams. (Rng's constructor uses the same
/// step, with the internal counter advancing, to expand one seed into its
/// xoshiro state.)
[[nodiscard]] std::uint64_t mix64(std::uint64_t x);

/// xoshiro256** 1.0 — small, fast, high-quality PRNG.
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can feed
/// <random> distributions, but the helpers below avoid libstdc++
/// distributions entirely to keep streams identical across standard-library
/// implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via SplitMix64 so that nearby seeds produce unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Standard normal via Box–Muller (cached pair).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal: exp(N(mu, sigma)). The natural model for queue waits.
  double lognormal(double mu, double sigma);

  /// Exponential with the given mean (NOT rate). Requires mean > 0.
  double exponential(double mean);

  /// Zipf-like rank draw over {0..n-1} with exponent s; rank 0 most likely.
  /// Used for heavy-tailed cluster-size distributions.
  std::size_t zipf(std::size_t n, double s);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

  /// Forks an independent stream; child streams are stable functions of the
  /// parent state, so fork order matters but thread timing never does.
  Rng fork();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace pga::common
