// Error types shared by every pga module.
#pragma once

#include <stdexcept>
#include <string>

namespace pga::common {

/// Base class for all pga errors. Every module throws a subclass of this so
/// callers can catch the whole library with a single handler.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input data (FASTA/FASTQ/tabular/DAX parsing failures).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// A caller violated a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what)
      : Error("invalid argument: " + what) {}
};

/// Filesystem-level failures (missing files, unwritable workspace).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("i/o error: " + what) {}
};

/// A workflow-level failure (planning error, unsatisfiable catalog lookup,
/// exhausted retries).
class WorkflowError : public Error {
 public:
  explicit WorkflowError(const std::string& what)
      : Error("workflow error: " + what) {}
};

/// The discrete-event simulator gave up (runaway event budget exhausted).
/// Surfaced in RunReport::error instead of silently truncating a run.
class SimulationError : public Error {
 public:
  explicit SimulationError(const std::string& what)
      : Error("simulation error: " + what) {}
};

}  // namespace pga::common
