#include "common/fsutil.hpp"

#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pga::common {

namespace {
std::atomic<std::uint64_t> g_scratch_counter{0};
}

ScratchDir::ScratchDir(const std::string& prefix, const std::filesystem::path& parent) {
  namespace fs = std::filesystem;
  const fs::path base = parent.empty() ? fs::temp_directory_path() : parent;
  // Uniquify with a counter + random suffix; retry on collision.
  Rng rng(0x5ca7c4d1ULL ^ g_scratch_counter.fetch_add(1) ^
          static_cast<std::uint64_t>(
              std::chrono::steady_clock::now().time_since_epoch().count()));
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::ostringstream name;
    name << prefix << "-" << std::hex << rng();
    fs::path candidate = base / name.str();
    std::error_code ec;
    if (fs::create_directories(candidate, ec) && !ec) {
      path_ = candidate;
      return;
    }
  }
  throw IoError("ScratchDir: could not create unique directory under " + base.string());
}

ScratchDir::~ScratchDir() {
  if (owned_ && !path_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);  // best effort in a destructor
  }
}

ScratchDir::ScratchDir(ScratchDir&& other) noexcept
    : path_(std::move(other.path_)), owned_(other.owned_) {
  other.owned_ = false;
  other.path_.clear();
}

ScratchDir& ScratchDir::operator=(ScratchDir&& other) noexcept {
  if (this != &other) {
    if (owned_ && !path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);
    }
    path_ = std::move(other.path_);
    owned_ = other.owned_;
    other.owned_ = false;
    other.path_.clear();
  }
  return *this;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open for reading: " + path.string());
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot open for writing: " + path.string());
  out << content;
  if (!out) throw IoError("short write: " + path.string());
}

void append_file(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) throw IoError("cannot open for appending: " + path.string());
  out << content;
  if (!out) throw IoError("short write: " + path.string());
}

std::vector<std::string> read_lines(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open for reading: " + path.string());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

}  // namespace pga::common
