// Streaming summary statistics (count/mean/min/max/stddev/percentiles).
#pragma once

#include <cstddef>
#include <vector>

namespace pga::common {

/// Accumulates samples and answers summary queries. Keeps all samples so
/// exact percentiles are available; our sample sets (per-task timings) are
/// small enough that this is the right trade-off.
class Summary {
 public:
  /// Adds one observation.
  void add(double x);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double sum() const { return sum_; }
  /// Mean of the samples; 0 when empty.
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double stddev() const;
  /// Linear-interpolated percentile, p in [0,100]. Throws when empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  /// Merges another accumulator into this one.
  void merge(const Summary& other);

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;

  void ensure_sorted() const;
};

}  // namespace pga::common
