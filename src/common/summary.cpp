#include "common/summary.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pga::common {

void Summary::add(double x) {
  samples_.push_back(x);
  sum_ += x;
  sorted_ = false;
}

double Summary::mean() const { return samples_.empty() ? 0.0 : sum_ / samples_.size(); }

double Summary::min() const {
  if (samples_.empty()) throw InvalidArgument("Summary::min on empty accumulator");
  ensure_sorted();
  return samples_.front();
}

double Summary::max() const {
  if (samples_.empty()) throw InvalidArgument("Summary::max on empty accumulator");
  ensure_sorted();
  return samples_.back();
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (const double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::percentile(double p) const {
  if (samples_.empty()) throw InvalidArgument("Summary::percentile on empty accumulator");
  if (p < 0.0 || p > 100.0) throw InvalidArgument("percentile out of [0,100]");
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

void Summary::merge(const Summary& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sum_ += other.sum_;
  sorted_ = false;
}

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

}  // namespace pga::common
