#include "common/digest.hpp"

namespace pga::common {

std::uint64_t fnv1a(std::uint64_t hash, std::string_view text) {
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t fnv1a(std::string_view text) { return fnv1a(kFnv1aOffset, text); }

std::uint64_t lines_digest(const std::vector<std::string>& lines) {
  std::uint64_t hash = kFnv1aOffset;
  for (const auto& line : lines) {
    hash = fnv1a(hash, line);
    hash = fnv1a(hash, "\n");
  }
  return hash;
}

}  // namespace pga::common
