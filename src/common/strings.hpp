// Small string helpers used across the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pga::common {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char sep);

/// Splits on any run of whitespace, dropping empty fields.
std::vector<std::string> split_ws(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool ends_with(std::string_view text, std::string_view suffix);

/// Shell-style glob match: '*' matches any run of characters (including
/// empty), '?' matches exactly one character, everything else is literal.
/// No character classes or escapes; matching is case-sensitive and
/// anchored at both ends.
bool glob_match(std::string_view pattern, std::string_view text);

/// Lower-cases ASCII letters.
std::string to_lower(std::string_view text);

/// Upper-cases ASCII letters.
std::string to_upper(std::string_view text);

/// Formats `seconds` as "1d 03h 25m 12s" (or shorter when leading units are
/// zero), matching the style pegasus-statistics uses for wall times.
std::string format_duration(double seconds);

/// Formats with fixed `digits` decimal places.
std::string format_fixed(double value, int digits);

/// Parses a non-negative integer; throws ParseError on junk.
long parse_long(std::string_view text);

/// Parses a floating-point number; throws ParseError on junk.
double parse_double(std::string_view text);

}  // namespace pga::common
