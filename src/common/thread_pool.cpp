#include "common/thread_pool.hpp"

#include <algorithm>

namespace pga::common {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();  // exceptions are captured by the packaged_task wrapper
    {
      const std::scoped_lock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace pga::common
