#include "assembly/metrics.hpp"

#include <algorithm>
#include <set>

namespace pga::assembly {

std::size_t n50(std::vector<std::size_t> lengths) {
  if (lengths.empty()) return 0;
  std::sort(lengths.begin(), lengths.end(), std::greater<>());
  std::size_t total = 0;
  for (const std::size_t l : lengths) total += l;
  std::size_t running = 0;
  for (const std::size_t l : lengths) {
    running += l;
    if (2 * running >= total) return l;
  }
  return lengths.back();
}

AssemblyMetrics compute_metrics(
    std::size_t input_sequences, const AssemblyResult& result,
    const std::unordered_map<std::string, std::string>& truth) {
  AssemblyMetrics m;
  m.input_sequences = input_sequences;
  m.contigs = result.contigs.size();
  m.singlets = result.singlets.size();
  m.output_sequences = result.output_count();
  if (input_sequences > 0) {
    m.reduction_percent =
        100.0 * (1.0 - static_cast<double>(m.output_sequences) /
                           static_cast<double>(input_sequences));
  }

  std::vector<std::size_t> lengths;
  lengths.reserve(m.output_sequences);
  for (const auto& c : result.contigs) {
    lengths.push_back(c.consensus.size());
    m.largest_contig = std::max(m.largest_contig, c.consensus.size());
  }
  for (const auto& s : result.singlets) lengths.push_back(s.seq.size());
  m.consensus_n50 = n50(std::move(lengths));

  if (!truth.empty()) {
    for (const auto& c : result.contigs) {
      std::set<std::string> genes;
      bool any_labelled = false;
      for (const auto& member : c.members) {
        const auto it = truth.find(member);
        if (it != truth.end()) {
          any_labelled = true;
          genes.insert(it->second);
        }
      }
      if (any_labelled) {
        ++m.fusion_checked;
        if (genes.size() >= 2) {
          ++m.fused_contigs;
          m.fused_sequences += genes.size() - 1;
        }
      }
    }
  }
  return m;
}

}  // namespace pga::assembly
