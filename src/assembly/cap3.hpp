// CAP3-like greedy overlap-layout-consensus assembler.
//
// Reproduces the contract blast2cap3 relies on: "merge these transcripts
// wherever they overlap end-to-end at >= p% identity over >= o bases",
// emitting contigs (merged sequences) and singlets (everything else), like
// CAP3's .contigs / .singlets outputs.
//
// Simplification vs. the real CAP3: the layout is ungapped (sequences are
// placed at integer offsets; the consensus is a column-wise weighted
// majority vote). This is exact for substitution-only divergence, which is
// what both the synthetic data and the paper's merging criterion exercise.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "assembly/overlap.hpp"
#include "bio/sequence.hpp"

namespace pga::assembly {

/// Assembler options. `prefix` names output contigs ("Contig1", ...).
struct AssemblyOptions {
  OverlapParams overlap;
  std::string prefix = "Contig";
};

/// One assembled contig.
struct Contig {
  std::string id;
  std::string consensus;
  std::vector<std::string> members;  ///< input record ids merged into this contig
};

/// Full assembler output.
struct AssemblyResult {
  std::vector<Contig> contigs;            ///< clusters of >= 2 merged inputs
  std::vector<bio::SeqRecord> singlets;   ///< inputs that joined nothing
  std::size_t overlaps_considered = 0;    ///< accepted pairwise overlaps
  std::size_t overlaps_applied = 0;       ///< overlaps that merged clusters

  /// Joined + unjoined output records (contigs as SeqRecords, then singlets).
  [[nodiscard]] std::vector<bio::SeqRecord> all_records() const;
  /// Total output sequences (contigs + singlets).
  [[nodiscard]] std::size_t output_count() const {
    return contigs.size() + singlets.size();
  }
};

/// Assembles `seqs`: find overlaps, greedily merge (best overlap first,
/// skipping merges that conflict with already-placed layouts), call a
/// consensus per cluster. Deterministic for identical input; with a pool
/// the overlap phase runs in parallel and the result is bit-identical to
/// the serial run for any worker count.
AssemblyResult assemble(const std::vector<bio::SeqRecord>& seqs,
                        const AssemblyOptions& options = {},
                        common::ThreadPool* pool = nullptr);

/// Assembles with precomputed overlaps (used by tests and by callers that
/// already ran find_overlaps with custom parameters).
AssemblyResult assemble_with_overlaps(const std::vector<bio::SeqRecord>& seqs,
                                      const std::vector<Overlap>& overlaps,
                                      const AssemblyOptions& options = {});

}  // namespace pga::assembly
