// Pairwise suffix–prefix overlap detection between DNA sequences.
//
// This is the inner kernel of the CAP3-like assembler: k-mer anchored
// candidate pairing followed by local alignment, accepting only dovetail
// (suffix-to-prefix) or containment overlaps that meet CAP3-style length
// ("-o") and identity ("-p") cutoffs.
#pragma once

#include <cstddef>
#include <vector>

#include "align/sw.hpp"
#include "bio/sequence.hpp"

namespace pga::common {
class ThreadPool;
}

namespace pga::assembly {

/// Overlap acceptance thresholds. Defaults mirror CAP3's -o 40 -p 90.
struct OverlapParams {
  std::size_t min_overlap = 40;   ///< minimum aligned length (bases)
  double min_identity = 90.0;     ///< minimum percent identity
  std::size_t kmer = 16;          ///< anchor k-mer length for candidate pairing
  std::size_t max_end_slop = 20;  ///< unaligned overhang tolerated at joined ends
  int match = 1;                  ///< DNA match score
  int mismatch = -2;              ///< DNA mismatch score
  align::GapPenalties gaps{6, 1};
  /// Also detect overlaps where one sequence is reverse-complemented —
  /// like the real CAP3, which assembles reads of unknown strand. Off by
  /// default because transcript fragments are strand-consistent.
  bool both_strands = false;
  /// Repeat suppression: k-mers occurring more than this many times across
  /// the input are ignored for candidate pairing (they are almost always
  /// repeat elements, the very sequences that cause artificial fusions).
  /// Real overlap assemblers apply the same cutoff.
  std::size_t max_kmer_occurrences = 512;
  /// Candidate pairs must share at least this many k-mers before the
  /// (expensive) banded alignment runs.
  std::size_t min_shared_kmers = 2;
  /// Score-only candidate pruning: run the cheap no-traceback DP pass
  /// first and skip the traceback when the optimal score is provably too
  /// low to classify (see min_acceptable_score). Automatically inactive
  /// when the bound cannot exceed the k-mer anchor's guaranteed score
  /// (true for the CAP3 defaults); this switch exists so tests can compare
  /// pruned and unpruned runs under stricter cutoffs.
  bool score_prune = true;
};

/// How the aligned region relates the two sequences.
enum class OverlapKind {
  kSuffixPrefix,  ///< suffix of `a` overlaps prefix of `b`
  kPrefixSuffix,  ///< prefix of `a` overlaps suffix of `b`
  kAContainsB,    ///< `b` aligns inside `a`
  kBContainsA,    ///< `a` aligns inside `b`
};

/// One accepted overlap between sequences `a` and `b` (indices into the
/// input vector). `shift` places b relative to a in a common layout:
/// with `flipped == false`, b_offset = a_offset + shift; with
/// `flipped == true` the *reverse complement* of b sits at that offset
/// (i.e. base i of b maps to layout coordinate
/// a_offset + shift + len(b) - 1 - i).
struct Overlap {
  std::size_t a = 0;
  std::size_t b = 0;
  OverlapKind kind = OverlapKind::kSuffixPrefix;
  long shift = 0;
  bool flipped = false;  ///< b participates reverse-complemented
  align::LocalAlignment alignment;
};

/// Classifies a local alignment of `a` vs `b` as an overlap. Returns true
/// (filling kind/shift) when the alignment reaches within `max_end_slop`
/// of the required sequence ends and meets the length/identity cutoffs.
bool classify_overlap(const align::LocalAlignment& aln, std::size_t a_len,
                      std::size_t b_len, const OverlapParams& params,
                      OverlapKind& kind, long& shift);

/// Work counters from one find_overlaps run (pruning effectiveness and
/// alignment volume; the benchmark/CI envelopes assert on these because
/// they are machine-independent, unlike wall-clock time).
struct OverlapStats {
  std::size_t candidate_pairs = 0;  ///< pairs meeting min_shared_kmers
  std::size_t pruned = 0;           ///< skipped via the score-only bound
  std::size_t tracebacks = 0;       ///< full alignments actually run
  std::size_t accepted = 0;         ///< classified overlaps kept
};

/// Lower bound on the alignment score of any overlap that could pass the
/// length/identity cutoffs in `params`, for alignment lengths in
/// [params.min_overlap, max_alignment_length]. A candidate whose optimal
/// (score-only) alignment scores below this bound cannot classify as an
/// overlap, so the traceback can be skipped. Conservative: derived from
/// the per-column worst case w = max(-mismatch, gap_open + gap_extend),
/// evaluated at both interval endpoints.
int min_acceptable_score(const OverlapParams& params,
                         std::size_t max_alignment_length);

/// Finds all accepted pairwise overlaps among `seqs`.
/// Candidates are pairs sharing at least one k-mer; each candidate runs a
/// score-only banded pass and only survivors of min_acceptable_score pay
/// for a traceback. With a pool, candidates are aligned in parallel in
/// deterministic chunks — the result is bit-identical to the serial run
/// for any worker count. `stats`, when non-null, receives work counters.
std::vector<Overlap> find_overlaps(const std::vector<bio::SeqRecord>& seqs,
                                   const OverlapParams& params = {},
                                   common::ThreadPool* pool = nullptr,
                                   OverlapStats* stats = nullptr);

}  // namespace pga::assembly
