// Assembly quality metrics: N50, redundancy reduction and (given ground
// truth) artificial-fusion counting — the quantities behind the paper's
// §II claims about blast2cap3 vs. whole-dataset CAP3.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "assembly/cap3.hpp"

namespace pga::assembly {

/// N50 of a set of sequence lengths: the largest L such that sequences of
/// length >= L cover at least half the total bases. 0 for empty input.
std::size_t n50(std::vector<std::size_t> lengths);

/// Summary of one assembly outcome.
struct AssemblyMetrics {
  std::size_t input_sequences = 0;
  std::size_t contigs = 0;
  std::size_t singlets = 0;
  std::size_t output_sequences = 0;   ///< contigs + singlets
  double reduction_percent = 0;       ///< 100 * (1 - output/input)
  std::size_t consensus_n50 = 0;      ///< N50 over contig consensus + singlets
  std::size_t largest_contig = 0;     ///< longest consensus (bases)
  std::size_t fused_contigs = 0;      ///< contigs mixing >= 2 source genes
  /// "Artificially fused sequences": for each contig, the number of extra
  /// genes erroneously absorbed (genes_in_contig - 1, summed). A repeat-
  /// driven mega-contig that swallows 8 genes counts 7 here but only 1 in
  /// fused_contigs.
  std::size_t fused_sequences = 0;
  std::size_t fusion_checked = 0;     ///< contigs whose members had truth labels
};

/// Computes metrics. `truth` maps input sequence id -> source gene id; an
/// empty map skips fusion counting. Members without a truth entry are
/// ignored for the fusion check.
AssemblyMetrics compute_metrics(
    std::size_t input_sequences, const AssemblyResult& result,
    const std::unordered_map<std::string, std::string>& truth = {});

}  // namespace pga::assembly
