#include "assembly/validation.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "align/sw.hpp"
#include "bio/alphabet.hpp"
#include "common/error.hpp"

namespace pga::assembly {

namespace {

struct Candidate {
  std::size_t output_index;
  bool reversed;
  long diagonal;
  std::size_t votes;
};

constexpr std::size_t kBand = 48;
constexpr std::size_t kMaxCandidates = 4;

}  // namespace

ValidationReport validate_assembly(const bio::Transcriptome& truth,
                                   const std::vector<bio::SeqRecord>& assembly_output,
                                   const ValidationParams& params) {
  if (params.kmer < 8 || params.kmer > 32) {
    throw common::InvalidArgument("ValidationParams.kmer must be in [8,32]");
  }
  if (params.min_coverage <= 0 || params.min_coverage > 1.0) {
    throw common::InvalidArgument("min_coverage must be in (0,1]");
  }

  // Index every output k-mer, both orientations.
  struct Site {
    std::uint32_t output;
    std::uint32_t pos;  ///< position on the oriented sequence
    bool reversed;
  };
  std::vector<std::string> oriented;  // forward then rc, per output
  std::unordered_map<std::string_view, std::vector<Site>> index;
  std::vector<std::string> rc_store(assembly_output.size());
  for (std::uint32_t i = 0; i < assembly_output.size(); ++i) {
    rc_store[i] = bio::reverse_complement(assembly_output[i].seq);
    for (const bool reversed : {false, true}) {
      const std::string& s = reversed ? rc_store[i] : assembly_output[i].seq;
      if (s.size() < params.kmer) continue;
      for (std::size_t pos = 0; pos + params.kmer <= s.size(); ++pos) {
        index[std::string_view(s).substr(pos, params.kmer)].push_back(
            {i, static_cast<std::uint32_t>(pos), reversed});
      }
    }
  }

  ValidationReport report;
  report.genes_total = truth.genes.size();
  double coverage_sum = 0;

  for (const auto& gene : truth.genes) {
    GeneRecovery recovery;
    recovery.gene_id = gene.id;
    const std::string& mrna = gene.mrna;

    // Vote for (output, orientation, diagonal) triples.
    std::map<std::tuple<std::uint32_t, bool, long>, std::size_t> votes;
    if (mrna.size() >= params.kmer) {
      for (std::size_t pos = 0; pos + params.kmer <= mrna.size(); ++pos) {
        const auto it = index.find(std::string_view(mrna).substr(pos, params.kmer));
        if (it == index.end()) continue;
        for (const Site& site : it->second) {
          ++votes[{site.output, site.reversed,
                   static_cast<long>(pos) - static_cast<long>(site.pos)}];
        }
      }
    }
    std::vector<Candidate> candidates;
    for (const auto& [key, n] : votes) {
      candidates.push_back(
          {std::get<0>(key), std::get<1>(key), std::get<2>(key), n});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) { return a.votes > b.votes; });
    if (candidates.size() > kMaxCandidates) candidates.resize(kMaxCandidates);

    for (const Candidate& candidate : candidates) {
      const std::string& subject = candidate.reversed
                                       ? rc_store[candidate.output_index]
                                       : assembly_output[candidate.output_index].seq;
      const auto aln = align::banded_smith_waterman_dna(mrna, subject,
                                                        candidate.diagonal, kBand);
      const double coverage = static_cast<double>(aln.q_end - aln.q_begin) /
                              static_cast<double>(mrna.size());
      if (coverage > recovery.coverage ||
          (coverage == recovery.coverage &&
           aln.percent_identity() > recovery.identity)) {
        recovery.coverage = coverage;
        recovery.identity = aln.percent_identity();
        recovery.best_sequence = assembly_output[candidate.output_index].id;
      }
    }
    recovery.recovered = recovery.coverage >= params.min_coverage &&
                         recovery.identity >= params.min_identity;
    if (recovery.recovered) ++report.genes_recovered;
    coverage_sum += recovery.coverage;
    report.genes.push_back(std::move(recovery));
  }
  if (report.genes_total > 0) {
    report.mean_coverage = coverage_sum / static_cast<double>(report.genes_total);
  }
  return report;
}

}  // namespace pga::assembly
