#include "assembly/overlap.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>

#include "bio/alphabet.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace pga::assembly {

bool classify_overlap(const align::LocalAlignment& aln, std::size_t a_len,
                      std::size_t b_len, const OverlapParams& params,
                      OverlapKind& kind, long& shift) {
  if (aln.alignment_length() < params.min_overlap) return false;
  if (aln.percent_identity() < params.min_identity) return false;

  const std::size_t a_left = aln.q_begin;
  const std::size_t a_right = a_len - aln.q_end;
  const std::size_t b_left = aln.s_begin;
  const std::size_t b_right = b_len - aln.s_end;
  const std::size_t slop = params.max_end_slop;

  // Under the (substitution-only) ungapped layout approximation, placing b
  // at a_offset + shift lines the aligned regions up.
  shift = static_cast<long>(aln.q_begin) - static_cast<long>(aln.s_begin);

  // Containments take priority: they are stricter conditions.
  if (b_left <= slop && b_right <= slop) {
    kind = OverlapKind::kAContainsB;
    return true;
  }
  if (a_left <= slop && a_right <= slop) {
    kind = OverlapKind::kBContainsA;
    return true;
  }
  if (a_right <= slop && b_left <= slop) {
    kind = OverlapKind::kSuffixPrefix;
    return true;
  }
  if (a_left <= slop && b_right <= slop) {
    kind = OverlapKind::kPrefixSuffix;
    return true;
  }
  return false;
}

namespace {

/// Packs an (a < b) index pair plus the relative-orientation bit.
std::uint64_t pair_key(std::size_t a, std::size_t b, bool flipped) {
  return (static_cast<std::uint64_t>(flipped) << 63) |
         (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
}

struct PairEvidence {
  std::size_t shared_kmers = 0;
  std::unordered_map<long, std::size_t> diagonal_votes;

  [[nodiscard]] long best_diagonal() const {
    long best = 0;
    std::size_t best_votes = 0;
    for (const auto& [diag, votes] : diagonal_votes) {
      if (votes > best_votes || (votes == best_votes && diag < best)) {
        best = diag;
        best_votes = votes;
      }
    }
    return best;
  }
};

constexpr std::size_t kAlignmentBand = 48;

/// One alignment job: a candidate pair with its voted diagonal.
struct Candidate {
  std::uint32_t a;
  std::uint32_t b;
  bool flipped;
  long diagonal;
};

}  // namespace

int min_acceptable_score(const OverlapParams& params,
                         std::size_t max_alignment_length) {
  // An acceptable alignment of length L has matches >= p*L/100 (identity
  // cutoff) and at most L - p*L/100 non-match columns, each costing at
  // most w = max(-mismatch, open + extend) (a gap run of g residues costs
  // open + g*extend <= g*(open+extend)). Since match > 0 the score is
  // increasing in the match count, so
  //   g(L) = match * p*L/100 - w * L*(1 - p/100)
  // lower-bounds it; g is linear in L, so its minimum over the length
  // interval sits at an endpoint. Requires match > 0 and mismatch < 0
  // (enforced by the DNA kernels' parameter check).
  const double p = std::min(params.min_identity, 100.0) / 100.0;
  const double w = std::max<double>(-params.mismatch,
                                    static_cast<double>(params.gaps.open) +
                                        static_cast<double>(params.gaps.extend));
  const auto g = [&](std::size_t len) {
    const double l = static_cast<double>(len);
    return params.match * (p * l) - w * (l * (1.0 - p));
  };
  const std::size_t lo = params.min_overlap;
  const std::size_t hi = std::max(max_alignment_length, lo);
  return static_cast<int>(std::floor(std::min(g(lo), g(hi))));
}

std::vector<Overlap> find_overlaps(const std::vector<bio::SeqRecord>& seqs,
                                   const OverlapParams& params,
                                   common::ThreadPool* pool, OverlapStats* stats) {
  if (params.kmer < 8 || params.kmer > 32) {
    throw common::InvalidArgument("OverlapParams.kmer must be in [8,32]");
  }
  if (params.min_overlap < params.kmer) {
    throw common::InvalidArgument("min_overlap must be >= kmer");
  }
  if (seqs.size() >= (1ULL << 31)) {
    throw common::InvalidArgument("too many sequences");
  }
  if (params.match <= 0 || params.mismatch >= 0) {
    throw common::InvalidArgument("OverlapParams: need match > 0 > mismatch");
  }

  // Reverse complements, computed once when strand-agnostic matching is on.
  std::vector<std::string> rc;
  if (params.both_strands) {
    rc.reserve(seqs.size());
    for (const auto& s : seqs) rc.push_back(bio::reverse_complement(s.seq));
  }

  // 1. k-mer occurrence lists. With both_strands, keys are canonical
  // (lexicographic min of the k-mer and its reverse complement) and each
  // occurrence carries the strand on which the canonical form was seen.
  struct Occurrence {
    std::uint32_t seq;
    std::uint32_t pos;      ///< position on the *forward* sequence
    bool on_reverse;        ///< canonical form came from the reverse strand
  };
  std::unordered_map<std::string, std::vector<Occurrence>> buckets;
  for (std::uint32_t i = 0; i < seqs.size(); ++i) {
    const std::string& s = seqs[i].seq;
    if (s.size() < params.kmer) continue;
    for (std::size_t pos = 0; pos + params.kmer <= s.size(); ++pos) {
      std::string kmer(std::string_view(s).substr(pos, params.kmer));
      bool on_reverse = false;
      if (params.both_strands) {
        // RC of s[pos..pos+k) equals rc[L-k-pos .. L-pos).
        std::string rk(std::string_view(rc[i]).substr(s.size() - params.kmer - pos,
                                                      params.kmer));
        if (rk < kmer) {
          kmer = std::move(rk);
          on_reverse = true;
        }
      }
      buckets[std::move(kmer)].push_back(
          {i, static_cast<std::uint32_t>(pos), on_reverse});
    }
  }

  // 2. Candidate pairs with diagonal votes, split by relative orientation.
  std::unordered_map<std::uint64_t, PairEvidence> pairs;
  for (const auto& [kmer, occurrences] : buckets) {
    if (occurrences.size() < 2 || occurrences.size() > params.max_kmer_occurrences) {
      continue;
    }
    for (std::size_t x = 0; x < occurrences.size(); ++x) {
      for (std::size_t y = x + 1; y < occurrences.size(); ++y) {
        Occurrence oa = occurrences[x];
        Occurrence ob = occurrences[y];
        if (oa.seq == ob.seq) continue;
        if (oa.seq > ob.seq) std::swap(oa, ob);
        const bool flipped = oa.on_reverse != ob.on_reverse;
        auto& ev = pairs[pair_key(oa.seq, ob.seq, flipped)];
        ++ev.shared_kmers;
        // Diagonal in the frame "a vs (rc-)b": with flipped, b's k-mer at
        // forward position p sits at rc position len_b - k - p.
        const long pb =
            flipped ? static_cast<long>(seqs[ob.seq].seq.size()) -
                          static_cast<long>(params.kmer) - static_cast<long>(ob.pos)
                    : static_cast<long>(ob.pos);
        ++ev.diagonal_votes[static_cast<long>(oa.pos) - pb];
      }
    }
  }

  // 3. Banded alignment + classification over an (a, b, flipped)-sorted
  // candidate list. The sort pins the work order independently of the
  // unordered_map above, so serial and parallel runs see identical jobs in
  // identical chunk positions.
  std::vector<Candidate> candidates;
  candidates.reserve(pairs.size());
  for (const auto& [key, ev] : pairs) {
    if (ev.shared_kmers < params.min_shared_kmers) continue;
    candidates.push_back({static_cast<std::uint32_t>((key >> 32) & 0x7fffffffULL),
                          static_cast<std::uint32_t>(key & 0xffffffffULL),
                          (key >> 63) != 0, ev.best_diagonal()});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              if (x.a != y.a) return x.a < y.a;
              if (x.b != y.b) return x.b < y.b;
              return x.flipped < y.flipped;
            });

  // Every fragment (and reverse complement) is encoded once under the
  // run's DNA profile; all candidate alignments reuse the encodings
  // instead of re-encoding both sequences per pair.
  const align::ScoringProfile dna_prof =
      align::ScoringProfile::dna(params.match, params.mismatch);
  std::vector<align::PreparedSeq> fwd_prep(seqs.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    fwd_prep[i].assign(seqs[i].seq, dna_prof);
  }
  std::vector<align::PreparedSeq> rc_prep(rc.size());
  for (std::size_t i = 0; i < rc.size(); ++i) rc_prep[i].assign(rc[i], dna_prof);

  // Score-only pruning pays off only when the bound exceeds what k-mer
  // sharing already guarantees: every candidate pair shares a full-length
  // anchor k-mer, so its optimal local score is at least kmer*match and a
  // bound at or below that can never fire — skip the extra pass entirely.
  const bool prune =
      params.score_prune &&
      min_acceptable_score(params, params.min_overlap) >
          static_cast<int>(params.kmer) * params.match;
  const auto align_range = [&](std::size_t begin, std::size_t end,
                               std::vector<Overlap>& out, OverlapStats& st) {
    for (std::size_t i = begin; i < end; ++i) {
      const Candidate& c = candidates[i];
      const align::PreparedSeq& pa = fwd_prep[c.a];
      const align::PreparedSeq& pb = c.flipped ? rc_prep[c.b] : fwd_prep[c.b];
      if (prune) {
        const align::ScoreOnlyResult so = align::banded_score_only(
            pa, pb, dna_prof, c.diagonal, kAlignmentBand, params.gaps);
        if (so.score < min_acceptable_score(params, pa.size() + pb.size())) {
          ++st.pruned;
          continue;
        }
      }
      ++st.tracebacks;
      const align::LocalAlignment aln = align::banded_align(
          pa, pb, dna_prof, c.diagonal, kAlignmentBand, params.gaps);
      OverlapKind kind;
      long shift = 0;
      if (classify_overlap(aln, pa.size(), pb.size(), params, kind, shift)) {
        ++st.accepted;
        out.push_back(Overlap{c.a, c.b, kind, shift, c.flipped, aln});
      }
    }
  };

  std::vector<Overlap> overlaps;
  OverlapStats run_stats;
  run_stats.candidate_pairs = candidates.size();
  if (pool == nullptr || candidates.size() < 2) {
    align_range(0, candidates.size(), overlaps, run_stats);
  } else {
    // Work-stealing over fixed-size chunks. The chunk decomposition (and
    // each chunk's output slot) depends only on the candidate count, so
    // chunk-order concatenation yields the serial run's pre-sort overlap
    // order for any worker count — only which thread ran a chunk varies.
    constexpr std::size_t kChunk = 16;
    const std::size_t chunk_count = (candidates.size() + kChunk - 1) / kChunk;
    std::vector<std::vector<Overlap>> chunk_out(chunk_count);
    std::vector<OverlapStats> chunk_stats(chunk_count);
    pool->parallel_for(candidates.size(), kChunk,
                       [&](std::size_t begin, std::size_t end, std::size_t c) {
                         align_range(begin, end, chunk_out[c], chunk_stats[c]);
                       });
    for (std::size_t c = 0; c < chunk_count; ++c) {
      overlaps.insert(overlaps.end(),
                      std::make_move_iterator(chunk_out[c].begin()),
                      std::make_move_iterator(chunk_out[c].end()));
      run_stats.pruned += chunk_stats[c].pruned;
      run_stats.tracebacks += chunk_stats[c].tracebacks;
      run_stats.accepted += chunk_stats[c].accepted;
    }
  }
  if (stats != nullptr) *stats = run_stats;

  // Deterministic order: best alignments first (greedy merge order), ties
  // broken by indices then orientation — a total order, so the sort result
  // does not depend on the pre-sort arrangement.
  std::sort(overlaps.begin(), overlaps.end(), [](const Overlap& x, const Overlap& y) {
    if (x.alignment.score != y.alignment.score) {
      return x.alignment.score > y.alignment.score;
    }
    if (x.a != y.a) return x.a < y.a;
    if (x.b != y.b) return x.b < y.b;
    return x.flipped < y.flipped;
  });
  return overlaps;
}

}  // namespace pga::assembly
