#include "assembly/overlap.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "bio/alphabet.hpp"
#include "common/error.hpp"

namespace pga::assembly {

bool classify_overlap(const align::LocalAlignment& aln, std::size_t a_len,
                      std::size_t b_len, const OverlapParams& params,
                      OverlapKind& kind, long& shift) {
  if (aln.alignment_length() < params.min_overlap) return false;
  if (aln.percent_identity() < params.min_identity) return false;

  const std::size_t a_left = aln.q_begin;
  const std::size_t a_right = a_len - aln.q_end;
  const std::size_t b_left = aln.s_begin;
  const std::size_t b_right = b_len - aln.s_end;
  const std::size_t slop = params.max_end_slop;

  // Under the (substitution-only) ungapped layout approximation, placing b
  // at a_offset + shift lines the aligned regions up.
  shift = static_cast<long>(aln.q_begin) - static_cast<long>(aln.s_begin);

  // Containments take priority: they are stricter conditions.
  if (b_left <= slop && b_right <= slop) {
    kind = OverlapKind::kAContainsB;
    return true;
  }
  if (a_left <= slop && a_right <= slop) {
    kind = OverlapKind::kBContainsA;
    return true;
  }
  if (a_right <= slop && b_left <= slop) {
    kind = OverlapKind::kSuffixPrefix;
    return true;
  }
  if (a_left <= slop && b_right <= slop) {
    kind = OverlapKind::kPrefixSuffix;
    return true;
  }
  return false;
}

namespace {

/// Packs an (a < b) index pair plus the relative-orientation bit.
std::uint64_t pair_key(std::size_t a, std::size_t b, bool flipped) {
  return (static_cast<std::uint64_t>(flipped) << 63) |
         (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
}

struct PairEvidence {
  std::size_t shared_kmers = 0;
  std::unordered_map<long, std::size_t> diagonal_votes;

  [[nodiscard]] long best_diagonal() const {
    long best = 0;
    std::size_t best_votes = 0;
    for (const auto& [diag, votes] : diagonal_votes) {
      if (votes > best_votes || (votes == best_votes && diag < best)) {
        best = diag;
        best_votes = votes;
      }
    }
    return best;
  }
};

constexpr std::size_t kAlignmentBand = 48;

}  // namespace

std::vector<Overlap> find_overlaps(const std::vector<bio::SeqRecord>& seqs,
                                   const OverlapParams& params) {
  if (params.kmer < 8 || params.kmer > 32) {
    throw common::InvalidArgument("OverlapParams.kmer must be in [8,32]");
  }
  if (params.min_overlap < params.kmer) {
    throw common::InvalidArgument("min_overlap must be >= kmer");
  }
  if (seqs.size() >= (1ULL << 31)) {
    throw common::InvalidArgument("too many sequences");
  }

  // Reverse complements, computed once when strand-agnostic matching is on.
  std::vector<std::string> rc;
  if (params.both_strands) {
    rc.reserve(seqs.size());
    for (const auto& s : seqs) rc.push_back(bio::reverse_complement(s.seq));
  }

  // 1. k-mer occurrence lists. With both_strands, keys are canonical
  // (lexicographic min of the k-mer and its reverse complement) and each
  // occurrence carries the strand on which the canonical form was seen.
  struct Occurrence {
    std::uint32_t seq;
    std::uint32_t pos;      ///< position on the *forward* sequence
    bool on_reverse;        ///< canonical form came from the reverse strand
  };
  std::unordered_map<std::string, std::vector<Occurrence>> buckets;
  for (std::uint32_t i = 0; i < seqs.size(); ++i) {
    const std::string& s = seqs[i].seq;
    if (s.size() < params.kmer) continue;
    for (std::size_t pos = 0; pos + params.kmer <= s.size(); ++pos) {
      std::string kmer(std::string_view(s).substr(pos, params.kmer));
      bool on_reverse = false;
      if (params.both_strands) {
        // RC of s[pos..pos+k) equals rc[L-k-pos .. L-pos).
        std::string rk(std::string_view(rc[i]).substr(s.size() - params.kmer - pos,
                                                      params.kmer));
        if (rk < kmer) {
          kmer = std::move(rk);
          on_reverse = true;
        }
      }
      buckets[std::move(kmer)].push_back(
          {i, static_cast<std::uint32_t>(pos), on_reverse});
    }
  }

  // 2. Candidate pairs with diagonal votes, split by relative orientation.
  std::unordered_map<std::uint64_t, PairEvidence> pairs;
  for (const auto& [kmer, occurrences] : buckets) {
    if (occurrences.size() < 2 || occurrences.size() > params.max_kmer_occurrences) {
      continue;
    }
    for (std::size_t x = 0; x < occurrences.size(); ++x) {
      for (std::size_t y = x + 1; y < occurrences.size(); ++y) {
        Occurrence oa = occurrences[x];
        Occurrence ob = occurrences[y];
        if (oa.seq == ob.seq) continue;
        if (oa.seq > ob.seq) std::swap(oa, ob);
        const bool flipped = oa.on_reverse != ob.on_reverse;
        auto& ev = pairs[pair_key(oa.seq, ob.seq, flipped)];
        ++ev.shared_kmers;
        // Diagonal in the frame "a vs (rc-)b": with flipped, b's k-mer at
        // forward position p sits at rc position len_b - k - p.
        const long pb =
            flipped ? static_cast<long>(seqs[ob.seq].seq.size()) -
                          static_cast<long>(params.kmer) - static_cast<long>(ob.pos)
                    : static_cast<long>(ob.pos);
        ++ev.diagonal_votes[static_cast<long>(oa.pos) - pb];
      }
    }
  }

  // 3. Banded alignment + classification.
  std::vector<Overlap> overlaps;
  for (const auto& [key, ev] : pairs) {
    if (ev.shared_kmers < params.min_shared_kmers) continue;
    const bool flipped = (key >> 63) != 0;
    const auto a = static_cast<std::size_t>((key >> 32) & 0x7fffffffULL);
    const auto b = static_cast<std::size_t>(key & 0xffffffffULL);
    const std::string& b_oriented = flipped ? rc[b] : seqs[b].seq;
    const align::LocalAlignment aln = align::banded_smith_waterman_dna(
        seqs[a].seq, b_oriented, ev.best_diagonal(), kAlignmentBand, params.match,
        params.mismatch, params.gaps);
    OverlapKind kind;
    long shift = 0;
    if (classify_overlap(aln, seqs[a].seq.size(), b_oriented.size(), params, kind,
                         shift)) {
      overlaps.push_back(Overlap{a, b, kind, shift, flipped, aln});
    }
  }

  // Deterministic order: best alignments first (greedy merge order), ties
  // broken by indices.
  std::sort(overlaps.begin(), overlaps.end(), [](const Overlap& x, const Overlap& y) {
    if (x.alignment.score != y.alignment.score) {
      return x.alignment.score > y.alignment.score;
    }
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
  return overlaps;
}

}  // namespace pga::assembly
