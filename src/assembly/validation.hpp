// Assembly validation — the final stage of the paper's Fig. 1 pipeline.
//
// Given ground truth (the synthetic transcriptome's gene models), measures
// how much of each gene's mRNA is recovered by the assembled output: a
// gene is "recovered" when one output sequence covers at least
// `min_coverage` of its mRNA at `min_identity` percent identity (either
// orientation).
#pragma once

#include <string>
#include <vector>

#include "bio/sequence.hpp"
#include "bio/transcriptome.hpp"

namespace pga::assembly {

/// Validation thresholds.
struct ValidationParams {
  double min_identity = 95.0;   ///< percent identity of the aligned region
  double min_coverage = 0.90;   ///< fraction of the mRNA that must align
  std::size_t kmer = 16;        ///< anchor size for candidate pairing
};

/// Per-gene outcome.
struct GeneRecovery {
  std::string gene_id;
  std::string best_sequence;  ///< output record that covers the gene best
  double coverage = 0;        ///< aligned fraction of the mRNA [0,1]
  double identity = 0;        ///< percent identity of that alignment
  bool recovered = false;
};

/// Whole-assembly validation summary.
struct ValidationReport {
  std::size_t genes_total = 0;
  std::size_t genes_recovered = 0;
  double mean_coverage = 0;  ///< mean over all genes
  std::vector<GeneRecovery> genes;

  [[nodiscard]] double recovery_rate() const {
    return genes_total == 0
               ? 0.0
               : static_cast<double>(genes_recovered) / static_cast<double>(genes_total);
  }
};

/// Validates `assembly_output` (contigs + singlets) against the
/// transcriptome's gene models. Both orientations of each output sequence
/// are considered.
ValidationReport validate_assembly(const bio::Transcriptome& truth,
                                   const std::vector<bio::SeqRecord>& assembly_output,
                                   const ValidationParams& params = {});

}  // namespace pga::assembly
