#include "assembly/cap3.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <limits>
#include <map>

#include "bio/alphabet.hpp"
#include "common/error.hpp"

namespace pga::assembly {

namespace {

/// A 1-D isometry x -> sign*x + offset. With sign == -1 the sequence
/// participates reverse-complemented in the layout frame.
struct Placement {
  int sign = 1;
  long offset = 0;

  /// Composition: this ∘ other (apply `other` first).
  [[nodiscard]] Placement then_under(const Placement& outer) const {
    return Placement{outer.sign * sign, outer.sign * offset + outer.offset};
  }
  [[nodiscard]] Placement inverse() const {
    return Placement{sign, -sign * offset};
  }
  [[nodiscard]] long apply(long x) const { return sign * x + offset; }
};

/// Union-find over sequence indices tracking each element's placement
/// (orientation + offset) relative to its root — the "layout" step of OLC,
/// strand-aware like CAP3's.
class LayoutUnionFind {
 public:
  explicit LayoutUnionFind(std::size_t n) : parent_(n), rank_(n, 0), to_parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  /// Root of x; `placement` receives x's transform into the root frame.
  std::size_t find(std::size_t x, Placement& placement) {
    if (parent_[x] == x) {
      placement = Placement{};
      return x;
    }
    Placement parent_placement;
    const std::size_t root = find(parent_[x], parent_placement);
    to_parent_[x] = to_parent_[x].then_under(parent_placement);  // compress
    parent_[x] = root;
    placement = to_parent_[x];
    return root;
  }

  /// Merges with the relation `rel` mapping b's frame into a's frame.
  /// Returns true if a merge happened; false if already joined, with
  /// `consistent` reporting whether the existing layout agrees with `rel`
  /// (same orientation, offset within `tolerance`).
  bool merge(std::size_t a, std::size_t b, const Placement& rel, long tolerance,
             bool& consistent) {
    Placement pa, pb;
    const std::size_t ra = find(a, pa);
    const std::size_t rb = find(b, pb);
    const Placement b_via_a = rel.then_under(pa);  // b -> root(a)
    if (ra == rb) {
      consistent = b_via_a.sign == pb.sign &&
                   std::labs(b_via_a.offset - pb.offset) <= tolerance;
      return false;
    }
    consistent = true;
    if (rank_[ra] < rank_[rb]) {
      // Attach ra under rb: need T(ra->rb) with
      // T(b->rb) == T(b->a-frame-root) ∘ ... i.e.
      // pb == (rel.then_under(pa)).then_under(T)  =>  T = pb ∘ (b_via_a)^-1.
      parent_[ra] = rb;
      to_parent_[ra] = b_via_a.inverse().then_under(pb);
    } else {
      parent_[rb] = ra;
      to_parent_[rb] = pb.inverse().then_under(b_via_a);
      if (rank_[ra] == rank_[rb]) ++rank_[ra];
    }
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<unsigned> rank_;
  std::vector<Placement> to_parent_;
};

/// Column-wise majority consensus of sequences placed by orientation-aware
/// transforms. Base i of a member maps to column placement.apply(i); with
/// sign -1 the complemented base is voted.
std::string consensus_of(const std::vector<bio::SeqRecord>& seqs,
                         const std::vector<std::pair<std::size_t, Placement>>& placed) {
  long min_col = std::numeric_limits<long>::max();
  long max_col = std::numeric_limits<long>::min();
  for (const auto& [idx, p] : placed) {
    const long len = static_cast<long>(seqs[idx].seq.size());
    const long first = p.apply(0);
    const long last = p.apply(len - 1);
    min_col = std::min({min_col, first, last});
    max_col = std::max({max_col, first, last});
  }
  const auto width = static_cast<std::size_t>(max_col - min_col + 1);
  // votes[col][base]; base order ACGT, index 4 = N/other.
  std::vector<std::array<int, 5>> votes(width, {0, 0, 0, 0, 0});
  for (const auto& [idx, p] : placed) {
    const std::string& s = seqs[idx].seq;
    for (std::size_t i = 0; i < s.size(); ++i) {
      const char base =
          p.sign == 1 ? s[i] : bio::complement(s[i]);
      const int b = bio::base_index(base);
      const auto col = static_cast<std::size_t>(p.apply(static_cast<long>(i)) - min_col);
      ++votes[col][b < 0 ? 4 : static_cast<std::size_t>(b)];
    }
  }
  std::string consensus(width, 'N');
  for (std::size_t col = 0; col < width; ++col) {
    int best = -1;
    int best_votes = 0;
    for (int b = 0; b < 4; ++b) {
      if (votes[col][static_cast<std::size_t>(b)] > best_votes) {
        best_votes = votes[col][static_cast<std::size_t>(b)];
        best = b;
      }
    }
    if (best >= 0) consensus[col] = bio::kBases[static_cast<std::size_t>(best)];
    // Columns with zero coverage (possible across slop-tolerated joins) and
    // all-N columns stay 'N'.
  }
  return consensus;
}

/// The layout relation an accepted overlap implies (b's frame -> a's frame).
Placement overlap_relation(const Overlap& overlap, std::size_t b_len) {
  if (!overlap.flipped) {
    return Placement{1, overlap.shift};
  }
  // Base i of b sits at shift + (b_len - 1 - i) in a's frame.
  return Placement{-1, overlap.shift + static_cast<long>(b_len) - 1};
}

}  // namespace

std::vector<bio::SeqRecord> AssemblyResult::all_records() const {
  std::vector<bio::SeqRecord> out;
  out.reserve(output_count());
  for (const auto& c : contigs) out.push_back({c.id, "", c.consensus});
  out.insert(out.end(), singlets.begin(), singlets.end());
  return out;
}

AssemblyResult assemble(const std::vector<bio::SeqRecord>& seqs,
                        const AssemblyOptions& options, common::ThreadPool* pool) {
  return assemble_with_overlaps(seqs, find_overlaps(seqs, options.overlap, pool),
                                options);
}

AssemblyResult assemble_with_overlaps(const std::vector<bio::SeqRecord>& seqs,
                                      const std::vector<Overlap>& overlaps,
                                      const AssemblyOptions& options) {
  AssemblyResult result;
  result.overlaps_considered = overlaps.size();

  LayoutUnionFind uf(seqs.size());
  const long tolerance = static_cast<long>(options.overlap.max_end_slop);
  for (const Overlap& ov : overlaps) {
    bool consistent = false;
    const Placement rel = overlap_relation(ov, seqs[ov.b].seq.size());
    if (uf.merge(ov.a, ov.b, rel, tolerance, consistent)) {
      ++result.overlaps_applied;
    }
    // Inconsistent same-cluster overlaps are simply skipped (greedy CAP3
    // behaviour: the earlier, higher-scoring layout wins).
  }

  // Collect clusters keyed by root, members carrying layout placements.
  std::map<std::size_t, std::vector<std::pair<std::size_t, Placement>>> clusters;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    Placement placement;
    const std::size_t root = uf.find(i, placement);
    clusters[root].push_back({i, placement});
  }

  std::size_t contig_number = 1;
  for (auto& [root, members] : clusters) {
    if (members.size() == 1) {
      result.singlets.push_back(seqs[members.front().first]);
      continue;
    }
    std::sort(members.begin(), members.end(), [&](const auto& x, const auto& y) {
      const long xs = std::min(x.second.apply(0),
                               x.second.apply(static_cast<long>(seqs[x.first].seq.size()) - 1));
      const long ys = std::min(y.second.apply(0),
                               y.second.apply(static_cast<long>(seqs[y.first].seq.size()) - 1));
      if (xs != ys) return xs < ys;
      return seqs[x.first].id < seqs[y.first].id;
    });
    Contig contig;
    contig.id = options.prefix + std::to_string(contig_number++);
    contig.consensus = consensus_of(seqs, members);
    contig.members.reserve(members.size());
    for (const auto& [idx, off] : members) contig.members.push_back(seqs[idx].id);
    result.contigs.push_back(std::move(contig));
  }
  return result;
}

}  // namespace pga::assembly
