#include "trigger/trigger.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace pga::trigger {

TriggerEngine::TriggerEngine() : TriggerEngine(Options()) {}

TriggerEngine::TriggerEngine(Options options)
    : options_(options), next_index_(options.index_base) {}

void TriggerEngine::add_rule(TriggerRule rule) {
  if (rule.name.empty()) {
    throw common::InvalidArgument("trigger: rule name must not be empty");
  }
  for (const RuleState& state : rules_) {
    if (state.rule.name == rule.name) {
      throw common::InvalidArgument("trigger: duplicate rule name " + rule.name);
    }
  }
  if (rule.delay_seconds < 0 || rule.dedup_window_seconds < 0 ||
      rule.min_interval_seconds < 0) {
    throw common::InvalidArgument(
        "trigger: delay/window/interval must be >= 0 (rule " + rule.name + ")");
  }
  if (rule.shape.size == 0) {
    throw common::InvalidArgument("trigger: rule " + rule.name +
                                  " launches a zero-size shape");
  }
  RuleState state;
  state.rule = std::move(rule);
  rules_.push_back(std::move(state));
}

void TriggerEngine::on_storage_event(const data::StorageEvent& event) {
  ++stats_.events_seen;
  for (RuleState& state : rules_) {
    const TriggerRule& rule = state.rule;
    if (rule.on != event.type) continue;
    if (!rule.site.empty() && rule.site != event.site) continue;
    if (!common::glob_match(rule.lfn_glob, event.lfn)) continue;
    ++stats_.matches;

    if (stats_.fired >= options_.max_total_firings ||
        (rule.max_firings > 0 && state.firings >= rule.max_firings)) {
      ++stats_.suppressed_budget;
      continue;
    }
    if (rule.min_interval_seconds > 0 && state.last_fired >= 0 &&
        event.time - state.last_fired < rule.min_interval_seconds) {
      ++stats_.suppressed_rate;
      continue;
    }
    const std::string lfn(event.lfn);
    if (rule.dedup_window_seconds > 0) {
      const auto it = state.last_fired_by_lfn.find(lfn);
      if (it != state.last_fired_by_lfn.end() &&
          event.time - it->second < rule.dedup_window_seconds) {
        ++stats_.suppressed_dedup;
        continue;
      }
    }

    workload::WorkflowRequest request;
    request.index = next_index_++;
    request.arrival_seconds = event.time + rule.delay_seconds;
    request.tenant = rule.tenant;
    request.spec = rule.shape;
    // Same folding discipline as generate_arrivals: topology comes from
    // the rule's base spec, costs vary per firing.
    request.spec.seed =
        common::mix64(options_.seed ^ rule.shape.seed ^ request.index);
    pending_.push_back(std::move(request));

    ++stats_.fired;
    ++state.firings;
    state.last_fired = event.time;
    if (rule.dedup_window_seconds > 0) state.last_fired_by_lfn[lfn] = event.time;
  }
}

std::vector<workload::WorkflowRequest> TriggerEngine::poll(double now) {
  std::vector<workload::WorkflowRequest> out;
  auto keep = pending_.begin();
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->arrival_seconds <= now) {
      out.push_back(std::move(*it));
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  pending_.erase(keep, pending_.end());
  return out;
}

double TriggerEngine::next_arrival() const {
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& request : pending_) {
    earliest = std::min(earliest, request.arrival_seconds);
  }
  return earliest;
}

std::size_t TriggerEngine::rule_firings(const std::string& name) const {
  for (const RuleState& state : rules_) {
    if (state.rule.name == name) return state.firings;
  }
  throw common::InvalidArgument("trigger: unknown rule " + name);
}

CatalogSync::CatalogSync(wms::ReplicaCatalog& catalog, std::string pfn_prefix)
    : catalog_(&catalog), pfn_prefix_(std::move(pfn_prefix)) {}

void CatalogSync::on_storage_event(const data::StorageEvent& event) {
  const std::string lfn(event.lfn);
  const std::string site(event.site);
  switch (event.type) {
    case data::StorageEventType::kFileCreated:
      break;  // the paired kFileClosed does the registration
    case data::StorageEventType::kFileClosed: {
      // Register at most one replica per (lfn, site); an overwrite close
      // just refreshes nothing (sizes are tracked by the element).
      const std::vector<wms::Replica>* replicas = catalog_->find(lfn);
      bool present = false;
      if (replicas != nullptr) {
        for (const auto& replica : *replicas) {
          if (replica.site == site) {
            present = true;
            break;
          }
        }
      }
      if (!present) {
        wms::Replica replica;
        replica.pfn = pfn_prefix_ + lfn;
        replica.site = site;
        replica.size_bytes = event.bytes;
        catalog_->add(lfn, std::move(replica));
        ++registered_;
      }
      break;
    }
    case data::StorageEventType::kFileDeleted:
    case data::StorageEventType::kCacheEvicted:
      removed_ += catalog_->remove(lfn, site);
      break;
  }
}

}  // namespace pga::trigger
