// Event-triggered workflow rules — the CERN EOS Work Flow Engine pattern
// (SNIPPETS.md wfe.rst) on our storage-event stream.
//
// EOS attaches rules like `sync::closew.default` to directories: when a
// file write completes, the matching rule fires an action (archive it,
// fan out a processing job). Here the same shape drives continuous-ingest
// pipelines: a TriggerEngine subscribes to data::StorageEvents, matches
// each against registered TriggerRules (event kind + LFN glob + optional
// site), and synthesizes workload::WorkflowRequests that the
// waas::FleetController polls through the workload::RequestSource
// interface — so the stage-out of one workflow's contigs launches the
// next workflow (blast2cap3 -> downstream annotation), with no human in
// the loop and no end to the pipeline but the rules' own budgets.
//
// Everything is deterministic: rules fire in registration order per
// event, events arrive in simulation-emission order, synthesized specs
// get per-firing folded seeds, and per-rule rate limits / dedup windows /
// firing budgets (plus an engine-wide budget) bound runaway chains —
// double runs are byte-identical, which tests and trigger_bench pin.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "data/storage_events.hpp"
#include "wms/catalog.hpp"
#include "workload/arrival.hpp"

namespace pga::trigger {

/// One registered rule: which events it matches and what it launches.
struct TriggerRule {
  std::string name;  ///< unique identifier (thrown on duplicates/empty)
  /// Event kind to match. Rules chaining off stage-out should use
  /// kFileClosed — it fires on every successful store, including
  /// overwrites of a recycled LFN, where kFileCreated only fires once.
  data::StorageEventType on = data::StorageEventType::kFileClosed;
  std::string lfn_glob = "*";  ///< common::glob_match over the event LFN
  std::string site;            ///< exact site to match; empty = any site
  workload::ShapeSpec shape;   ///< what a firing launches (seed is folded
                               ///< per firing; the field here is a base)
  std::size_t tenant = 0;      ///< tenant the synthesized requests bill to
  double delay_seconds = 0;    ///< arrival = event time + delay
  /// Suppress a second firing for the same (rule, LFN) within this many
  /// seconds of the last one — absorbs per-file event storms. 0 = off.
  double dedup_window_seconds = 0;
  /// Minimum spacing between any two firings of this rule (whatever the
  /// LFN) — a per-rule rate limit. 0 = off.
  double min_interval_seconds = 0;
  /// Lifetime firing budget for this rule; 0 = unlimited (the engine-wide
  /// max_total_firings still applies).
  std::size_t max_firings = 0;
};

/// Counters across all rules (per-rule firing counts live on the engine).
struct TriggerStats {
  std::size_t events_seen = 0;       ///< storage events observed
  std::size_t matches = 0;           ///< (event, rule) kind+glob+site hits
  std::size_t fired = 0;             ///< requests actually synthesized
  std::size_t suppressed_dedup = 0;  ///< matches inside a dedup window
  std::size_t suppressed_rate = 0;   ///< matches inside min_interval
  std::size_t suppressed_budget = 0; ///< matches over a firing budget
};

/// Matches storage events against rules and feeds the fleet.
///
/// Wiring: subscribe it to the bus carrying the fleet's storage events
/// (FleetController::storage_bus()), then pass it as the RequestSource to
/// FleetController::run. Observer callbacks only enqueue; the fleet pulls
/// synthesized requests at its own admission rounds, so the trigger never
/// re-enters the controller mid-event.
class TriggerEngine final : public data::StorageObserver,
                            public workload::RequestSource {
 public:
  struct Options {
    /// Synthesized requests get indices index_base, index_base+1, ... so
    /// they never collide with the static stream's indices.
    std::size_t index_base = 1'000'000;
    /// Folded (common::mix64) with each firing's index into the launched
    /// spec's seed, so two firings of one rule differ in costs, never in
    /// topology — the same discipline as workload::generate_arrivals.
    std::uint64_t seed = 42;
    /// Engine-wide runaway-chain guard: total firings across all rules.
    /// Further matches are suppressed (counted), never thrown.
    std::size_t max_total_firings = 100'000;
  };

  TriggerEngine();
  explicit TriggerEngine(Options options);

  /// Registers a rule; evaluation order is registration order. Throws
  /// InvalidArgument on an empty or duplicate name, a negative delay,
  /// window or interval, or a non-positive shape size.
  void add_rule(TriggerRule rule);

  // StorageObserver: match + synthesize (enqueue only; no re-entry).
  void on_storage_event(const data::StorageEvent& event) override;

  // RequestSource: drain synthesized requests whose arrival is due.
  std::vector<workload::WorkflowRequest> poll(double now) override;
  [[nodiscard]] double next_arrival() const override;

  [[nodiscard]] const TriggerStats& stats() const { return stats_; }
  /// Lifetime firings of one rule (by name; throws on unknown).
  [[nodiscard]] std::size_t rule_firings(const std::string& name) const;
  /// Requests synthesized but not yet drained by poll().
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }

 private:
  struct RuleState {
    TriggerRule rule;
    std::size_t firings = 0;
    double last_fired = -1;  ///< <0 = never
    std::map<std::string, double> last_fired_by_lfn;  ///< dedup window
  };

  Options options_;
  std::vector<RuleState> rules_;  ///< registration order
  std::vector<workload::WorkflowRequest> pending_;  ///< synthesis order
  std::size_t next_index_;
  TriggerStats stats_;
};

/// Mirrors storage events into a ReplicaCatalog so the catalog tracks
/// what the elements actually hold: a close registers a replica at the
/// event's site (pfn = prefix + lfn), a delete or eviction removes that
/// site's replicas. Re-registration after eviction works naturally — the
/// next close adds the replica back. Subscribe it to the same bus as the
/// TriggerEngine; the catalog must outlive the sync.
class CatalogSync final : public data::StorageObserver {
 public:
  explicit CatalogSync(wms::ReplicaCatalog& catalog,
                       std::string pfn_prefix = "/data/");

  void on_storage_event(const data::StorageEvent& event) override;

  [[nodiscard]] std::size_t registered() const { return registered_; }
  [[nodiscard]] std::size_t removed() const { return removed_; }

 private:
  wms::ReplicaCatalog* catalog_;
  std::string pfn_prefix_;
  std::size_t registered_ = 0;
  std::size_t removed_ = 0;
};

}  // namespace pga::trigger
