#include "waas/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/digest.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "data/locality.hpp"
#include "data/staging_service.hpp"
#include "data/storage_events.hpp"
#include "data/transfer_manager.hpp"
#include "wms/exec_service.hpp"
#include "wms/planner.hpp"
#include "workload/generator.hpp"
#include "workload/streamed.hpp"

namespace pga::waas {

namespace {

constexpr double kEps = 1e-9;
constexpr std::size_t kUnlimited = std::numeric_limits<std::size_t>::max();

// Salts for folding independent sub-streams out of the one fleet seed.
constexpr std::uint64_t kCampusSalt = 0x43414d5055530001ULL;
constexpr std::uint64_t kOsgSalt = 0x4f53470000000002ULL;
constexpr std::uint64_t kTransferSalt = 0x5452414e53460003ULL;
constexpr std::uint64_t kChaosSalt = 0x4348414f53000004ULL;
constexpr std::uint64_t kBackoffSalt = 0x4241434b4f460005ULL;

/// Registers one storage element per generator-catalog site plus the
/// submit host (same shape as the core experiment wiring).
void add_fleet_elements(data::TransferManager& transfers,
                        std::size_t transfer_slots) {
  const wms::SiteCatalog sites = workload::generator_site_catalog();
  for (const auto& name : sites.names()) {
    const wms::SiteEntry& site = sites.site(name);
    data::StorageElementConfig element;
    element.site = name;
    element.bandwidth_in_bps = site.stage_bandwidth_bps;
    element.bandwidth_out_bps = site.stage_bandwidth_bps;
    element.transfer_slots = transfer_slots;
    transfers.add_element(std::move(element));
  }
  data::StorageElementConfig submit_host;
  submit_host.site = "local";
  submit_host.transfer_slots = transfer_slots;
  transfers.add_element(std::move(submit_host));
}

}  // namespace

/// One admitted workflow. Members are declaration-ordered so destruction
/// tears the engine down before the services it references, and the
/// services before the catalogs/plan they reference.
struct FleetController::Active {
  std::size_t index = 0;
  std::size_t tenant = 0;
  std::size_t platform = 0;  ///< 0 = campus, 1 = osg
  std::string platform_name;
  double arrival = 0;
  double admitted = 0;
  wms::ReplicaCatalog replicas;
  std::unique_ptr<wms::ConcreteWorkflow> workflow;
  std::unique_ptr<wms::SimService> sim_service;
  std::unique_ptr<data::StagingService> staging;
  std::unique_ptr<wms::FaultyService> faulty;
  std::unique_ptr<wms::EngineInstance> engine;
};

FleetController::FleetController(sim::EventQueue& queue, FleetOptions options)
    : queue_(queue),
      options_(std::move(options)),
      telemetry_(options_.tenants) {
  weights_ = options_.tenant_weights;
  if (weights_.empty()) weights_.assign(options_.tenants, 1.0);
  if (weights_.size() != options_.tenants) {
    throw common::InvalidArgument(
        "fleet: tenant_weights must be empty or one per tenant");
  }
  for (const double weight : weights_) {
    if (!std::isfinite(weight) || weight <= 0) {
      throw common::InvalidArgument(
          "fleet: tenant weights must be positive and finite");
    }
  }
  if (options_.pump_batch == 0) {
    throw common::InvalidArgument("fleet: pump_batch must be >= 1");
  }
  if (options_.cluster_size == 0) {
    throw common::InvalidArgument("fleet: cluster_size must be >= 1");
  }

  auto campus_cfg = options_.campus;
  campus_cfg.seed = common::mix64(options_.seed ^ kCampusSalt);
  campus_ = std::make_unique<sim::CampusClusterPlatform>(queue_, campus_cfg);
  if (options_.dual_platform) {
    auto osg_cfg = options_.osg;
    osg_cfg.seed = common::mix64(options_.seed ^ kOsgSalt);
    osg_ = std::make_unique<sim::OsgPlatform>(queue_, osg_cfg);
  }
  if (options_.model_staging) {
    data::TransferConfig transfer_cfg;
    transfer_cfg.seed = common::mix64(options_.seed ^ kTransferSalt);
    transfers_ = std::make_unique<data::TransferManager>(queue_, transfer_cfg);
    add_fleet_elements(*transfers_, options_.transfer_slots);
    storage_bus_ = std::make_unique<data::StorageEventBus>(&queue_);
    transfers_->set_event_bus(storage_bus_.get());
  }
  if (options_.policy == data::kLocalityPolicyName && !options_.model_staging) {
    throw common::InvalidArgument(
        "fleet: the data-locality policy requires model_staging");
  }
  if (options_.reuse_resident && !options_.model_staging) {
    throw common::InvalidArgument("fleet: reuse_resident requires model_staging");
  }

  tenant_in_flight_.assign(options_.tenants, 0);
  tenant_active_.assign(options_.tenants, 0);
  platform_in_flight_.assign(2, 0);
}

FleetController::~FleetController() = default;

double FleetController::tenant_deficit(std::size_t tenant) const {
  // Weighted share pressure: live jobs plus one unit per live engine, so
  // simultaneous bursts admit round-robin even before any job submits.
  return static_cast<double>(tenant_in_flight_[tenant] + tenant_active_[tenant]) /
         weights_[tenant];
}

void FleetController::admit(const workload::WorkflowRequest& request) {
  if (request.tenant >= options_.tenants) {
    throw common::InvalidArgument("fleet: request tenant out of range");
  }
  // Placement: whichever platform carries fewer of the fleet's in-flight
  // jobs takes the workflow; ties go to the campus cluster (its queue is
  // the better-behaved of the two).
  std::size_t platform_index = 0;
  if (options_.dual_platform && platform_in_flight_[1] < platform_in_flight_[0]) {
    platform_index = 1;
  }

  auto active = std::make_unique<Active>();
  active->index = request.index;
  active->tenant = request.tenant;
  active->platform = platform_index;
  active->platform_name = platform_index == 0 ? "sandhills" : "osg";
  active->arrival = request.arrival_seconds;
  active->admitted = queue_.now();

  // Plan for the chosen site. Shapes with a streamed closed form skip the
  // abstract workflow when clustering: the clustered concrete DAG lands
  // directly (lazy ClusterRange constituents, no per-member job table).
  if (options_.cluster_size > 1 &&
      workload::streamed_build_supported(request.spec)) {
    workload::StreamedBuildOptions build;
    build.site = active->platform_name;
    build.cluster_size = options_.cluster_size;
    active->replicas = workload::streamed_replica_catalog(request.spec);
    active->workflow = std::make_unique<wms::ConcreteWorkflow>(
        workload::build_concrete_streamed(request.spec, build));
  } else {
    const wms::AbstractWorkflow abstract = workload::build_workflow(request.spec);
    wms::PlannerOptions planner_options;
    planner_options.target_site = active->platform_name;
    planner_options.cluster_factor = options_.cluster_size;
    planner_options.expected_output_bytes =
        workload::expected_output_bytes(request.spec);
    active->replicas = workload::generator_replica_catalog(abstract, request.spec);
    active->workflow = std::make_unique<wms::ConcreteWorkflow>(
        wms::plan(abstract, workload::generator_site_catalog(),
                  workload::generator_transformation_catalog(abstract),
                  active->replicas, planner_options));
  }

  // Service stack, innermost out: SimService on the placed platform, then
  // optional shared-bandwidth staging, then optional per-request chaos.
  sim::ExecutionPlatform& platform =
      platform_index == 0 ? static_cast<sim::ExecutionPlatform&>(*campus_)
                          : static_cast<sim::ExecutionPlatform&>(*osg_);
  active->sim_service = std::make_unique<wms::SimService>(queue_, platform);
  wms::ExecutionService* service = active->sim_service.get();
  if (options_.model_staging) {
    data::StagingConfig staging_cfg;
    staging_cfg.execution_site = active->platform_name;
    staging_cfg.reuse_resident = options_.reuse_resident;
    active->staging = std::make_unique<data::StagingService>(
        queue_, *service, *transfers_, active->replicas, staging_cfg);
    service = active->staging.get();
  }
  if (options_.chaos.has_value()) {
    wms::ChaosConfig chaos = *options_.chaos;
    chaos.seed = common::mix64(options_.seed ^ (kChaosSalt + request.index));
    active->faulty = std::make_unique<wms::FaultyService>(
        *service, wms::FaultPlan().chaos(chaos));
    service = active->faulty.get();
  }

  wms::EngineOptions engine_options = options_.engine;
  engine_options.status = nullptr;
  engine_options.rescue_path.reset();
  // Throttling is fleet-level (per-round budgets), not per-engine.
  engine_options.max_jobs_in_flight = 0;
  engine_options.policy = options_.policy == data::kLocalityPolicyName
                              ? data::make_locality_policy(*transfers_)
                              : wms::make_policy(options_.policy);
  engine_options.observers = {&telemetry_};
  engine_options.backoff_seed =
      common::mix64(options_.seed ^ (kBackoffSalt + request.index));

  // record_admission also points the telemetry context at this tenant, so
  // the kRunStarted the constructor emits lands on the right counters.
  telemetry_.record_admission(active->tenant);
  active->engine = std::make_unique<wms::EngineInstance>(
      engine_options, *active->workflow, *service);
  ++tenant_active_[active->tenant];
  active_.push_back(std::move(active));
}

void FleetController::reap(std::size_t slot, std::vector<WorkflowOutcome>& outcomes) {
  Active& active = *active_[slot];
  telemetry_.set_tenant(active.tenant);
  wms::RunReport report = active.engine->take_report();

  WorkflowOutcome outcome;
  outcome.index = active.index;
  outcome.tenant = active.tenant;
  outcome.platform = active.platform_name;
  outcome.arrival_seconds = active.arrival;
  outcome.admitted_seconds = active.admitted;
  outcome.finished_seconds = report.end_time;
  outcome.makespan_seconds = report.end_time - active.arrival;
  outcome.success = report.success;
  outcome.jobs = report.jobs_total;
  outcome.retries = report.total_retries;
  outcome.digest = common::lines_digest(report.jobstate_log);
  telemetry_.record_workflow(active.tenant, outcome.makespan_seconds,
                             outcome.success);
  outcomes.push_back(std::move(outcome));

  --tenant_active_[active.tenant];
  active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(slot));
}

FleetResult FleetController::run(
    const std::vector<workload::WorkflowRequest>& requests,
    workload::RequestSource* source) {
  if (ran_) {
    throw common::InvalidArgument("FleetController::run called twice");
  }
  ran_ = true;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].tenant >= options_.tenants) {
      throw common::InvalidArgument("fleet: request tenant out of range");
    }
    if (i > 0 && requests[i].arrival_seconds < requests[i - 1].arrival_seconds) {
      throw common::InvalidArgument(
          "fleet: requests must be sorted by arrival time");
    }
  }

  const std::uint64_t start_events = queue_.processed();
  const bool capped = options_.max_jobs_in_flight > 0;
  std::size_t next_arrival = 0;
  // Arrived but not yet admitted, in arrival order. Holds request values
  // (not stream indices) so statically-generated and source-synthesized
  // requests queue identically.
  std::vector<workload::WorkflowRequest> due;
  std::vector<WorkflowOutcome> outcomes;
  outcomes.reserve(requests.size());
  std::vector<std::size_t> tenant_budget(options_.tenants, 0);

  const auto admit_due = [&] {
    while (next_arrival < requests.size() &&
           requests[next_arrival].arrival_seconds <= queue_.now() + kEps) {
      due.push_back(requests[next_arrival++]);
    }
    if (source != nullptr) {
      for (auto& request : source->poll(queue_.now() + kEps)) {
        due.push_back(std::move(request));
      }
    }
    while (!due.empty() && (options_.max_active_workflows == 0 ||
                            active_.size() < options_.max_active_workflows)) {
      // Weighted fair-share admission: the due request whose tenant has
      // the smallest deficit wins; the scan order keeps FIFO within ties.
      std::size_t best = 0;
      for (std::size_t i = 1; i < due.size(); ++i) {
        if (tenant_deficit(due[i].tenant) + kEps <
            tenant_deficit(due[best].tenant)) {
          best = i;
        }
      }
      const workload::WorkflowRequest pick = std::move(due[best]);
      due.erase(due.begin() + static_cast<std::ptrdiff_t>(best));
      admit(pick);
    }
  };

  // Steps one engine under `grant` and settles the in-flight ledgers.
  const auto step_engine = [&](Active& active, std::size_t grant,
                               std::size_t& headroom) {
    telemetry_.set_tenant(active.tenant);
    const std::size_t before = active.engine->jobs_in_flight();
    const bool progress = active.engine->step_cooperative(grant);
    const std::size_t after = active.engine->jobs_in_flight();
    if (after >= before) {
      const std::size_t delta = after - before;
      tenant_in_flight_[active.tenant] += delta;
      platform_in_flight_[active.platform] += delta;
      if (capped) {
        tenant_budget[active.tenant] -=
            std::min(delta, tenant_budget[active.tenant]);
        headroom -= std::min(delta, headroom);
      }
    } else {
      const std::size_t delta = before - after;
      tenant_in_flight_[active.tenant] -= delta;
      platform_in_flight_[active.platform] -= delta;
      if (capped) headroom += delta;  // capacity freed this round
    }
    return progress;
  };

  while (true) {
    admit_due();
    if (active_.empty() && due.empty() && next_arrival == requests.size()) {
      // Static stream drained and nothing running — but the source may
      // still owe future requests (e.g. a trigger firing with a delay).
      // Jump the clock to its earliest pending arrival and re-poll.
      const double pending =
          source != nullptr ? source->next_arrival()
                            : std::numeric_limits<double>::infinity();
      if (std::isinf(pending)) break;
      queue_.advance_to(std::max(queue_.now(), pending));
      continue;
    }

    // Per-round fair-share budgets: split the fleet cap across tenants
    // with live engines in proportion to weight; a tenant above its
    // target gets 0 and drains toward it (weighted deficit discipline).
    std::size_t headroom = kUnlimited;
    if (capped) {
      double total_weight = 0;
      std::size_t total_in_flight = 0;
      for (std::size_t t = 0; t < options_.tenants; ++t) {
        if (tenant_active_[t] > 0) total_weight += weights_[t];
        total_in_flight += tenant_in_flight_[t];
      }
      headroom = options_.max_jobs_in_flight > total_in_flight
                     ? options_.max_jobs_in_flight - total_in_flight
                     : 0;
      for (std::size_t t = 0; t < options_.tenants; ++t) {
        if (tenant_active_[t] == 0 || total_weight <= 0) {
          tenant_budget[t] = 0;
          continue;
        }
        const auto target = static_cast<std::size_t>(std::max(
            1.0, std::floor(static_cast<double>(options_.max_jobs_in_flight) *
                            weights_[t] / total_weight)));
        tenant_budget[t] =
            target > tenant_in_flight_[t] ? target - tenant_in_flight_[t] : 0;
      }
    }

    bool progress = false;
    for (auto& active : active_) {
      const std::size_t grant =
          capped ? std::min(tenant_budget[active->tenant], headroom) : kUnlimited;
      progress |= step_engine(*active, grant, headroom);
    }
    // Work-conserving second pass: leftover headroom goes to whoever has
    // ready jobs, weights notwithstanding — idle capacity helps no tenant.
    if (capped && headroom > 0) {
      for (auto& active : active_) {
        if (headroom == 0) break;
        if (active->engine->is_done() || active->engine->ready_count() == 0) {
          continue;
        }
        progress |= step_engine(*active, headroom, headroom);
      }
    }
    for (std::size_t slot = 0; slot < active_.size();) {
      if (active_[slot]->engine->is_done()) {
        reap(slot, outcomes);
      } else {
        ++slot;
      }
    }
    if (progress) continue;

    // Quiet round: nobody could submit or consume. Advance the shared
    // timeline — but never past the earliest engine deadline (backoff
    // release / attempt timeout) or the next arrival.
    double fence = std::numeric_limits<double>::infinity();
    for (const auto& active : active_) {
      fence = std::min(fence, active->engine->next_deadline());
    }
    if (next_arrival < requests.size()) {
      fence = std::min(fence, requests[next_arrival].arrival_seconds);
    }
    if (source != nullptr) {
      fence = std::min(fence, source->next_arrival());
    }

    std::size_t pumped = 0;
    while (pumped < options_.pump_batch) {
      const auto next = queue_.next_time();
      if (!next.has_value() || *next > fence) break;
      queue_.step();
      ++pumped;
      if (queue_.processed() - start_events > options_.max_events) {
        throw common::SimulationError(
            "fleet event budget exhausted after " +
            std::to_string(queue_.processed() - start_events) + " events at t=" +
            std::to_string(queue_.now()));
      }
    }
    if (pumped > 0) continue;

    if (std::isinf(fence)) {
      // No events, no deadlines, no arrivals — yet engines are alive.
      throw common::SimulationError(
          "fleet deadlock: " + std::to_string(active_.size()) +
          " engines waiting with no pending events at t=" +
          std::to_string(queue_.now()));
    }
    if (fence <= queue_.now() + kEps) {
      throw common::SimulationError("fleet stalled at t=" +
                                    std::to_string(queue_.now()));
    }
    queue_.advance_to(fence);
  }

  FleetResult result;
  result.outcomes = std::move(outcomes);
  result.workflows_completed = telemetry_.workflows_completed();
  result.workflows_succeeded = telemetry_.workflows_succeeded();
  result.peak_jobs_in_flight = telemetry_.peak_jobs_in_flight();
  result.events_processed = queue_.processed() - start_events;
  result.engine_events = telemetry_.engine_events();
  result.finished_at_seconds = queue_.now();
  result.p50_makespan_seconds = telemetry_.makespan_percentile(50);
  result.p99_makespan_seconds = telemetry_.makespan_percentile(99);
  result.tenants = telemetry_.tenants();
  std::uint64_t digest = common::kFnv1aOffset;
  for (const auto& outcome : result.outcomes) {
    digest = common::mix64(digest ^ outcome.digest);
  }
  result.digest = digest;
  return result;
}

std::string FleetResult::render() const {
  std::ostringstream os;
  os << "fleet: " << workflows_completed << " workflows ("
     << workflows_succeeded << " ok), peak " << peak_jobs_in_flight
     << " jobs in flight, " << events_processed << " events, finished t="
     << common::format_fixed(finished_at_seconds, 1) << " s\n";
  os << "makespan p50=" << common::format_fixed(p50_makespan_seconds, 1)
     << " s  p99=" << common::format_fixed(p99_makespan_seconds, 1) << " s\n";
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const TenantTotals& totals = tenants[t];
    os << "tenant " << t << ": " << totals.workflows_completed << "/"
       << totals.workflows_admitted << " workflows, " << totals.jobs_succeeded
       << " jobs ok, " << totals.jobs_failed << " failed\n";
  }
  return os.str();
}

}  // namespace pga::waas
