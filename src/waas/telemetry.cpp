#include "waas/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"

namespace pga::waas {

FleetTelemetry::FleetTelemetry(std::size_t tenants) : tenants_(tenants) {
  if (tenants == 0) {
    throw common::InvalidArgument("FleetTelemetry: tenants must be >= 1");
  }
}

void FleetTelemetry::set_tenant(std::size_t tenant) {
  if (tenant >= tenants_.size()) {
    throw common::InvalidArgument("FleetTelemetry: tenant " +
                                  std::to_string(tenant) + " out of range");
  }
  tenant_ = tenant;
}

void FleetTelemetry::on_event(const wms::EngineEvent& event) {
  ++engine_events_;
  TenantTotals& totals = tenants_[tenant_];
  switch (event.type) {
    case wms::EngineEventType::kJobSubmitted:
      ++totals.jobs_submitted;
      ++jobs_in_flight_;
      peak_jobs_in_flight_ = std::max(peak_jobs_in_flight_, jobs_in_flight_);
      break;
    case wms::EngineEventType::kAttemptFinished:
      // Every submitted attempt finishes exactly once (real completion or
      // the engine's synthesized timeout), so this pairs with kJobSubmitted.
      --jobs_in_flight_;
      break;
    case wms::EngineEventType::kJobSucceeded:
      ++totals.jobs_succeeded;
      break;
    case wms::EngineEventType::kJobFailed:
      ++totals.jobs_failed;
      break;
    default:
      break;
  }
}

void FleetTelemetry::record_admission(std::size_t tenant) {
  set_tenant(tenant);
  ++tenants_[tenant].workflows_admitted;
}

void FleetTelemetry::record_workflow(std::size_t tenant, double makespan_seconds,
                                     bool success) {
  set_tenant(tenant);
  TenantTotals& totals = tenants_[tenant];
  ++totals.workflows_completed;
  ++workflows_completed_;
  if (success) {
    ++totals.workflows_succeeded;
    ++workflows_succeeded_;
  }
  makespans_.push_back(makespan_seconds);
}

double FleetTelemetry::makespan_percentile(double p) const {
  if (makespans_.empty()) return 0;
  std::vector<double> sorted = makespans_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest value with at least p% of the mass at or
  // below it.
  const std::size_t n = sorted.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(n)));
  rank = std::clamp<std::size_t>(rank, 1, n);
  return sorted[rank - 1];
}

}  // namespace pga::waas
