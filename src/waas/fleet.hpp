// Workflow-as-a-Service fleet controller (Hilman et al., PAPERS.md).
//
// Everything below PR 7 ran ONE workflow per engine per clock. This module
// inverts that: a FleetController owns one sim::EventQueue (the shared
// timeline), stands up BOTH paper platforms on it — the Sandhills campus
// cluster and the OSG pool, simultaneously, the choice the paper could
// only make per-run — and drives an arrival stream of WorkflowRequests
// (workload::generate_arrivals) through many concurrently-executing
// wms::EngineInstance cores:
//
//   * admission: requests wait in an arrival queue; when a slot opens the
//     controller admits the request whose tenant has the smallest
//     weighted deficit (jobs-in-flight / weight), i.e. weighted fair
//     share across tenants, FIFO within a tenant;
//   * placement: each admitted workflow is planned (workload::plan_shape
//     pipeline) for whichever platform currently carries fewer of the
//     fleet's in-flight jobs (ties go to the campus cluster);
//   * execution: engines are stepped cooperatively — step_cooperative()
//     never blocks, the controller owns the clock and only advances it to
//     the earliest engine deadline / arrival / platform event, so 10k
//     interleaved workflows stay exactly as deterministic as one;
//   * fair-share submission: a fleet-wide jobs-in-flight cap is split
//     into per-tenant budgets proportional to weight each scheduling
//     round, with a second work-conserving pass granting leftover
//     headroom to whoever has ready jobs;
//   * telemetry: one FleetTelemetry observer sees every engine event;
//     finished workflows fold into p50/p99 makespan and per-tenant
//     throughput.
//
// Optional layers compose exactly as they do for single runs: one shared
// data::TransferManager gives every workflow's staging jobs genuine
// bandwidth contention, and a ChaosConfig wraps each engine's service in
// a wms::FaultyService with a per-request folded seed (common::mix64).
// Two runs with the same options and requests are byte-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/campus_cluster.hpp"
#include "sim/event_queue.hpp"
#include "sim/osg.hpp"
#include "waas/telemetry.hpp"
#include "wms/engine.hpp"
#include "wms/fault_injection.hpp"
#include "workload/arrival.hpp"

namespace pga::data {
class TransferManager;
class StagingService;
class StorageEventBus;
}  // namespace pga::data

namespace pga::waas {

/// Fleet knobs.
struct FleetOptions {
  /// Master seed: platform streams, chaos streams and backoff streams are
  /// folded from it (common::mix64) so the whole fleet replays from one
  /// number.
  std::uint64_t seed = 42;
  /// Tenants sharing the fleet. Requests must carry tenant < tenants.
  std::size_t tenants = 1;
  /// Fair-share weights, one per tenant; empty = equal weights. Must be
  /// positive and finite when given.
  std::vector<double> tenant_weights = {};
  /// Concurrently-admitted workflows (engines alive at once). 0 = no cap.
  std::size_t max_active_workflows = 0;
  /// Fleet-wide jobs-in-flight cap split across tenants by weight.
  /// 0 = no cap (every engine submits everything ready).
  std::size_t max_jobs_in_flight = 0;
  /// Scheduling policy per engine (wms::make_policy name, or
  /// "data-locality" — which requires model_staging and ranks ready jobs
  /// by bytes already resident on their site's storage element). Each
  /// engine gets its own instance — one policy object must not serve two
  /// concurrently-stepping engines.
  std::string policy = "fifo";
  /// Per-engine options template: retries, backoff, attempt timeout,
  /// blacklist. `policy`, `observers`, `status` and `rescue_path` fields
  /// are controller-owned and ignored here.
  wms::EngineOptions engine = {};
  /// Platform sizing. Seeds are overridden from `seed`; slots are the
  /// elastic-provisioning knob (the paper's fixed 512/150 split is tiny
  /// against a 10k-workflow fleet — raise them to model elastic pools).
  sim::CampusClusterConfig campus = {};
  sim::OsgConfig osg = {};
  /// false = campus only (single-platform fleet, mostly for tests).
  bool dual_platform = true;
  /// >1: horizontally cluster compute jobs at admission, cluster_size per
  /// scheduled unit (planner cluster_factor semantics). Shapes with a
  /// streamed closed form (blast2cap3) are admitted through
  /// workload::build_concrete_streamed — no abstract workflow, no
  /// per-member job table, constituents described as lazy ClusterRanges —
  /// so a large-n request costs the fleet O(n / cluster_size) memory.
  std::size_t cluster_size = 1;
  /// Model stage-in/out through one shared TransferManager (bandwidth
  /// contention across the whole fleet) instead of flat-cost jobs.
  bool model_staging = false;
  std::size_t transfer_slots = 4;  ///< per storage element when staging
  /// Stage-in files already resident on the destination element are
  /// reused (no transfer) instead of re-copied. Needs model_staging.
  bool reuse_resident = false;
  /// When set, every engine's service is wrapped in a FaultyService in
  /// chaos mode with a per-request folded seed.
  std::optional<wms::ChaosConfig> chaos = {};
  /// Runaway guard across the whole fleet run (queue events).
  std::uint64_t max_events = 1'000'000'000;
  /// Events pumped per quiet round before re-scanning engines; bounds how
  /// stale budgets can get, not correctness.
  std::size_t pump_batch = 1024;
};

/// One finished workflow, in completion order.
struct WorkflowOutcome {
  std::size_t index = 0;   ///< WorkflowRequest::index
  std::size_t tenant = 0;
  std::string platform;    ///< "sandhills" or "osg"
  double arrival_seconds = 0;
  double admitted_seconds = 0;   ///< left the arrival queue
  double finished_seconds = 0;
  /// finished - arrival: queueing + execution, the WaaS-facing latency.
  double makespan_seconds = 0;
  bool success = false;
  std::size_t jobs = 0;
  std::size_t retries = 0;
  /// FNV-1a over the jobstate log — the determinism fingerprint double-run
  /// tests compare.
  std::uint64_t digest = 0;
};

/// Everything a fleet run produced.
struct FleetResult {
  std::vector<WorkflowOutcome> outcomes;  ///< completion order
  std::size_t workflows_completed = 0;
  std::size_t workflows_succeeded = 0;
  std::size_t peak_jobs_in_flight = 0;
  std::uint64_t events_processed = 0;  ///< queue events this run consumed
  std::size_t engine_events = 0;       ///< EngineEvents across all engines
  double finished_at_seconds = 0;      ///< clock when the last engine drained
  double p50_makespan_seconds = 0;
  double p99_makespan_seconds = 0;
  std::vector<TenantTotals> tenants;
  /// Order-sensitive fold of the per-workflow digests: one number that
  /// pins the entire fleet execution.
  std::uint64_t digest = 0;

  /// Human-readable summary table.
  [[nodiscard]] std::string render() const;
};

/// Drives a request stream to completion on one shared clock.
class FleetController {
 public:
  /// `queue` is the fleet's timeline; it must outlive the controller and
  /// start empty. Throws InvalidArgument on bad options (weights, tenant
  /// table).
  FleetController(sim::EventQueue& queue, FleetOptions options);
  ~FleetController();

  FleetController(const FleetController&) = delete;
  FleetController& operator=(const FleetController&) = delete;

  /// Runs every request to completion and returns the aggregate result.
  /// Requests must be sorted by arrival_seconds (generate_arrivals output
  /// is) and carry tenant < options.tenants. Call once per controller.
  ///
  /// `source`, when given, is polled every admission round for
  /// dynamically-synthesized requests (the trigger subsystem's feed);
  /// the run only ends once the static stream, the source and every
  /// engine have drained. Source requests join the same weighted
  /// fair-share admission queue as static ones.
  FleetResult run(const std::vector<workload::WorkflowRequest>& requests,
                  workload::RequestSource* source = nullptr);

  /// The storage-event stream of the fleet's shared TransferManager
  /// (nullptr unless model_staging). Subscribe observers — e.g. a
  /// trigger::TriggerEngine — before run().
  [[nodiscard]] data::StorageEventBus* storage_bus() const {
    return storage_bus_.get();
  }

 private:
  struct Active;  // one admitted workflow: plan + services + engine

  void admit(const workload::WorkflowRequest& request);
  [[nodiscard]] double tenant_deficit(std::size_t tenant) const;
  void reap(std::size_t slot, std::vector<WorkflowOutcome>& outcomes);

  sim::EventQueue& queue_;
  FleetOptions options_;
  std::vector<double> weights_;
  FleetTelemetry telemetry_;

  std::unique_ptr<sim::CampusClusterPlatform> campus_;
  std::unique_ptr<sim::OsgPlatform> osg_;
  std::unique_ptr<data::TransferManager> transfers_;
  std::unique_ptr<data::StorageEventBus> storage_bus_;

  std::vector<std::unique_ptr<Active>> active_;   ///< admission order
  std::vector<std::size_t> tenant_in_flight_;     ///< live jobs per tenant
  std::vector<std::size_t> tenant_active_;        ///< live engines per tenant
  std::vector<std::size_t> platform_in_flight_;   ///< [0]=campus, [1]=osg
  bool ran_ = false;
};

}  // namespace pga::waas
