// Fleet-level telemetry: one EngineObserver shared by every engine.
//
// The fleet controller subscribes a single FleetTelemetry to each
// EngineInstance it admits and points its tenant context at the owning
// tenant before constructing or stepping that engine (engines are stepped
// strictly one at a time on the shared clock, so a plain context field is
// race-free by construction). The result is the aggregate view a WaaS
// operator actually watches: jobs in flight across the whole fleet (and
// its peak), per-tenant submit/success/failure counters, and workflow
// makespan percentiles (p50/p99) folded in as the controller reaps
// finished engines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "wms/events.hpp"

namespace pga::waas {

/// Aggregate counters for one tenant.
struct TenantTotals {
  std::size_t workflows_admitted = 0;
  std::size_t workflows_completed = 0;
  std::size_t workflows_succeeded = 0;
  std::size_t jobs_submitted = 0;  ///< attempts handed to a platform
  std::size_t jobs_succeeded = 0;
  std::size_t jobs_failed = 0;     ///< retry budget exhausted
};

/// The shared fleet observer. Not thread-safe; the fleet is single-threaded
/// by design (one clock, one driver).
class FleetTelemetry final : public wms::EngineObserver {
 public:
  /// Sizes the per-tenant table. Events for tenants >= `tenants` throw in
  /// set_tenant (they would mean a controller bug, not bad input).
  explicit FleetTelemetry(std::size_t tenants);

  /// Routes subsequent events to `tenant`'s counters. The controller calls
  /// this before constructing/stepping each engine.
  void set_tenant(std::size_t tenant);

  void on_event(const wms::EngineEvent& event) override;

  /// Folds one finished workflow into the makespan distribution.
  void record_workflow(std::size_t tenant, double makespan_seconds, bool success);
  /// Counts one admission (engines also emit kRunStarted, but admission is
  /// a controller decision, counted where it is made).
  void record_admission(std::size_t tenant);

  [[nodiscard]] std::size_t jobs_in_flight() const { return jobs_in_flight_; }
  [[nodiscard]] std::size_t peak_jobs_in_flight() const { return peak_jobs_in_flight_; }
  [[nodiscard]] std::size_t engine_events() const { return engine_events_; }
  [[nodiscard]] std::size_t workflows_completed() const { return workflows_completed_; }
  [[nodiscard]] std::size_t workflows_succeeded() const { return workflows_succeeded_; }
  [[nodiscard]] const std::vector<TenantTotals>& tenants() const { return tenants_; }

  /// Makespan percentile over completed workflows, nearest-rank (p in
  /// [0, 100]); 0 when nothing completed yet.
  [[nodiscard]] double makespan_percentile(double p) const;

 private:
  std::vector<TenantTotals> tenants_;
  std::size_t tenant_ = 0;
  std::size_t jobs_in_flight_ = 0;
  std::size_t peak_jobs_in_flight_ = 0;
  std::size_t engine_events_ = 0;
  std::size_t workflows_completed_ = 0;
  std::size_t workflows_succeeded_ = 0;
  std::vector<double> makespans_;
};

}  // namespace pga::waas
