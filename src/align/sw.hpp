// Smith–Waterman local alignment (affine gaps), full and banded.
//
// The DP kernel is band-compressed: M/X/Y scores live in two rolling rows
// of at most min(|s|, 2·band+1) cells and the traceback is one packed byte
// per in-band cell, so a banded alignment costs O(band·n) time and memory
// instead of the six full (n+1)×(m+1) matrices the naive layout paid.
// Substitution scores come from a precomputed ScoringProfile over encoded
// residues (no per-cell callback). A score-only fast pass (no traceback
// storage at all) serves callers that prune candidates by score before
// paying for a full alignment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "align/scoring.hpp"

namespace pga::align {

/// Result of a local alignment. Coordinates are 0-based half-open over the
/// input strings; identity/mismatch/gap counts come from the traceback.
struct LocalAlignment {
  int score = 0;
  std::size_t q_begin = 0, q_end = 0;  ///< aligned query range [q_begin, q_end)
  std::size_t s_begin = 0, s_end = 0;  ///< aligned subject range
  std::size_t matches = 0;             ///< identical aligned pairs
  std::size_t mismatches = 0;          ///< non-identical aligned pairs
  std::size_t gap_opens = 0;           ///< number of gap runs
  std::size_t gap_residues = 0;        ///< total gapped positions
  /// Aligned columns = matches + mismatches + gap_residues.
  [[nodiscard]] std::size_t alignment_length() const {
    return matches + mismatches + gap_residues;
  }
  /// Percent identity over the alignment length; 0 for empty alignments.
  [[nodiscard]] double percent_identity() const {
    const std::size_t len = alignment_length();
    return len == 0 ? 0.0 : 100.0 * static_cast<double>(matches) / static_cast<double>(len);
  }
};

/// Full O(|q|*|s|) protein local alignment under BLOSUM62 + affine gaps.
LocalAlignment smith_waterman(std::string_view query, std::string_view subject,
                              const GapPenalties& gaps = {});

/// Banded local alignment restricted to |(i - j) - diagonal| <= band, used
/// for seed extension: `diagonal` = q_pos - s_pos of the seed. Cells
/// outside the band are unreachable. Falls back to the exact result when
/// the band covers the whole matrix.
LocalAlignment banded_smith_waterman(std::string_view query, std::string_view subject,
                                     long diagonal, std::size_t band,
                                     const GapPenalties& gaps = {});

/// DNA local alignment with simple match/mismatch scoring (+1/-2 by
/// default) and affine gaps — the overlap detector's inner kernel.
LocalAlignment smith_waterman_dna(std::string_view query, std::string_view subject,
                                  int match = 1, int mismatch = -2,
                                  const GapPenalties& gaps = {6, 1});

/// Banded DNA local alignment around `diagonal` (query_pos - subject_pos).
LocalAlignment banded_smith_waterman_dna(std::string_view query,
                                         std::string_view subject, long diagonal,
                                         std::size_t band, int match = 1,
                                         int mismatch = -2,
                                         const GapPenalties& gaps = {6, 1});

/// Result of a score-only pass: the optimal local score and where that
/// alignment ends. The score (and end cell) are identical to what the
/// traceback entry point reports for the same inputs — callers prune on
/// the score and run the full alignment only for survivors.
struct ScoreOnlyResult {
  int score = 0;
  std::size_t q_end = 0, s_end = 0;
};

/// Banded local alignment under an arbitrary profile, with traceback.
LocalAlignment banded_align(std::string_view query, std::string_view subject,
                            const ScoringProfile& profile, long diagonal,
                            std::size_t band, const GapPenalties& gaps = {});

/// Score-only banded pass (two rolling rows, no traceback storage).
ScoreOnlyResult banded_score_only(std::string_view query, std::string_view subject,
                                  const ScoringProfile& profile, long diagonal,
                                  std::size_t band, const GapPenalties& gaps = {});

/// Pre-encoded variants: both sequences were encoded once via
/// PreparedSeq and are reused across many calls — a blastx search prepares
/// each frame query and every database subject once instead of re-encoding
/// per (subject, diagonal) pair, and the overlap phase prepares each
/// fragment once for all its candidate pairs. `profile` must be the one
/// the PreparedSeqs were encoded with. Results are identical to the
/// string_view entry points.
LocalAlignment banded_align(const PreparedSeq& query, const PreparedSeq& subject,
                            const ScoringProfile& profile, long diagonal,
                            std::size_t band, const GapPenalties& gaps = {});

/// Score-only pass over pre-encoded sequences.
ScoreOnlyResult banded_score_only(const PreparedSeq& query,
                                  const PreparedSeq& subject,
                                  const ScoringProfile& profile, long diagonal,
                                  std::size_t band, const GapPenalties& gaps = {});

/// DNA score-only pass with the overlap detector's identity scoring.
ScoreOnlyResult banded_score_only_dna(std::string_view query,
                                      std::string_view subject, long diagonal,
                                      std::size_t band, int match = 1,
                                      int mismatch = -2,
                                      const GapPenalties& gaps = {6, 1});

/// Cumulative DP work counters. Accumulated per thread (one cache-line-
/// aligned node per kernel-touching thread, updated once per invocation
/// with owner-only relaxed atomics) and merged when read, so parallel
/// alignment runs never bounce a shared counter line. Machine-independent:
/// the CI perf-smoke asserts cell-count envelopes on these instead of
/// wall-clock seconds. reset_dp_counters() zeroes every thread's node;
/// call it only while no kernels are in flight (benchmark harnesses).
struct DpCounters {
  std::uint64_t cells = 0;        ///< in-band DP cells scored
  std::uint64_t tracebacks = 0;   ///< full (traceback) kernel invocations
  std::uint64_t score_only = 0;   ///< score-only kernel invocations
};

/// Snapshot of the counters since process start / last reset.
DpCounters dp_counters();
/// Resets the counters to zero (benchmark harnesses only).
void reset_dp_counters();

}  // namespace pga::align
