// Smith–Waterman local alignment (affine gaps), full and banded.
#pragma once

#include <cstddef>
#include <string_view>

#include "align/scoring.hpp"

namespace pga::align {

/// Result of a local alignment. Coordinates are 0-based half-open over the
/// input strings; identity/mismatch/gap counts come from the traceback.
struct LocalAlignment {
  int score = 0;
  std::size_t q_begin = 0, q_end = 0;  ///< aligned query range [q_begin, q_end)
  std::size_t s_begin = 0, s_end = 0;  ///< aligned subject range
  std::size_t matches = 0;             ///< identical aligned pairs
  std::size_t mismatches = 0;          ///< non-identical aligned pairs
  std::size_t gap_opens = 0;           ///< number of gap runs
  std::size_t gap_residues = 0;        ///< total gapped positions
  /// Aligned columns = matches + mismatches + gap_residues.
  [[nodiscard]] std::size_t alignment_length() const {
    return matches + mismatches + gap_residues;
  }
  /// Percent identity over the alignment length; 0 for empty alignments.
  [[nodiscard]] double percent_identity() const {
    const std::size_t len = alignment_length();
    return len == 0 ? 0.0 : 100.0 * static_cast<double>(matches) / static_cast<double>(len);
  }
};

/// Full O(|q|*|s|) protein local alignment under BLOSUM62 + affine gaps.
LocalAlignment smith_waterman(std::string_view query, std::string_view subject,
                              const GapPenalties& gaps = {});

/// Banded local alignment restricted to |(i - j) - diagonal| <= band, used
/// for seed extension: `diagonal` = q_pos - s_pos of the seed. Cells
/// outside the band are unreachable. Falls back to the exact result when
/// the band covers the whole matrix.
LocalAlignment banded_smith_waterman(std::string_view query, std::string_view subject,
                                     long diagonal, std::size_t band,
                                     const GapPenalties& gaps = {});

/// DNA local alignment with simple match/mismatch scoring (+1/-2 by
/// default) and affine gaps — the overlap detector's inner kernel.
LocalAlignment smith_waterman_dna(std::string_view query, std::string_view subject,
                                  int match = 1, int mismatch = -2,
                                  const GapPenalties& gaps = {6, 1});

/// Banded DNA local alignment around `diagonal` (query_pos - subject_pos).
LocalAlignment banded_smith_waterman_dna(std::string_view query,
                                         std::string_view subject, long diagonal,
                                         std::size_t band, int match = 1,
                                         int mismatch = -2,
                                         const GapPenalties& gaps = {6, 1});

}  // namespace pga::align
