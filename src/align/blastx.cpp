#include "align/blastx.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "align/sw.hpp"
#include "bio/codon.hpp"
#include "common/error.hpp"

namespace pga::align {

namespace {

/// Seed accumulator for one (subject, diagonal) pair.
struct DiagonalSeeds {
  std::size_t count = 0;
};

/// Converts a frame-protein residue range to 1-based nucleotide query
/// coordinates on the forward strand (BLASTX convention: reverse-strand
/// hits have qstart > qend).
void residue_range_to_nucleotides(int frame, std::size_t q_begin, std::size_t q_end,
                                  std::size_t dna_length, long& qstart, long& qend) {
  if (frame > 0) {
    qstart = static_cast<long>(bio::frame_to_forward_offset(frame, q_begin, dna_length)) + 1;
    qend = static_cast<long>(bio::frame_to_forward_offset(frame, q_end - 1, dna_length)) + 3;
  } else {
    // First codon of the alignment sits at the highest forward coordinates.
    const std::size_t first = bio::frame_to_forward_offset(frame, q_begin, dna_length);
    const std::size_t last = bio::frame_to_forward_offset(frame, q_end - 1, dna_length);
    qstart = static_cast<long>(first) + 3;  // 1-based top base of first codon
    qend = static_cast<long>(last) + 1;     // 1-based bottom base of last codon
  }
}

}  // namespace

BlastxSearch::BlastxSearch(std::vector<bio::SeqRecord> proteins, BlastxParams params)
    : proteins_(std::move(proteins)),
      params_(params),
      index_(proteins_, params.word_size, params.neighbor_threshold) {
  if (params_.min_seeds_per_diagonal == 0) {
    throw common::InvalidArgument("min_seeds_per_diagonal must be >= 1");
  }
  if (params_.band == 0) throw common::InvalidArgument("band must be >= 1");
}

std::vector<TabularHit> BlastxSearch::search(const bio::SeqRecord& transcript) const {
  std::vector<TabularHit> hits;
  const auto k = static_cast<std::size_t>(params_.word_size);
  const double db_residues = static_cast<double>(index_.total_residues());

  // Best hit per subject across all frames (optional collapse).
  std::unordered_map<std::uint32_t, TabularHit> best_per_subject;

  for (const auto& ft : bio::six_frame_translate(transcript.seq)) {
    const std::string& fp = ft.protein;
    if (fp.size() < k) continue;

    // Collect word seeds grouped by (subject, diagonal).
    std::map<std::pair<std::uint32_t, long>, DiagonalSeeds> diagonals;
    std::vector<WordHit> word_hits;
    for (std::size_t q_pos = 0; q_pos + k <= fp.size(); ++q_pos) {
      word_hits.clear();
      index_.neighborhood(std::string_view(fp).substr(q_pos, k), word_hits);
      for (const WordHit& wh : word_hits) {
        const long diag = static_cast<long>(q_pos) - static_cast<long>(wh.position);
        ++diagonals[{wh.subject, diag}].count;
      }
    }

    // Select extension candidates per subject: the strongest diagonals.
    std::unordered_map<std::uint32_t, std::vector<std::pair<std::size_t, long>>> per_subject;
    for (const auto& [key, seeds] : diagonals) {
      if (seeds.count >= params_.min_seeds_per_diagonal) {
        per_subject[key.first].push_back({seeds.count, key.second});
      }
    }

    for (auto& [subject, diags] : per_subject) {
      std::sort(diags.begin(), diags.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      if (diags.size() > params_.max_diagonals_per_subject) {
        diags.resize(params_.max_diagonals_per_subject);
      }
      LocalAlignment best_aln;
      for (const auto& [count, diag] : diags) {
        const LocalAlignment aln = banded_smith_waterman(
            fp, proteins_[subject].seq, diag, params_.band, params_.gaps);
        if (aln.score > best_aln.score) best_aln = aln;
      }
      if (best_aln.score <= 0) continue;
      if (static_cast<long>(best_aln.alignment_length()) < params_.min_alignment_length) {
        continue;
      }
      const double bits = bit_score(best_aln.score, params_.ka);
      const double evalue =
          e_value(bits, static_cast<double>(transcript.seq.size()) / 3.0, db_residues);
      if (evalue > params_.evalue_cutoff) continue;

      TabularHit hit;
      hit.qseqid = transcript.id;
      hit.sseqid = proteins_[subject].id;
      hit.pident = best_aln.percent_identity();
      hit.length = static_cast<long>(best_aln.alignment_length());
      hit.mismatch = static_cast<long>(best_aln.mismatches);
      hit.gapopen = static_cast<long>(best_aln.gap_opens);
      residue_range_to_nucleotides(ft.frame, best_aln.q_begin, best_aln.q_end,
                                   transcript.seq.size(), hit.qstart, hit.qend);
      hit.sstart = static_cast<long>(best_aln.s_begin) + 1;
      hit.send = static_cast<long>(best_aln.s_end);
      hit.evalue = evalue;
      hit.bitscore = bits;

      if (params_.best_hit_per_subject) {
        auto [it, inserted] = best_per_subject.try_emplace(subject, hit);
        if (!inserted && hit.bitscore > it->second.bitscore) it->second = hit;
      } else {
        hits.push_back(std::move(hit));
      }
    }
  }

  if (params_.best_hit_per_subject) {
    hits.reserve(best_per_subject.size());
    for (auto& [subject, hit] : best_per_subject) hits.push_back(std::move(hit));
  }
  std::sort(hits.begin(), hits.end(), [](const TabularHit& a, const TabularHit& b) {
    if (a.bitscore != b.bitscore) return a.bitscore > b.bitscore;
    return a.sseqid < b.sseqid;
  });
  return hits;
}

std::vector<TabularHit> BlastxSearch::search_all(
    const std::vector<bio::SeqRecord>& transcripts, common::ThreadPool* pool) const {
  if (pool == nullptr || transcripts.size() < 2) {
    std::vector<TabularHit> all;
    for (const auto& t : transcripts) {
      auto hits = search(t);
      all.insert(all.end(), std::make_move_iterator(hits.begin()),
                 std::make_move_iterator(hits.end()));
    }
    return all;
  }

  // Fan out in contiguous chunks, ~4 per worker: enough slack for load
  // balancing across uneven transcripts while paying the packaged_task /
  // future overhead once per chunk instead of once per transcript.
  // Chunk-order collection preserves input order exactly like the old
  // per-transcript fan-out did.
  const std::size_t chunk_target = std::max<std::size_t>(1, pool->size() * 4);
  const std::size_t chunk_count = std::min(transcripts.size(), chunk_target);
  const std::size_t base = transcripts.size() / chunk_count;
  const std::size_t extra = transcripts.size() % chunk_count;
  std::vector<std::future<std::vector<TabularHit>>> futures;
  futures.reserve(chunk_count);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunk_count; ++c) {
    const std::size_t end = begin + base + (c < extra ? 1 : 0);
    futures.push_back(pool->submit([this, &transcripts, begin, end] {
      std::vector<TabularHit> chunk_hits;
      for (std::size_t i = begin; i < end; ++i) {
        auto hits = search(transcripts[i]);
        chunk_hits.insert(chunk_hits.end(), std::make_move_iterator(hits.begin()),
                          std::make_move_iterator(hits.end()));
      }
      return chunk_hits;
    }));
    begin = end;
  }
  std::vector<TabularHit> all;
  for (auto& f : futures) {
    auto hits = f.get();
    all.insert(all.end(), std::make_move_iterator(hits.begin()),
               std::make_move_iterator(hits.end()));
  }
  return all;
}

}  // namespace pga::align
