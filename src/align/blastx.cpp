#include "align/blastx.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "align/sw.hpp"
#include "bio/codon.hpp"
#include "common/error.hpp"

namespace pga::align {

namespace {

/// Packs a (subject, diagonal) seed into one sortable key: subject in the
/// high 32 bits, the diagonal bias-shifted so unsigned key order equals
/// (subject asc, diagonal asc) — the iteration order the old
/// std::map<pair<subject, diag>> accumulator produced, which downstream
/// tie-breaking depends on.
constexpr std::uint64_t kDiagBias = 1ULL << 31;

inline std::uint64_t pack_seed(std::uint32_t subject, long diag) {
  return (static_cast<std::uint64_t>(subject) << 32) |
         static_cast<std::uint32_t>(static_cast<long long>(diag) + kDiagBias);
}
inline std::uint32_t seed_subject(std::uint64_t key) {
  return static_cast<std::uint32_t>(key >> 32);
}
inline long seed_diag(std::uint64_t key) {
  return static_cast<long>(static_cast<long long>(key & 0xffffffffULL) -
                           static_cast<long long>(kDiagBias));
}

/// Per-thread scratch reused across search() calls: frame translations,
/// the reverse-complement buffer, the word-hit list and the flat seed
/// accumulator. Steady-state searches allocate nothing here.
struct SearchScratch {
  std::vector<bio::FrameTranslation> frames;
  std::string rc;
  std::vector<WordHit> word_hits;
  std::vector<std::uint64_t> seeds;
  std::vector<std::pair<std::size_t, long>> diags;  // (count, diagonal)
  PreparedSeq frame_query;  ///< current frame protein, encoded once
};

SearchScratch& search_scratch() {
  thread_local SearchScratch scratch;
  return scratch;
}

/// Converts a frame-protein residue range to 1-based nucleotide query
/// coordinates on the forward strand (BLASTX convention: reverse-strand
/// hits have qstart > qend).
void residue_range_to_nucleotides(int frame, std::size_t q_begin, std::size_t q_end,
                                  std::size_t dna_length, long& qstart, long& qend) {
  if (frame > 0) {
    qstart = static_cast<long>(bio::frame_to_forward_offset(frame, q_begin, dna_length)) + 1;
    qend = static_cast<long>(bio::frame_to_forward_offset(frame, q_end - 1, dna_length)) + 3;
  } else {
    // First codon of the alignment sits at the highest forward coordinates.
    const std::size_t first = bio::frame_to_forward_offset(frame, q_begin, dna_length);
    const std::size_t last = bio::frame_to_forward_offset(frame, q_end - 1, dna_length);
    qstart = static_cast<long>(first) + 3;  // 1-based top base of first codon
    qend = static_cast<long>(last) + 1;     // 1-based bottom base of last codon
  }
}

}  // namespace

BlastxSearch::BlastxSearch(std::vector<bio::SeqRecord> proteins, BlastxParams params)
    : proteins_(std::move(proteins)),
      params_(params),
      index_(proteins_, params.word_size, params.neighbor_threshold) {
  if (params_.min_seeds_per_diagonal == 0) {
    throw common::InvalidArgument("min_seeds_per_diagonal must be >= 1");
  }
  if (params_.band == 0) throw common::InvalidArgument("band must be >= 1");
  const ScoringProfile& profile = ScoringProfile::protein_blosum62();
  prepared_subjects_.resize(proteins_.size());
  for (std::size_t i = 0; i < proteins_.size(); ++i) {
    prepared_subjects_[i].assign(proteins_[i].seq, profile);
  }
}

std::vector<TabularHit> BlastxSearch::search(const bio::SeqRecord& transcript) const {
  std::vector<TabularHit> hits;
  const auto k = static_cast<std::size_t>(params_.word_size);
  const double db_residues = static_cast<double>(index_.total_residues());
  const ScoringProfile& profile = ScoringProfile::protein_blosum62();
  SearchScratch& scratch = search_scratch();

  // Best hit per subject across all frames (optional collapse).
  std::unordered_map<std::uint32_t, TabularHit> best_per_subject;

  bio::six_frame_translate(transcript.seq, scratch.frames, scratch.rc);
  for (const auto& ft : scratch.frames) {
    const std::string& fp = ft.protein;
    if (fp.size() < k) continue;
    // Encode the frame protein once; every candidate diagonal of every
    // subject below reuses it.
    scratch.frame_query.assign(fp, profile);

    // Collect word seeds as packed (subject, diagonal) keys — a flat
    // append + sort + run-length scan instead of a node-based map insert
    // per word hit.
    std::vector<std::uint64_t>& seeds = scratch.seeds;
    seeds.clear();
    std::vector<WordHit>& word_hits = scratch.word_hits;
    for (std::size_t q_pos = 0; q_pos + k <= fp.size(); ++q_pos) {
      word_hits.clear();
      index_.neighborhood(std::string_view(fp).substr(q_pos, k), word_hits);
      for (const WordHit& wh : word_hits) {
        const long diag = static_cast<long>(q_pos) - static_cast<long>(wh.position);
        seeds.push_back(pack_seed(wh.subject, diag));
      }
    }
    std::sort(seeds.begin(), seeds.end());

    // Walk runs of equal keys; a subject's candidate diagonals arrive in
    // ascending-diagonal order, exactly as the old map iteration fed them.
    std::size_t run = 0;
    while (run < seeds.size()) {
      const std::uint32_t subject = seed_subject(seeds[run]);
      std::vector<std::pair<std::size_t, long>>& diags = scratch.diags;
      diags.clear();
      while (run < seeds.size() && seed_subject(seeds[run]) == subject) {
        const std::uint64_t key = seeds[run];
        std::size_t count = 0;
        while (run < seeds.size() && seeds[run] == key) {
          ++count;
          ++run;
        }
        if (count >= params_.min_seeds_per_diagonal) {
          diags.push_back({count, seed_diag(key)});
        }
      }
      if (diags.empty()) continue;

      std::sort(diags.begin(), diags.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      if (diags.size() > params_.max_diagonals_per_subject) {
        diags.resize(params_.max_diagonals_per_subject);
      }
      // Score-only pass over the candidates; only the winner (first
      // strict maximum, matching the old strict-greater update) pays for
      // a traceback. Scores are identical between the two kernels, so
      // the chosen alignment is too.
      int best_score = 0;
      long best_diag = 0;
      bool have_best = false;
      for (const auto& [count, diag] : diags) {
        const ScoreOnlyResult so =
            banded_score_only(scratch.frame_query, prepared_subjects_[subject],
                              profile, diag, params_.band, params_.gaps);
        if (so.score > best_score) {
          best_score = so.score;
          best_diag = diag;
          have_best = true;
        }
      }
      if (!have_best) continue;
      const LocalAlignment best_aln =
          banded_align(scratch.frame_query, prepared_subjects_[subject], profile,
                       best_diag, params_.band, params_.gaps);
      if (static_cast<long>(best_aln.alignment_length()) < params_.min_alignment_length) {
        continue;
      }
      const double bits = bit_score(best_aln.score, params_.ka);
      const double evalue =
          e_value(bits, static_cast<double>(transcript.seq.size()) / 3.0, db_residues);
      if (evalue > params_.evalue_cutoff) continue;

      TabularHit hit;
      hit.qseqid = transcript.id;
      hit.sseqid = proteins_[subject].id;
      hit.pident = best_aln.percent_identity();
      hit.length = static_cast<long>(best_aln.alignment_length());
      hit.mismatch = static_cast<long>(best_aln.mismatches);
      hit.gapopen = static_cast<long>(best_aln.gap_opens);
      residue_range_to_nucleotides(ft.frame, best_aln.q_begin, best_aln.q_end,
                                   transcript.seq.size(), hit.qstart, hit.qend);
      hit.sstart = static_cast<long>(best_aln.s_begin) + 1;
      hit.send = static_cast<long>(best_aln.s_end);
      hit.evalue = evalue;
      hit.bitscore = bits;

      if (params_.best_hit_per_subject) {
        auto [it, inserted] = best_per_subject.try_emplace(subject, hit);
        if (!inserted && hit.bitscore > it->second.bitscore) it->second = hit;
      } else {
        hits.push_back(std::move(hit));
      }
    }
  }

  if (params_.best_hit_per_subject) {
    hits.reserve(best_per_subject.size());
    for (auto& [subject, hit] : best_per_subject) hits.push_back(std::move(hit));
  }
  std::sort(hits.begin(), hits.end(), [](const TabularHit& a, const TabularHit& b) {
    if (a.bitscore != b.bitscore) return a.bitscore > b.bitscore;
    return a.sseqid < b.sseqid;
  });
  return hits;
}

std::vector<TabularHit> BlastxSearch::search_all(
    const std::vector<bio::SeqRecord>& transcripts, common::ThreadPool* pool) const {
  if (pool == nullptr || transcripts.size() < 2) {
    std::vector<TabularHit> all;
    for (const auto& t : transcripts) {
      auto hits = search(t);
      all.insert(all.end(), std::make_move_iterator(hits.begin()),
                 std::make_move_iterator(hits.end()));
    }
    return all;
  }

  // Work-stealing fan-out, one transcript per chunk: per-transcript slots
  // keep the concatenation in input order for any worker count, stealing
  // absorbs uneven transcripts, and the pool submits one task per worker
  // instead of one packaged_task + future per chunk.
  std::vector<std::vector<TabularHit>> per_transcript(transcripts.size());
  pool->parallel_for(transcripts.size(), /*chunk=*/1,
                     [&](std::size_t begin, std::size_t end, std::size_t) {
                       for (std::size_t i = begin; i < end; ++i) {
                         per_transcript[i] = search(transcripts[i]);
                       }
                     });
  std::vector<TabularHit> all;
  for (auto& hits : per_transcript) {
    all.insert(all.end(), std::make_move_iterator(hits.begin()),
               std::make_move_iterator(hits.end()));
  }
  return all;
}

}  // namespace pga::align
