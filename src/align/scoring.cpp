#include "align/scoring.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cmath>

#include "bio/alphabet.hpp"

namespace pga::align {

namespace {

// Standard BLOSUM62, rows/columns in kAminoAcids order (ARNDCQEGHILKMFPSTWYV).
constexpr std::array<std::array<int, 20>, 20> kBlosum62 = {{
    //        A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
    /*A*/ {{  4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0}},
    /*R*/ {{ -1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3}},
    /*N*/ {{ -2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3}},
    /*D*/ {{ -2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3}},
    /*C*/ {{  0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1}},
    /*Q*/ {{ -1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2}},
    /*E*/ {{ -1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2}},
    /*G*/ {{  0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3}},
    /*H*/ {{ -2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3}},
    /*I*/ {{ -1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3}},
    /*L*/ {{ -1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1}},
    /*K*/ {{ -1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2}},
    /*M*/ {{ -1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1}},
    /*F*/ {{ -2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1}},
    /*P*/ {{ -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2}},
    /*S*/ {{  1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2}},
    /*T*/ {{  0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0}},
    /*W*/ {{ -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3}},
    /*Y*/ {{ -2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1}},
    /*V*/ {{  0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4}},
}};

}  // namespace

int blosum62(char a, char b) {
  const char ua = static_cast<char>(std::toupper(static_cast<unsigned char>(a)));
  const char ub = static_cast<char>(std::toupper(static_cast<unsigned char>(b)));
  if (ua == '*' || ub == '*') return (ua == '*' && ub == '*') ? 1 : -4;
  const int ia = bio::amino_index(ua);
  const int ib = bio::amino_index(ub);
  if (ia < 0 || ib < 0) return -1;  // X or anything nonstandard
  return kBlosum62[static_cast<std::size_t>(ia)][static_cast<std::size_t>(ib)];
}

double bit_score(int raw_score, const KarlinAltschul& ka) {
  return (ka.lambda * raw_score - std::log(ka.k)) / std::log(2.0);
}

double e_value(double bits, double query_residues, double db_residues) {
  return query_residues * db_residues * std::pow(2.0, -bits);
}

int word_score(std::string_view a, std::string_view b) {
  int total = 0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) total += blosum62(a[i], b[i]);
  return total;
}

const ScoringProfile& ScoringProfile::protein_blosum62() {
  static const ScoringProfile profile = [] {
    ScoringProfile p;
    // Codes: 0..19 residues in kAminoAcids order, 20 = '*', 21 = other.
    constexpr std::uint8_t kStopCode = 20;
    constexpr std::uint8_t kOtherCode = 21;
    for (int c = 0; c < 256; ++c) {
      const char u =
          static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      if (u == '*') {
        p.encode_[static_cast<std::size_t>(c)] = kStopCode;
        continue;
      }
      const int idx = bio::amino_index(u);
      p.encode_[static_cast<std::size_t>(c)] =
          idx >= 0 ? static_cast<std::uint8_t>(idx) : kOtherCode;
    }
    // Score every code pair through a representative character, so the
    // table agrees with blosum62() by construction.
    const auto rep = [](std::uint8_t code) {
      if (code == kStopCode) return '*';
      if (code < 20) return bio::kAminoAcids[code];
      return 'X';
    };
    for (std::uint8_t a = 0; a <= kOtherCode; ++a) {
      for (std::uint8_t b = 0; b <= kOtherCode; ++b) {
        p.table_[(static_cast<std::size_t>(a) << 5) | b] =
            blosum62(rep(a), rep(b));
      }
    }
    return p;
  }();
  return profile;
}

ScoringProfile ScoringProfile::dna(int match, int mismatch) {
  ScoringProfile p;
  // Codes 0..9 cover ACGTN in both cases (char-exact identity, like the
  // old `a == b` comparison); 31 is the catch-all.
  constexpr std::string_view kKnown = "ACGTacgtNn";
  constexpr std::uint8_t kOtherCode = 31;
  p.encode_.fill(kOtherCode);
  for (std::size_t i = 0; i < kKnown.size(); ++i) {
    p.encode_[static_cast<unsigned char>(kKnown[i])] =
        static_cast<std::uint8_t>(i);
  }
  for (std::size_t a = 0; a < kCodes; ++a) {
    for (std::size_t b = 0; b < kCodes; ++b) {
      p.table_[(a << 5) | b] =
          (a == b && a != kOtherCode) ? match : mismatch;
    }
  }
  return p;
}

void ScoringProfile::encode(std::string_view seq,
                            std::vector<std::uint8_t>& out) const {
  out.resize(seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    out[i] = encode_[static_cast<unsigned char>(seq[i])];
  }
}

void PreparedSeq::assign(std::string_view seq, const ScoringProfile& profile) {
  chars_ = seq;
  codes_.resize(seq.size() + ScoringProfile::kCodePadding);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    codes_[i] = profile.encode_char(seq[i]);
  }
  std::fill(codes_.begin() + static_cast<std::ptrdiff_t>(seq.size()),
            codes_.end(), std::uint8_t{0});
}

}  // namespace pga::align
