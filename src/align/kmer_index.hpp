// Protein k-mer index with BLAST-style neighborhood word seeding.
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <string_view>
#include <vector>

#include "bio/sequence.hpp"

namespace pga::align {

/// Location of one word occurrence in the database.
struct WordHit {
  std::uint32_t subject;   ///< index into the indexed record vector
  std::uint32_t position;  ///< 0-based residue offset within the subject
};

/// Indexes every length-k word of a protein database and answers
/// neighborhood queries: all occurrences of database words scoring at
/// least `threshold` against a query word under BLOSUM62 (BLAST's "T"
/// parameter). Words containing nonstandard residues are skipped.
///
/// Thread-safe for concurrent queries; neighborhood rows are computed
/// lazily per distinct query word and memoized under a shared_mutex.
class KmerIndex {
 public:
  /// Builds the index. k must be in [2, 5] (20^k table entries).
  KmerIndex(const std::vector<bio::SeqRecord>& proteins, int k, int threshold);

  /// Exact-word occurrences of `word` (length k, standard residues only;
  /// returns empty otherwise).
  [[nodiscard]] const std::vector<WordHit>& exact(std::string_view word) const;

  /// Appends occurrences of all database words in the BLOSUM62
  /// neighborhood of `word` (score >= threshold, including the word itself
  /// when it qualifies) to `out`.
  void neighborhood(std::string_view word, std::vector<WordHit>& out) const;

  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] int threshold() const { return threshold_; }
  /// Total residues indexed (database size for E-value computation).
  [[nodiscard]] std::uint64_t total_residues() const { return total_residues_; }
  [[nodiscard]] std::size_t subjects() const { return subject_count_; }

 private:
  /// Encodes a word as sum amino_index * 20^i, or -1 if any residue is
  /// nonstandard.
  [[nodiscard]] long encode(std::string_view word) const;

  /// Occupied word codes whose word scores >= threshold against `code`'s word.
  [[nodiscard]] std::vector<std::uint32_t> compute_neighbors(std::uint32_t code) const;

  int k_;
  int threshold_;
  std::size_t table_size_;
  std::size_t subject_count_ = 0;
  std::uint64_t total_residues_ = 0;
  std::vector<std::vector<WordHit>> table_;    // word code -> occurrences
  std::vector<std::uint32_t> occupied_codes_;  // codes with any occurrence
  /// Residues of each occupied code (k chars per entry, parallel to
  /// occupied_codes_) — decoded once at build so neighborhood scans don't
  /// re-derive candidate words per query.
  std::vector<char> occupied_residues_;

  mutable std::shared_mutex cache_mutex_;
  mutable std::vector<std::vector<std::uint32_t>> neighbor_cache_;
  mutable std::vector<bool> neighbor_cached_;
};

}  // namespace pga::align
