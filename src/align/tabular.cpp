#include "align/tabular.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace pga::align {

using common::ParseError;

std::string format_tabular(const TabularHit& hit) {
  std::ostringstream os;
  os << hit.qseqid << '\t' << hit.sseqid << '\t'
     << common::format_fixed(hit.pident, 3) << '\t' << hit.length << '\t'
     << hit.mismatch << '\t' << hit.gapopen << '\t' << hit.qstart << '\t'
     << hit.qend << '\t' << hit.sstart << '\t' << hit.send << '\t';
  // E-values print in scientific form like BLAST ("1e-30"), bit scores fixed.
  os.setf(std::ios::scientific);
  os.precision(2);
  os << hit.evalue << '\t';
  os.unsetf(std::ios::scientific);
  os << common::format_fixed(hit.bitscore, 1);
  return os.str();
}

TabularHit parse_tabular_line(const std::string& line) {
  const auto fields = common::split(line, '\t');
  if (fields.size() < 12) {
    throw ParseError("tabular line needs 12 columns, got " +
                     std::to_string(fields.size()) + ": " + line);
  }
  TabularHit hit;
  hit.qseqid = fields[0];
  hit.sseqid = fields[1];
  hit.pident = common::parse_double(fields[2]);
  hit.length = common::parse_long(fields[3]);
  hit.mismatch = common::parse_long(fields[4]);
  hit.gapopen = common::parse_long(fields[5]);
  hit.qstart = common::parse_long(fields[6]);
  hit.qend = common::parse_long(fields[7]);
  hit.sstart = common::parse_long(fields[8]);
  hit.send = common::parse_long(fields[9]);
  hit.evalue = common::parse_double(fields[10]);
  hit.bitscore = common::parse_double(fields[11]);
  if (hit.qseqid.empty() || hit.sseqid.empty()) {
    throw ParseError("tabular line has empty sequence id: " + line);
  }
  return hit;
}

void write_tabular(std::ostream& out, const std::vector<TabularHit>& hits) {
  for (const auto& hit : hits) out << format_tabular(hit) << '\n';
}

void write_tabular_file(const std::filesystem::path& path,
                        const std::vector<TabularHit>& hits) {
  std::ofstream out(path);
  if (!out) throw common::IoError("cannot write tabular file: " + path.string());
  write_tabular(out, hits);
  if (!out) throw common::IoError("short write to tabular file: " + path.string());
}

namespace {
std::vector<TabularHit> parse_stream(std::istream& in) {
  std::vector<TabularHit> hits;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (common::trim(line).empty() || line[0] == '#') continue;
    hits.push_back(parse_tabular_line(line));
  }
  return hits;
}
}  // namespace

std::vector<TabularHit> read_tabular_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw common::IoError("cannot open tabular file: " + path.string());
  return parse_stream(in);
}

std::vector<TabularHit> parse_tabular(const std::string& text) {
  std::istringstream in(text);
  return parse_stream(in);
}

}  // namespace pga::align
