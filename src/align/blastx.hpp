// BLASTX-style translated search: nucleotide queries against a protein
// database via 6-frame translation, word seeding and banded gapped
// extension. Produces the tabular hits blast2cap3 consumes.
#pragma once

#include <cstddef>
#include <vector>

#include "align/kmer_index.hpp"
#include "align/scoring.hpp"
#include "align/tabular.hpp"
#include "bio/sequence.hpp"
#include "common/thread_pool.hpp"

namespace pga::align {

/// Search tuning. Defaults suit the synthetic transcriptome: high-identity
/// hits against family proteins.
struct BlastxParams {
  int word_size = 3;             ///< seed word length (BLAST "W")
  int neighbor_threshold = 12;   ///< neighborhood score cutoff (BLAST "T")
  std::size_t min_seeds_per_diagonal = 2;  ///< two-hit heuristic
  std::size_t max_diagonals_per_subject = 4;  ///< extensions attempted per subject
  std::size_t band = 12;         ///< half-width of the extension band (residues)
  GapPenalties gaps{};           ///< affine gap costs (11/1 default)
  double evalue_cutoff = 1e-6;   ///< discard hits above this E-value
  long min_alignment_length = 20;  ///< discard shorter alignments (residues)
  KarlinAltschul ka{};           ///< statistics parameters
  bool best_hit_per_subject = true;  ///< keep only the best HSP per (q,s) pair
};

/// A reusable searcher over one protein database. Thread-safe: search()
/// may be called concurrently from many threads.
class BlastxSearch {
 public:
  BlastxSearch(std::vector<bio::SeqRecord> proteins, BlastxParams params = {});

  /// Searches one transcript; hits are sorted by descending bit score.
  [[nodiscard]] std::vector<TabularHit> search(const bio::SeqRecord& transcript) const;

  /// Searches many transcripts, optionally fanning out on a thread pool.
  /// Results are concatenated in input order regardless of scheduling.
  [[nodiscard]] std::vector<TabularHit> search_all(
      const std::vector<bio::SeqRecord>& transcripts,
      common::ThreadPool* pool = nullptr) const;

  [[nodiscard]] const std::vector<bio::SeqRecord>& proteins() const { return proteins_; }
  [[nodiscard]] const BlastxParams& params() const { return params_; }

 private:
  std::vector<bio::SeqRecord> proteins_;
  BlastxParams params_;
  KmerIndex index_;
  /// Each database protein encoded once at construction (views into
  /// proteins_, which never changes afterwards); every search() reuses
  /// them instead of re-encoding the subject per (subject, diagonal).
  std::vector<PreparedSeq> prepared_subjects_;
};

}  // namespace pga::align
