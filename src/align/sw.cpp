#include "align/sw.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "align/simd.hpp"
#include "align/sw_internal.hpp"
#include "common/error.hpp"

namespace pga::align {

namespace {

using detail::DpWorkspace;
using detail::KernelParams;
using detail::KernelSummary;
using detail::kDiagFromM;
using detail::kDiagFromX;
using detail::kMDirMask;
using detail::kNegInf;
using detail::kXOpenBit;
using detail::kYOpenBit;
using detail::row_hi;
using detail::row_lo;

// ---------------------------------------------------------------------------
// DP work counters: one cache-line-aligned node per thread, linked into a
// process-wide list and merged on read. Each node is written only by its
// owning thread (relaxed atomics keep the reads race-free), so parallel
// alignment runs stop bouncing a shared counter cache line — the per-item
// fetch_add contention the old three process-global atomics paid on every
// kernel invocation from every worker.
struct alignas(64) CounterNode {
  std::atomic<std::uint64_t> cells{0};
  std::atomic<std::uint64_t> tracebacks{0};
  std::atomic<std::uint64_t> score_only{0};
  CounterNode* next = nullptr;
};

std::atomic<CounterNode*> g_counter_head{nullptr};

CounterNode& local_counters() {
  // Nodes are intentionally never freed: a worker thread's tallies remain
  // visible in dp_counters() after the thread (or its pool) is gone. One
  // 64-byte node per kernel-touching thread over the process lifetime.
  thread_local CounterNode* node = [] {
    auto* n = new CounterNode;
    CounterNode* head = g_counter_head.load(std::memory_order_relaxed);
    do {
      n->next = head;
    } while (!g_counter_head.compare_exchange_weak(
        head, n, std::memory_order_release, std::memory_order_relaxed));
    return n;
  }();
  return *node;
}

DpWorkspace& workspace() {
  thread_local DpWorkspace ws;
  return ws;
}

// ---------------------------------------------------------------------------
// Scalar band-compressed Gotoh kernel — the mandatory fallback and the
// reference implementation the golden fixtures pin. With Traceback, fills
// ws.tb (tb_width bytes per row); cell values are identical to the classic
// full-matrix recurrence: neighbours outside the band read as M = 0,
// X = Y = -inf, exactly the values the full layout held there.
template <bool Traceback>
KernelSummary scalar_kernel(const KernelParams& kp, DpWorkspace& ws) {
  const long n = kp.n;
  const long m = kp.m;
  const long diagonal = kp.diagonal;
  const long band = kp.band;

  const long w = detail::tb_width(m, band);
  const auto width = static_cast<std::size_t>(w);
  for (auto& row : ws.band_rows) row.resize(width);
  if (Traceback) ws.tb.resize(static_cast<std::size_t>(n) * width);

  int* m_prev = ws.band_rows[0].data();
  int* x_prev = ws.band_rows[1].data();
  int* y_prev = ws.band_rows[2].data();
  int* m_cur = ws.band_rows[3].data();
  int* x_cur = ws.band_rows[4].data();
  int* y_cur = ws.band_rows[5].data();

  const int open_cost = kp.open_cost;
  const int extend = kp.extend;
  KernelSummary res;

  long lo_prev = 1, hi_prev = 0;  // row 0 holds only defaults
  for (long i = 1; i <= n; ++i) {
    const long lo = row_lo(i, diagonal, band);
    const long hi = row_hi(i, diagonal, band, m);
    if (lo > hi) {
      lo_prev = 1;
      hi_prev = 0;  // next row reads pure defaults
      continue;
    }
    res.cells += static_cast<std::uint64_t>(hi - lo + 1);
    const int* score_row = kp.profile->row(kp.q_codes[i - 1]);
    // Reads from the previous row; out-of-band cells held M=0, X=Y=-inf.
    const auto prev_m_at = [&](long j) {
      return (j >= lo_prev && j <= hi_prev) ? m_prev[j - lo_prev] : 0;
    };
    const auto prev_x_at = [&](long j) {
      return (j >= lo_prev && j <= hi_prev) ? x_prev[j - lo_prev] : kNegInf;
    };
    const auto prev_y_at = [&](long j) {
      return (j >= lo_prev && j <= hi_prev) ? y_prev[j - lo_prev] : kNegInf;
    };
    int m_left = 0;        // M at (i, lo-1): column 0 or out-of-band, = 0
    int x_left = kNegInf;  // X at (i, lo-1)
    unsigned char* tb_row =
        Traceback ? ws.tb.data() + static_cast<std::size_t>(i - 1) * width : nullptr;
    for (long j = lo; j <= hi; ++j) {
      const int sub = score_row[kp.s_codes[j - 1]];

      // Substitution state.
      int from = 0;
      unsigned char dir = 0;
      const int m_diag = prev_m_at(j - 1);
      const int x_diag = prev_x_at(j - 1);
      const int y_diag = prev_y_at(j - 1);
      if (m_diag > from) { from = m_diag; dir = 1; }
      if (x_diag > from) { from = x_diag; dir = 2; }
      if (y_diag > from) { from = y_diag; dir = 3; }
      // dir == 0 means the local alignment starts at this cell.
      int m_val = from + sub;
      unsigned char tb_byte = dir;
      if (m_val <= 0) {
        m_val = 0;
        tb_byte = 0;
      }

      // Gap in query (moves left along subject).
      const int x_open = m_left - open_cost;
      const int x_ext = x_left - extend;
      int x_val;
      if (x_open >= x_ext) {
        x_val = x_open;
        tb_byte |= kXOpenBit;
      } else {
        x_val = x_ext;
      }

      // Gap in subject (moves up along query).
      const int y_open = prev_m_at(j) - open_cost;
      const int y_ext = prev_y_at(j) - extend;
      int y_val;
      if (y_open >= y_ext) {
        y_val = y_open;
        tb_byte |= kYOpenBit;
      } else {
        y_val = y_ext;
      }

      m_cur[j - lo] = m_val;
      x_cur[j - lo] = x_val;
      y_cur[j - lo] = y_val;
      if (Traceback) tb_row[j - lo] = tb_byte;
      if (m_val > res.best) {
        res.best = m_val;
        res.best_i = i;
        res.best_j = j;
      }
      m_left = m_val;
      x_left = x_val;
    }
    std::swap(m_prev, m_cur);
    std::swap(x_prev, x_cur);
    std::swap(y_prev, y_cur);
    lo_prev = lo;
    hi_prev = hi;
  }
  return res;
}

// ---------------------------------------------------------------------------
// Dispatch: PGA_SW_DISPATCH env knob, test override, CPU detection.

std::atomic<int> g_level_override{-1};

SimdLevel env_level() {
  static const SimdLevel level = [] {
    if (const char* env = std::getenv("PGA_SW_DISPATCH")) {
      if (std::strcmp(env, "scalar") == 0) return SimdLevel::kScalar;
      if (std::strcmp(env, "avx2") == 0) {
        return cpu_supports_avx2() ? SimdLevel::kAvx2 : SimdLevel::kScalar;
      }
      // "auto" and anything unrecognized fall through to detection.
    }
    return cpu_supports_avx2() ? SimdLevel::kAvx2 : SimdLevel::kScalar;
  }();
  return level;
}

// ---------------------------------------------------------------------------
// Shared entry: run the dispatched kernel, update this thread's counters,
// then (for traceback runs) walk the packed band both kernels fill.

template <bool Traceback>
void run_banded(std::string_view q, const std::uint8_t* q_codes,
                std::string_view s, const std::uint8_t* s_codes,
                const ScoringProfile& profile, const GapPenalties& gaps,
                long diagonal, std::size_t band_in, LocalAlignment* aln,
                ScoreOnlyResult* score_out) {
  const long n = static_cast<long>(q.size());
  const long m = static_cast<long>(s.size());
  if (n == 0 || m == 0) return;

  KernelParams kp;
  kp.q_codes = q_codes;
  kp.s_codes = s_codes;
  kp.n = n;
  kp.m = m;
  kp.profile = &profile;
  kp.open_cost = gaps.open + gaps.extend;
  kp.extend = gaps.extend;
  kp.diagonal = diagonal;
  // Wider bands add no reachable cells.
  kp.band = static_cast<long>(
      std::min<std::size_t>(band_in, static_cast<std::size_t>(n + m)));

  DpWorkspace& ws = workspace();
  const long width = detail::tb_width(m, kp.band);
  const bool use_avx2 = width >= 8 && active_simd_level() == SimdLevel::kAvx2;
  const KernelSummary res = use_avx2
                                ? detail::banded_kernel_avx2(kp, ws, Traceback)
                                : scalar_kernel<Traceback>(kp, ws);

  CounterNode& counters = local_counters();
  counters.cells.fetch_add(res.cells, std::memory_order_relaxed);
  if (Traceback) {
    counters.tracebacks.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters.score_only.fetch_add(1, std::memory_order_relaxed);
  }

  if (res.best <= 0) return;

  if (!Traceback) {
    score_out->score = res.best;
    score_out->q_end = static_cast<std::size_t>(res.best_i);
    score_out->s_end = static_cast<std::size_t>(res.best_j);
    return;
  }

  // Traceback from the best substitution cell. Out-of-band reads return
  // byte 0 — M stops, X/Y extend — matching the defaults the full-matrix
  // layout kept in its unvisited cells.
  aln->score = res.best;
  aln->q_end = static_cast<std::size_t>(res.best_i);
  aln->s_end = static_cast<std::size_t>(res.best_j);
  long i = res.best_i, j = res.best_j;
  char state = 'M';
  while (i > 0 && j > 0) {
    const long lo = row_lo(i, diagonal, kp.band);
    const long hi = row_hi(i, diagonal, kp.band, m);
    const unsigned char tb_byte =
        (j >= lo && j <= hi)
            ? ws.tb[static_cast<std::size_t>(i - 1) * static_cast<std::size_t>(width) +
                    static_cast<std::size_t>(j - lo)]
            : 0;
    if (state == 'M') {
      if (q[static_cast<std::size_t>(i - 1)] == s[static_cast<std::size_t>(j - 1)]) {
        ++aln->matches;
      } else {
        ++aln->mismatches;
      }
      const unsigned char dir = tb_byte & kMDirMask;
      --i;
      --j;
      if (dir == 0) break;
      if (dir == kDiagFromM) state = 'M';
      else if (dir == kDiagFromX) state = 'X';
      else state = 'Y';
    } else if (state == 'X') {
      ++aln->gap_residues;
      --j;
      if (tb_byte & kXOpenBit) {
        ++aln->gap_opens;
        state = 'M';
      }
    } else {  // 'Y'
      ++aln->gap_residues;
      --i;
      if (tb_byte & kYOpenBit) {
        ++aln->gap_opens;
        state = 'M';
      }
    }
  }
  aln->q_begin = static_cast<std::size_t>(i);
  aln->s_begin = static_cast<std::size_t>(j);
}

/// Per-thread PreparedSeq scratch for the string_view entry points: the
/// encode-once buffers are reused across calls, so the steady-state
/// kernel still allocates nothing.
struct PreparedScratch {
  PreparedSeq query, subject;
};

PreparedScratch& prepared_scratch() {
  thread_local PreparedScratch scratch;
  return scratch;
}

/// Thread-cached DNA profile: rebuilding costs a 1.3 KB table fill, but
/// the overlap phase calls the kernel per candidate pair with constant
/// (match, mismatch), so caching avoids even that.
const ScoringProfile& dna_profile(int match, int mismatch) {
  thread_local int cached_match = std::numeric_limits<int>::min();
  thread_local int cached_mismatch = 0;
  thread_local ScoringProfile profile = ScoringProfile::dna(1, -2);
  if (cached_match != match || cached_mismatch != mismatch) {
    profile = ScoringProfile::dna(match, mismatch);
    cached_match = match;
    cached_mismatch = mismatch;
  }
  return profile;
}

void check_dna_params(const char* who, int match, int mismatch) {
  if (match <= 0 || mismatch >= 0) {
    throw common::InvalidArgument(std::string(who) +
                                  ": need match > 0 > mismatch");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Dispatch control (declared in align/simd.hpp).

bool cpu_supports_avx2() {
#if PGA_HAVE_AVX2_KERNEL
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported && detail::avx2_kernel_compiled();
#else
  return false;
#endif
}

SimdLevel active_simd_level() {
  const int forced = g_level_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdLevel>(forced);
  return env_level();
}

const char* simd_level_name(SimdLevel level) {
  return level == SimdLevel::kAvx2 ? "avx2" : "scalar";
}

const char* active_simd_isa() { return simd_level_name(active_simd_level()); }

void set_simd_level(SimdLevel level) {
  if (level == SimdLevel::kAvx2 && !cpu_supports_avx2()) {
    level = SimdLevel::kScalar;
  }
  g_level_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

void reset_simd_level() {
  g_level_override.store(-1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Public entry points.

LocalAlignment banded_align(const PreparedSeq& query, const PreparedSeq& subject,
                            const ScoringProfile& profile, long diagonal,
                            std::size_t band, const GapPenalties& gaps) {
  LocalAlignment aln;
  run_banded<true>(query.chars(), query.codes(), subject.chars(), subject.codes(),
                   profile, gaps, diagonal, band, &aln, nullptr);
  return aln;
}

ScoreOnlyResult banded_score_only(const PreparedSeq& query,
                                  const PreparedSeq& subject,
                                  const ScoringProfile& profile, long diagonal,
                                  std::size_t band, const GapPenalties& gaps) {
  ScoreOnlyResult result;
  run_banded<false>(query.chars(), query.codes(), subject.chars(), subject.codes(),
                    profile, gaps, diagonal, band, nullptr, &result);
  return result;
}

LocalAlignment banded_align(std::string_view query, std::string_view subject,
                            const ScoringProfile& profile, long diagonal,
                            std::size_t band, const GapPenalties& gaps) {
  PreparedScratch& scratch = prepared_scratch();
  scratch.query.assign(query, profile);
  scratch.subject.assign(subject, profile);
  return banded_align(scratch.query, scratch.subject, profile, diagonal, band,
                      gaps);
}

ScoreOnlyResult banded_score_only(std::string_view query, std::string_view subject,
                                  const ScoringProfile& profile, long diagonal,
                                  std::size_t band, const GapPenalties& gaps) {
  PreparedScratch& scratch = prepared_scratch();
  scratch.query.assign(query, profile);
  scratch.subject.assign(subject, profile);
  return banded_score_only(scratch.query, scratch.subject, profile, diagonal,
                           band, gaps);
}

ScoreOnlyResult banded_score_only_dna(std::string_view query,
                                      std::string_view subject, long diagonal,
                                      std::size_t band, int match, int mismatch,
                                      const GapPenalties& gaps) {
  check_dna_params("banded_score_only_dna", match, mismatch);
  return banded_score_only(query, subject, dna_profile(match, mismatch), diagonal,
                           band, gaps);
}

LocalAlignment smith_waterman(std::string_view query, std::string_view subject,
                              const GapPenalties& gaps) {
  return banded_align(query, subject, ScoringProfile::protein_blosum62(),
                      /*diagonal=*/0, query.size() + subject.size() + 2, gaps);
}

LocalAlignment banded_smith_waterman(std::string_view query, std::string_view subject,
                                     long diagonal, std::size_t band,
                                     const GapPenalties& gaps) {
  return banded_align(query, subject, ScoringProfile::protein_blosum62(), diagonal,
                      band, gaps);
}

LocalAlignment smith_waterman_dna(std::string_view query, std::string_view subject,
                                  int match, int mismatch, const GapPenalties& gaps) {
  check_dna_params("smith_waterman_dna", match, mismatch);
  return banded_align(query, subject, dna_profile(match, mismatch), /*diagonal=*/0,
                      query.size() + subject.size() + 2, gaps);
}

LocalAlignment banded_smith_waterman_dna(std::string_view query,
                                         std::string_view subject, long diagonal,
                                         std::size_t band, int match, int mismatch,
                                         const GapPenalties& gaps) {
  check_dna_params("banded_smith_waterman_dna", match, mismatch);
  return banded_align(query, subject, dna_profile(match, mismatch), diagonal, band,
                      gaps);
}

DpCounters dp_counters() {
  DpCounters c;
  for (const CounterNode* node = g_counter_head.load(std::memory_order_acquire);
       node != nullptr; node = node->next) {
    c.cells += node->cells.load(std::memory_order_relaxed);
    c.tracebacks += node->tracebacks.load(std::memory_order_relaxed);
    c.score_only += node->score_only.load(std::memory_order_relaxed);
  }
  return c;
}

void reset_dp_counters() {
  for (CounterNode* node = g_counter_head.load(std::memory_order_acquire);
       node != nullptr; node = node->next) {
    node->cells.store(0, std::memory_order_relaxed);
    node->tracebacks.store(0, std::memory_order_relaxed);
    node->score_only.store(0, std::memory_order_relaxed);
  }
}

}  // namespace pga::align
