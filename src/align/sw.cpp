#include "align/sw.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace pga::align {

namespace {

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

// Traceback states, packed one byte per in-band cell:
//   bits 0-1  M-state source (0 = local start, 1 = M, 2 = X, 3 = Y)
//   bit  2    X-state opened a gap here (else extended)
//   bit  3    Y-state opened a gap here (else extended)
constexpr unsigned char kMDirMask = 0x3;
constexpr unsigned char kDiagFromM = 1;
constexpr unsigned char kDiagFromX = 2;
constexpr unsigned char kXOpenBit = 0x4;
constexpr unsigned char kYOpenBit = 0x8;

std::atomic<std::uint64_t> g_cells{0};
std::atomic<std::uint64_t> g_tracebacks{0};
std::atomic<std::uint64_t> g_score_only{0};

/// Reused per-thread DP storage: encoded sequences, six rolling score rows
/// and the packed traceback band. Capacity persists across calls, so the
/// steady-state kernel allocates nothing.
struct Workspace {
  std::vector<std::uint8_t> q_codes, s_codes;
  std::vector<int> rows[6];  // m_prev x_prev y_prev m_cur x_cur y_cur
  std::vector<unsigned char> tb;
};

Workspace& workspace() {
  thread_local Workspace ws;
  return ws;
}

/// The band of row i covers columns [row_lo, row_hi] (1-based, clamped to
/// [1, m]); empty when row_lo > row_hi.
inline long row_lo(long i, long diagonal, long band) {
  return std::max(1L, i - diagonal - band);
}
inline long row_hi(long i, long diagonal, long band, long m) {
  return std::min(m, i - diagonal + band);
}

/// Band-compressed Gotoh kernel. With Traceback, fills ws.tb (W bytes per
/// row) and `out` with the full alignment; without, only the best score
/// and its end cell are produced. Cell values are identical to the
/// classic full-matrix recurrence: neighbours outside the band read as
/// M = 0, X = Y = -inf, exactly the values the full layout held there.
template <bool Traceback>
void gotoh_kernel(std::string_view q, std::string_view s,
                  const ScoringProfile& profile, const GapPenalties& gaps,
                  long diagonal, long band, LocalAlignment* aln,
                  ScoreOnlyResult* score_out) {
  const long n = static_cast<long>(q.size());
  const long m = static_cast<long>(s.size());
  if (n == 0 || m == 0) return;
  band = std::min(band, n + m);  // wider bands add no reachable cells

  Workspace& ws = workspace();
  profile.encode(q, ws.q_codes);
  profile.encode(s, ws.s_codes);

  // Row capacity: a band row never exceeds min(m, 2*band+1) cells.
  const long w = std::min(m, 2 * band + 1);
  const auto width = static_cast<std::size_t>(w);
  for (auto& row : ws.rows) row.resize(width);
  if (Traceback) ws.tb.resize(static_cast<std::size_t>(n) * width);

  int* m_prev = ws.rows[0].data();
  int* x_prev = ws.rows[1].data();
  int* y_prev = ws.rows[2].data();
  int* m_cur = ws.rows[3].data();
  int* x_cur = ws.rows[4].data();
  int* y_cur = ws.rows[5].data();

  const int open_cost = gaps.open + gaps.extend;  // cost of a length-1 gap
  int best = 0;
  long best_i = 0, best_j = 0;
  std::uint64_t cells = 0;

  long lo_prev = 1, hi_prev = 0;  // row 0 holds only defaults
  for (long i = 1; i <= n; ++i) {
    const long lo = row_lo(i, diagonal, band);
    const long hi = row_hi(i, diagonal, band, m);
    if (lo > hi) {
      lo_prev = 1;
      hi_prev = 0;  // next row reads pure defaults
      continue;
    }
    cells += static_cast<std::uint64_t>(hi - lo + 1);
    const int* score_row = profile.row(ws.q_codes[static_cast<std::size_t>(i - 1)]);
    // Reads from the previous row; out-of-band cells held M=0, X=Y=-inf.
    const auto prev_m_at = [&](long j) {
      return (j >= lo_prev && j <= hi_prev) ? m_prev[j - lo_prev] : 0;
    };
    const auto prev_x_at = [&](long j) {
      return (j >= lo_prev && j <= hi_prev) ? x_prev[j - lo_prev] : kNegInf;
    };
    const auto prev_y_at = [&](long j) {
      return (j >= lo_prev && j <= hi_prev) ? y_prev[j - lo_prev] : kNegInf;
    };
    int m_left = 0;        // M at (i, lo-1): column 0 or out-of-band, = 0
    int x_left = kNegInf;  // X at (i, lo-1)
    unsigned char* tb_row =
        Traceback ? ws.tb.data() + static_cast<std::size_t>(i - 1) * width : nullptr;
    for (long j = lo; j <= hi; ++j) {
      const int sub = score_row[ws.s_codes[static_cast<std::size_t>(j - 1)]];

      // Substitution state.
      int from = 0;
      unsigned char dir = 0;
      const int m_diag = prev_m_at(j - 1);
      const int x_diag = prev_x_at(j - 1);
      const int y_diag = prev_y_at(j - 1);
      if (m_diag > from) { from = m_diag; dir = 1; }
      if (x_diag > from) { from = x_diag; dir = 2; }
      if (y_diag > from) { from = y_diag; dir = 3; }
      // dir == 0 means the local alignment starts at this cell.
      int m_val = from + sub;
      unsigned char tb_byte = dir;
      if (m_val <= 0) {
        m_val = 0;
        tb_byte = 0;
      }

      // Gap in query (moves left along subject).
      const int x_open = m_left - open_cost;
      const int x_ext = x_left - gaps.extend;
      int x_val;
      if (x_open >= x_ext) {
        x_val = x_open;
        tb_byte |= kXOpenBit;
      } else {
        x_val = x_ext;
      }

      // Gap in subject (moves up along query).
      const int y_open = prev_m_at(j) - open_cost;
      const int y_ext = prev_y_at(j) - gaps.extend;
      int y_val;
      if (y_open >= y_ext) {
        y_val = y_open;
        tb_byte |= kYOpenBit;
      } else {
        y_val = y_ext;
      }

      m_cur[j - lo] = m_val;
      x_cur[j - lo] = x_val;
      y_cur[j - lo] = y_val;
      if (Traceback) tb_row[j - lo] = tb_byte;
      if (m_val > best) {
        best = m_val;
        best_i = i;
        best_j = j;
      }
      m_left = m_val;
      x_left = x_val;
    }
    std::swap(m_prev, m_cur);
    std::swap(x_prev, x_cur);
    std::swap(y_prev, y_cur);
    lo_prev = lo;
    hi_prev = hi;
  }

  g_cells.fetch_add(cells, std::memory_order_relaxed);
  if (Traceback) {
    g_tracebacks.fetch_add(1, std::memory_order_relaxed);
  } else {
    g_score_only.fetch_add(1, std::memory_order_relaxed);
  }

  if (best <= 0) return;

  if (!Traceback) {
    score_out->score = best;
    score_out->q_end = static_cast<std::size_t>(best_i);
    score_out->s_end = static_cast<std::size_t>(best_j);
    return;
  }

  // Traceback from the best substitution cell. Out-of-band reads return
  // byte 0 — M stops, X/Y extend — matching the defaults the full-matrix
  // layout kept in its unvisited cells.
  aln->score = best;
  aln->q_end = static_cast<std::size_t>(best_i);
  aln->s_end = static_cast<std::size_t>(best_j);
  long i = best_i, j = best_j;
  char state = 'M';
  while (i > 0 && j > 0) {
    const long lo = row_lo(i, diagonal, band);
    const long hi = row_hi(i, diagonal, band, m);
    const unsigned char tb_byte =
        (j >= lo && j <= hi)
            ? ws.tb[static_cast<std::size_t>(i - 1) * width +
                    static_cast<std::size_t>(j - lo)]
            : 0;
    if (state == 'M') {
      if (q[static_cast<std::size_t>(i - 1)] == s[static_cast<std::size_t>(j - 1)]) {
        ++aln->matches;
      } else {
        ++aln->mismatches;
      }
      const unsigned char dir = tb_byte & kMDirMask;
      --i;
      --j;
      if (dir == 0) break;
      if (dir == kDiagFromM) state = 'M';
      else if (dir == kDiagFromX) state = 'X';
      else state = 'Y';
    } else if (state == 'X') {
      ++aln->gap_residues;
      --j;
      if (tb_byte & kXOpenBit) {
        ++aln->gap_opens;
        state = 'M';
      }
    } else {  // 'Y'
      ++aln->gap_residues;
      --i;
      if (tb_byte & kYOpenBit) {
        ++aln->gap_opens;
        state = 'M';
      }
    }
  }
  aln->q_begin = static_cast<std::size_t>(i);
  aln->s_begin = static_cast<std::size_t>(j);
}

/// Thread-cached DNA profile: rebuilding costs a 1.3 KB table fill, but
/// the overlap phase calls the kernel per candidate pair with constant
/// (match, mismatch), so caching avoids even that.
const ScoringProfile& dna_profile(int match, int mismatch) {
  thread_local int cached_match = std::numeric_limits<int>::min();
  thread_local int cached_mismatch = 0;
  thread_local ScoringProfile profile = ScoringProfile::dna(1, -2);
  if (cached_match != match || cached_mismatch != mismatch) {
    profile = ScoringProfile::dna(match, mismatch);
    cached_match = match;
    cached_mismatch = mismatch;
  }
  return profile;
}

void check_dna_params(const char* who, int match, int mismatch) {
  if (match <= 0 || mismatch >= 0) {
    throw common::InvalidArgument(std::string(who) +
                                  ": need match > 0 > mismatch");
  }
}

}  // namespace

LocalAlignment banded_align(std::string_view query, std::string_view subject,
                            const ScoringProfile& profile, long diagonal,
                            std::size_t band, const GapPenalties& gaps) {
  LocalAlignment aln;
  gotoh_kernel<true>(query, subject, profile, gaps, diagonal,
                     static_cast<long>(std::min<std::size_t>(
                         band, query.size() + subject.size() + 1)),
                     &aln, nullptr);
  return aln;
}

ScoreOnlyResult banded_score_only(std::string_view query, std::string_view subject,
                                  const ScoringProfile& profile, long diagonal,
                                  std::size_t band, const GapPenalties& gaps) {
  ScoreOnlyResult result;
  gotoh_kernel<false>(query, subject, profile, gaps, diagonal,
                      static_cast<long>(std::min<std::size_t>(
                          band, query.size() + subject.size() + 1)),
                      nullptr, &result);
  return result;
}

ScoreOnlyResult banded_score_only_dna(std::string_view query,
                                      std::string_view subject, long diagonal,
                                      std::size_t band, int match, int mismatch,
                                      const GapPenalties& gaps) {
  check_dna_params("banded_score_only_dna", match, mismatch);
  return banded_score_only(query, subject, dna_profile(match, mismatch), diagonal,
                           band, gaps);
}

LocalAlignment smith_waterman(std::string_view query, std::string_view subject,
                              const GapPenalties& gaps) {
  return banded_align(query, subject, ScoringProfile::protein_blosum62(),
                      /*diagonal=*/0, query.size() + subject.size() + 2, gaps);
}

LocalAlignment banded_smith_waterman(std::string_view query, std::string_view subject,
                                     long diagonal, std::size_t band,
                                     const GapPenalties& gaps) {
  return banded_align(query, subject, ScoringProfile::protein_blosum62(), diagonal,
                      band, gaps);
}

LocalAlignment smith_waterman_dna(std::string_view query, std::string_view subject,
                                  int match, int mismatch, const GapPenalties& gaps) {
  check_dna_params("smith_waterman_dna", match, mismatch);
  return banded_align(query, subject, dna_profile(match, mismatch), /*diagonal=*/0,
                      query.size() + subject.size() + 2, gaps);
}

LocalAlignment banded_smith_waterman_dna(std::string_view query,
                                         std::string_view subject, long diagonal,
                                         std::size_t band, int match, int mismatch,
                                         const GapPenalties& gaps) {
  check_dna_params("banded_smith_waterman_dna", match, mismatch);
  return banded_align(query, subject, dna_profile(match, mismatch), diagonal, band,
                      gaps);
}

DpCounters dp_counters() {
  DpCounters c;
  c.cells = g_cells.load(std::memory_order_relaxed);
  c.tracebacks = g_tracebacks.load(std::memory_order_relaxed);
  c.score_only = g_score_only.load(std::memory_order_relaxed);
  return c;
}

void reset_dp_counters() {
  g_cells.store(0, std::memory_order_relaxed);
  g_tracebacks.store(0, std::memory_order_relaxed);
  g_score_only.store(0, std::memory_order_relaxed);
}

}  // namespace pga::align
