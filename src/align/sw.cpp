#include "align/sw.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace pga::align {

namespace {

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

// Traceback states.
enum : unsigned char { kStop = 0, kDiagFromM = 1, kDiagFromX = 2, kDiagFromY = 3,
                       kXOpen = 4, kXExtend = 5, kYOpen = 6, kYExtend = 7 };

/// Gotoh local alignment with affine gaps and an optional band around
/// `diagonal` (pass band >= |q|+|s| for the unbanded case). The score
/// callback maps (query char, subject char) -> substitution score.
LocalAlignment gotoh(std::string_view q, std::string_view s,
                     const std::function<int(char, char)>& score,
                     const GapPenalties& gaps, long diagonal, long band) {
  const std::size_t n = q.size();
  const std::size_t m = s.size();
  LocalAlignment result;
  if (n == 0 || m == 0) return result;

  const std::size_t stride = m + 1;
  // M = alignment ends in a substitution; X = gap in query (subject
  // consumed); Y = gap in subject (query consumed).
  std::vector<int> mat((n + 1) * stride, 0);
  std::vector<int> gx((n + 1) * stride, kNegInf);
  std::vector<int> gy((n + 1) * stride, kNegInf);
  std::vector<unsigned char> tb_m((n + 1) * stride, kStop);
  std::vector<unsigned char> tb_x((n + 1) * stride, kStop);
  std::vector<unsigned char> tb_y((n + 1) * stride, kStop);

  const int open_cost = gaps.open + gaps.extend;  // cost of a length-1 gap
  int best = 0;
  std::size_t best_i = 0, best_j = 0;

  for (std::size_t i = 1; i <= n; ++i) {
    // Band limits on j for this row: |(i-1) - (j-1) - diagonal| <= band.
    const long center = static_cast<long>(i) - diagonal;
    const long lo = std::max<long>(1, center - band);
    const long hi = std::min<long>(static_cast<long>(m), center + band);
    for (long jj = lo; jj <= hi; ++jj) {
      const auto j = static_cast<std::size_t>(jj);
      const std::size_t idx = i * stride + j;
      const std::size_t diag = (i - 1) * stride + (j - 1);
      const std::size_t up = (i - 1) * stride + j;
      const std::size_t left = i * stride + (j - 1);

      // Substitution state.
      const int sub = score(q[i - 1], s[j - 1]);
      int from = 0;
      unsigned char dir = kStop;
      if (mat[diag] > from) { from = mat[diag]; dir = kDiagFromM; }
      if (gx[diag] > from) { from = gx[diag]; dir = kDiagFromX; }
      if (gy[diag] > from) { from = gy[diag]; dir = kDiagFromY; }
      // dir == kStop means the local alignment starts at this cell.
      const int m_score = from + sub;
      if (m_score > 0) {
        mat[idx] = m_score;
        tb_m[idx] = dir;
      } else {
        mat[idx] = 0;
        tb_m[idx] = kStop;
      }

      // Gap in query (moves left along subject).
      const int x_open = mat[left] - open_cost;
      const int x_ext = gx[left] - gaps.extend;
      if (x_open >= x_ext) { gx[idx] = x_open; tb_x[idx] = kXOpen; }
      else { gx[idx] = x_ext; tb_x[idx] = kXExtend; }

      // Gap in subject (moves up along query).
      const int y_open = mat[up] - open_cost;
      const int y_ext = gy[up] - gaps.extend;
      if (y_open >= y_ext) { gy[idx] = y_open; tb_y[idx] = kYOpen; }
      else { gy[idx] = y_ext; tb_y[idx] = kYExtend; }

      if (mat[idx] > best) {
        best = mat[idx];
        best_i = i;
        best_j = j;
      }
    }
  }

  if (best <= 0) return result;

  // Traceback from the best substitution cell.
  result.score = best;
  result.q_end = best_i;
  result.s_end = best_j;
  std::size_t i = best_i, j = best_j;
  char state = 'M';
  while (i > 0 && j > 0) {
    const std::size_t idx = i * stride + j;
    if (state == 'M') {
      if (q[i - 1] == s[j - 1]) ++result.matches;
      else ++result.mismatches;
      const unsigned char dir = tb_m[idx];
      --i; --j;
      if (dir == kStop) break;
      if (dir == kDiagFromM) state = 'M';
      else if (dir == kDiagFromX) state = 'X';
      else state = 'Y';
    } else if (state == 'X') {
      ++result.gap_residues;
      const unsigned char dir = tb_x[idx];
      --j;
      if (dir == kXOpen) { ++result.gap_opens; state = 'M'; }
    } else {  // 'Y'
      ++result.gap_residues;
      const unsigned char dir = tb_y[idx];
      --i;
      if (dir == kYOpen) { ++result.gap_opens; state = 'M'; }
    }
  }
  result.q_begin = i;
  result.s_begin = j;
  return result;
}

}  // namespace

LocalAlignment smith_waterman(std::string_view query, std::string_view subject,
                              const GapPenalties& gaps) {
  const long band = static_cast<long>(query.size() + subject.size()) + 2;
  return gotoh(query, subject, [](char a, char b) { return blosum62(a, b); }, gaps,
               /*diagonal=*/0, band);
}

LocalAlignment banded_smith_waterman(std::string_view query, std::string_view subject,
                                     long diagonal, std::size_t band,
                                     const GapPenalties& gaps) {
  return gotoh(query, subject, [](char a, char b) { return blosum62(a, b); }, gaps,
               diagonal, static_cast<long>(band));
}

LocalAlignment smith_waterman_dna(std::string_view query, std::string_view subject,
                                  int match, int mismatch, const GapPenalties& gaps) {
  if (match <= 0 || mismatch >= 0) {
    throw common::InvalidArgument("smith_waterman_dna: need match > 0 > mismatch");
  }
  const long band = static_cast<long>(query.size() + subject.size()) + 2;
  return gotoh(
      query, subject,
      [match, mismatch](char a, char b) { return a == b ? match : mismatch; }, gaps,
      /*diagonal=*/0, band);
}

LocalAlignment banded_smith_waterman_dna(std::string_view query,
                                         std::string_view subject, long diagonal,
                                         std::size_t band, int match, int mismatch,
                                         const GapPenalties& gaps) {
  if (match <= 0 || mismatch >= 0) {
    throw common::InvalidArgument("banded_smith_waterman_dna: need match > 0 > mismatch");
  }
  return gotoh(
      query, subject,
      [match, mismatch](char a, char b) { return a == b ? match : mismatch; }, gaps,
      diagonal, static_cast<long>(band));
}

}  // namespace pga::align
