// Runtime SIMD dispatch for the Smith–Waterman kernels.
//
// The banded Gotoh kernel has two interchangeable implementations: the
// scalar band-compressed loop (the mandatory fallback, and the reference
// the golden fixtures were pinned against) and an AVX2 row-vectorized
// rewrite (sw_simd_avx2.cpp). Both evaluate the *identical* integer
// recurrence — the vector kernel reorders the computation (M/Y from the
// previous row in one vectorized pass, then the horizontal-gap X state as
// a Kogge–Stone max-prefix scan) but never changes a single cell value, so
// every caller gets byte-identical scores, end cells, tracebacks and
// DpCounters on either path.
//
// Dispatch order:
//   1. the PGA_SW_DISPATCH environment variable ("scalar", "avx2",
//      "auto"/unset), read once at first use;
//   2. set_simd_level() — a test/bench hook that overrides the env
//      decision until reset_simd_level();
//   3. under "auto": AVX2 when the CPU reports it, else scalar.
// Requesting "avx2" on a CPU (or build) without it falls back to scalar
// rather than faulting.
#pragma once

namespace pga::align {

/// Kernel implementation tiers, ordered by capability.
enum class SimdLevel {
  kScalar = 0,  ///< band-compressed scalar loop (always available)
  kAvx2 = 1,    ///< AVX2 row-vectorized kernel (x86-64 with AVX2 only)
};

/// True when this build carries the AVX2 kernel and the CPU supports it.
bool cpu_supports_avx2();

/// The level the next kernel invocation will dispatch to (env knob +
/// override + CPU detection applied).
SimdLevel active_simd_level();

/// Human-readable name of a level: "scalar" or "avx2".
const char* simd_level_name(SimdLevel level);

/// Name of the level active_simd_level() currently resolves to.
const char* active_simd_isa();

/// Overrides the dispatch decision (clamped to what the CPU supports).
/// Test and benchmark hook — not thread-safe against concurrently running
/// kernels; flip it only while no alignments are in flight.
void set_simd_level(SimdLevel level);

/// Drops any set_simd_level() override, returning to env + auto detection.
void reset_simd_level();

}  // namespace pga::align
