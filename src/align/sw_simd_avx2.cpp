// AVX2 row-vectorized banded Gotoh kernel.
//
// Same recurrence as the scalar kernel in sw.cpp, reordered for data
// parallelism — never a different cell value:
//
//   * M (substitution) and Y (gap-in-subject) depend only on the previous
//     row, so each row computes them 8 columns at a time with plain
//     vector max/add over the previous row's M/X/Y arrays.
//   * X (gap-in-query) carries the one intra-row dependency,
//     X[j] = max(M[j-1] - open, X[j-1] - extend). Expanding the
//     recurrence, X[j] = max_{k<j}(M[k] - open - (j-1-k)·extend): a
//     max-prefix scan with linear decay, computed in-register as a
//     Kogge–Stone scan (shift by 1, 2, 4 lanes, subtracting
//     d·extend per step) plus a scalar carry between vectors.
//
// Unlike Farrar's query-striped layout (which assumes a full, unbanded
// matrix and a lazy-F fixup), this keeps the band's row-major order, so
// out-of-band defaults (M = 0, X = Y = -inf), the in-band cell count and
// the packed traceback band are bit-compatible with the scalar kernel —
// the golden fixtures pin both paths to the same bytes.
//
// Rows live in absolute-column arrays (index = subject column) with 16
// ints of slack: full vectors may read/write up to 7 lanes past the band
// edge. Dead lanes compute garbage that is never consumed — the row-max
// update masks them, the ≤2 boundary columns the next row reads beyond
// the written band are re-patched to out-of-band defaults, and the
// traceback walk only visits in-band bytes.
#include "align/sw_internal.hpp"

#if PGA_HAVE_AVX2_KERNEL

#include <immintrin.h>

#include <algorithm>

namespace pga::align::detail {

namespace {

#define PGA_AVX2_INLINE \
  __attribute__((target("avx2"), always_inline)) static inline

/// result[l] = v[l - D] for l >= D, else fill[l] (lane shift across the
/// 128-bit boundary via a full-width permute + immediate blend).
template <int D>
PGA_AVX2_INLINE __m256i shift_lanes_left(__m256i v, __m256i fill) {
  const __m256i idx = _mm256_setr_epi32((0 - D) & 7, (1 - D) & 7, (2 - D) & 7,
                                        (3 - D) & 7, (4 - D) & 7, (5 - D) & 7,
                                        (6 - D) & 7, (7 - D) & 7);
  const __m256i rot = _mm256_permutevar8x32_epi32(v, idx);
  return _mm256_blend_epi32(rot, fill, (1 << D) - 1);
}

PGA_AVX2_INLINE int hmax_epi32(__m256i v) {
  __m128i a =
      _mm_max_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  a = _mm_max_epi32(a, _mm_shuffle_epi32(a, _MM_SHUFFLE(1, 0, 3, 2)));
  a = _mm_max_epi32(a, _mm_shuffle_epi32(a, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(a);
}

template <bool Traceback>
__attribute__((target("avx2"))) KernelSummary avx2_kernel(const KernelParams& kp,
                                                          DpWorkspace& ws) {
  const long n = kp.n;
  const long m = kp.m;
  const long diagonal = kp.diagonal;
  const long band = kp.band;
  const long width = tb_width(m, band);
  KernelSummary res;

  // Rows with any in-band cell form one contiguous i-interval: the band
  // needs i - diagonal + band >= 1 and i - diagonal - band <= m.
  const long i_begin = std::max(1L, diagonal - band + 1);
  const long i_end = std::min(n, m + diagonal + band);
  if (i_begin > i_end) return res;

  const std::size_t cols = static_cast<std::size_t>(m) + 1 + 16;
  for (auto& row : ws.col_rows) row.resize(cols);
  if (Traceback) {
    ws.tb.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(width) +
                 16);
  }

  int* pm = ws.col_rows[0].data();
  int* px = ws.col_rows[1].data();
  int* py = ws.col_rows[2].data();
  int* cm = ws.col_rows[3].data();
  int* cx = ws.col_rows[4].data();
  int* cy = ws.col_rows[5].data();

  const int open_cost = kp.open_cost;
  const int ext = kp.extend;

  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vone = _mm256_set1_epi32(1);
  const __m256i vdir2 = _mm256_set1_epi32(2);
  const __m256i vdir3 = _mm256_set1_epi32(3);
  const __m256i vneg = _mm256_set1_epi32(kNegInf);
  const __m256i vopen = _mm256_set1_epi32(open_cost);
  const __m256i vext = _mm256_set1_epi32(ext);
  const __m256i vext2 = _mm256_set1_epi32(2 * ext);
  const __m256i vext4 = _mm256_set1_epi32(4 * ext);
  const __m256i vxbit = _mm256_set1_epi32(kXOpenBit);
  const __m256i vybit = _mm256_set1_epi32(kYOpenBit);
  const __m256i lane_idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i vdecay =
      _mm256_mullo_epi32(vext, _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 8));

  // Seed the previous row with out-of-band defaults over the first row's
  // read span; later rows only re-patch the <=1 column the band grew by.
  {
    const long lo0 = row_lo(i_begin, diagonal, band);
    const long hi0 = row_hi(i_begin, diagonal, band, m);
    for (long c = lo0 - 1; c <= hi0; ++c) {
      pm[c] = 0;
      px[c] = kNegInf;
      py[c] = kNegInf;
    }
  }
  long valid_hi = row_hi(i_begin, diagonal, band, m);

  for (long i = i_begin; i <= i_end; ++i) {
    const long lo = row_lo(i, diagonal, band);
    const long hi = row_hi(i, diagonal, band, m);
    res.cells += static_cast<std::uint64_t>(hi - lo + 1);
    // Columns the band grew into read as out-of-band in the previous row
    // (and overwrite any dead-lane garbage a full-vector store left).
    for (long c = valid_hi + 1; c <= hi; ++c) {
      pm[c] = 0;
      px[c] = kNegInf;
      py[c] = kNegInf;
    }
    // Column lo-1 of the current row is out-of-band: the first vector's
    // j-1 reads (M for the X scan, X for the open/extend tie) and the
    // next row's diagonal reads land here.
    cm[lo - 1] = 0;
    cx[lo - 1] = kNegInf;
    cy[lo - 1] = kNegInf;

    const int* srow = kp.profile->row(kp.q_codes[i - 1]);
    unsigned char* tb_row =
        Traceback
            ? ws.tb.data() + static_cast<std::size_t>(i - 1) *
                                 static_cast<std::size_t>(width)
            : nullptr;
    __m256i rowmax = vneg;
    // Lane-7 broadcasts of the previous vector's M and X — the values
    // column j0-1 holds. Kept in registers: reloading cm/cx at j0-1
    // right after the j0 store is a partial-overlap load that defeats
    // store-to-load forwarding and stalls every iteration.
    __m256i m_carry = vzero;  // M at (i, lo-1) = 0
    __m256i x_carry = vneg;   // X at (i, lo-1) = kNegInf

    for (long j0 = lo; j0 <= hi; j0 += 8) {
      // M state (and traceback direction) from the previous row.
      const __m256i codes = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(kp.s_codes + j0 - 1)));
      const __m256i sub = _mm256_i32gather_epi32(srow, codes, 4);
      const __m256i md =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pm + j0 - 1));
      const __m256i xd =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(px + j0 - 1));
      const __m256i yd =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(py + j0 - 1));
      __m256i from;
      __m256i dir = vzero;
      if constexpr (Traceback) {
        // dir = first strict improver over the running max, in the scalar
        // kernel's 0, M, X, Y comparison order.
        from = vzero;
        const __m256i c1 = _mm256_cmpgt_epi32(md, from);
        from = _mm256_max_epi32(from, md);
        dir = _mm256_and_si256(c1, vone);
        const __m256i c2 = _mm256_cmpgt_epi32(xd, from);
        from = _mm256_max_epi32(from, xd);
        dir = _mm256_blendv_epi8(dir, vdir2, c2);
        const __m256i c3 = _mm256_cmpgt_epi32(yd, from);
        from = _mm256_max_epi32(from, yd);
        dir = _mm256_blendv_epi8(dir, vdir3, c3);
      } else {
        from = _mm256_max_epi32(_mm256_max_epi32(md, xd),
                                _mm256_max_epi32(yd, vzero));
      }
      const __m256i m_raw = _mm256_add_epi32(from, sub);
      const __m256i m_val = _mm256_max_epi32(m_raw, vzero);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(cm + j0), m_val);

      // Y state — previous row only.
      const __m256i pmj =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pm + j0));
      const __m256i pyj =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(py + j0));
      const __m256i y_open = _mm256_sub_epi32(pmj, vopen);
      const __m256i y_ext = _mm256_sub_epi32(pyj, vext);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(cy + j0),
                          _mm256_max_epi32(y_open, y_ext));

      // Track the row maximum over in-band lanes only.
      const long rem = hi - j0;
      const __m256i valid = _mm256_cmpgt_epi32(
          _mm256_set1_epi32(rem >= 7 ? 8 : static_cast<int>(rem + 1)),
          lane_idx);
      rowmax =
          _mm256_max_epi32(rowmax, _mm256_blendv_epi8(vneg, m_val, valid));

      // X state: Kogge–Stone max-prefix scan with linear decay over this
      // vector's gap-open candidates, then the inter-vector carry. The
      // left-neighbour M values come from m_val shifted one lane with the
      // previous vector's lane 7 (m_carry) filling lane 0 — no reload.
      const __m256i a =
          _mm256_sub_epi32(shift_lanes_left<1>(m_val, m_carry), vopen);
      __m256i v = a;
      v = _mm256_max_epi32(
          v, _mm256_sub_epi32(shift_lanes_left<1>(v, vneg), vext));
      v = _mm256_max_epi32(
          v, _mm256_sub_epi32(shift_lanes_left<2>(v, vneg), vext2));
      v = _mm256_max_epi32(
          v, _mm256_sub_epi32(shift_lanes_left<4>(v, vneg), vext4));
      const __m256i carry_v = _mm256_sub_epi32(x_carry, vdecay);
      const __m256i x_val = _mm256_max_epi32(v, carry_v);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(cx + j0), x_val);

      if constexpr (Traceback) {
        // dir survives only where the unclamped M is positive; the gap
        // bits record open-vs-extend ties exactly like the scalar kernel
        // (>= favors opening).
        __m256i tb32 = _mm256_and_si256(dir, _mm256_cmpgt_epi32(m_raw, vzero));
        tb32 = _mm256_or_si256(
            tb32, _mm256_andnot_si256(_mm256_cmpgt_epi32(y_ext, y_open), vybit));
        const __m256i x_prev = shift_lanes_left<1>(x_val, x_carry);
        const __m256i x_ext_v = _mm256_sub_epi32(x_prev, vext);
        tb32 = _mm256_or_si256(
            tb32, _mm256_andnot_si256(_mm256_cmpgt_epi32(x_ext_v, a), vxbit));
        // Pack the 8 small ints to 8 bytes (dead lanes saturate to
        // garbage bytes at offsets the walk never visits).
        const __m128i p16 = _mm_packs_epi32(_mm256_castsi256_si128(tb32),
                                            _mm256_extracti128_si256(tb32, 1));
        const __m128i p8 = _mm_packus_epi16(p16, p16);
        _mm_storel_epi64(reinterpret_cast<__m128i*>(tb_row + (j0 - lo)), p8);
      }

      const __m256i lane7 = _mm256_set1_epi32(7);
      m_carry = _mm256_permutevar8x32_epi32(m_val, lane7);
      x_carry = _mm256_permutevar8x32_epi32(x_val, lane7);
    }

    // The scalar kernel's strictly-greater update records the first cell
    // (row-major) attaining the final maximum, i.e. the first row that
    // improves the running best, and within it the first occurrence of
    // the row maximum.
    const int row_max = hmax_epi32(rowmax);
    if (row_max > res.best) {
      res.best = row_max;
      res.best_i = i;
      for (long j = lo; j <= hi; ++j) {
        if (cm[j] == row_max) {
          res.best_j = j;
          break;
        }
      }
    }

    std::swap(pm, cm);
    std::swap(px, cx);
    std::swap(py, cy);
    valid_hi = hi;
  }
  return res;
}

#undef PGA_AVX2_INLINE

}  // namespace

bool avx2_kernel_compiled() { return true; }

KernelSummary banded_kernel_avx2(const KernelParams& kp, DpWorkspace& ws,
                                 bool traceback) {
  return traceback ? avx2_kernel<true>(kp, ws) : avx2_kernel<false>(kp, ws);
}

}  // namespace pga::align::detail

#else  // !PGA_HAVE_AVX2_KERNEL

namespace pga::align::detail {

bool avx2_kernel_compiled() { return false; }

KernelSummary banded_kernel_avx2(const KernelParams&, DpWorkspace&, bool) {
  return {};  // unreachable: dispatch never selects AVX2 without support
}

}  // namespace pga::align::detail

#endif  // PGA_HAVE_AVX2_KERNEL
