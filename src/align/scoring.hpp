// Protein substitution scoring (BLOSUM62) and BLAST-style statistics.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace pga::align {

/// BLOSUM62 substitution score between two residues (case-insensitive).
/// 'X' scores -1 against everything; '*' scores -4 against residues and +1
/// against itself — the NCBI conventions.
int blosum62(char a, char b);

/// Affine gap model: a gap of length L costs open + extend * L.
struct GapPenalties {
  int open = 11;    ///< gap-open cost (positive)
  int extend = 1;   ///< per-residue extension cost (positive)
};

/// Karlin–Altschul parameters for gapped BLOSUM62 with gap 11/1 — the
/// defaults BLASTX reports bit scores and E-values with.
struct KarlinAltschul {
  double lambda = 0.267;
  double k = 0.041;
};

/// Raw alignment score -> bit score: (lambda*S - ln K) / ln 2.
double bit_score(int raw_score, const KarlinAltschul& ka = {});

/// E-value for a bit score over a search space of query length m (residues)
/// times database length n (residues): E = m * n * 2^-bits.
double e_value(double bits, double query_residues, double db_residues);

/// Sum of pairwise BLOSUM62 scores of two equal-length words (no gaps);
/// the quantity thresholded by BLAST's two-hit word finder.
int word_score(std::string_view a, std::string_view b);

/// Precomputed substitution table indexed by encoded residues — the DP
/// kernel's replacement for a per-cell score callback. Sequences are
/// encoded once per alignment (char -> 5-bit code via a 256-entry map);
/// the inner loop then reads `row(q_code)[s_code]` with no branching,
/// case-folding or function-pointer indirection.
class ScoringProfile {
 public:
  static constexpr int kCodes = 32;

  /// BLOSUM62 profile matching blosum62(a, b) for every char pair:
  /// codes 0..19 = the standard residues, 20 = '*', 21 = X / anything else.
  static const ScoringProfile& protein_blosum62();

  /// DNA identity profile matching `a == b ? match : mismatch` over
  /// A/C/G/T/N in both cases. Characters outside that set share one
  /// catch-all code and score `mismatch` even against themselves (the
  /// overlap pipeline never feeds such characters; reverse_complement
  /// rejects them earlier).
  static ScoringProfile dna(int match, int mismatch);

  /// Bytes of zero-padding PreparedSeq keeps after the encoded codes, so a
  /// vector kernel may overread up to one SIMD register past the end.
  static constexpr std::size_t kCodePadding = 16;

  /// Substitution score of two encoded residues.
  [[nodiscard]] int score(std::uint8_t a, std::uint8_t b) const {
    return table_[(static_cast<std::size_t>(a) << 5) | b];
  }
  /// Row of the table for a fixed query code (inner-loop pointer).
  [[nodiscard]] const int* row(std::uint8_t code) const {
    return table_.data() + (static_cast<std::size_t>(code) << 5);
  }
  [[nodiscard]] std::uint8_t encode_char(char c) const {
    return encode_[static_cast<unsigned char>(c)];
  }
  /// Encodes a sequence into `out` (resized to seq.size()).
  void encode(std::string_view seq, std::vector<std::uint8_t>& out) const;

 private:
  ScoringProfile() = default;

  std::array<std::uint8_t, 256> encode_{};
  std::array<int, kCodes * kCodes> table_{};
};

/// A sequence encoded once against a ScoringProfile and reused across many
/// alignments — the per-pair encode the DP entry points used to pay is
/// hoisted here, so a blastx search encodes each frame protein and each
/// database subject exactly once per query instead of once per (subject,
/// diagonal) pair, and the overlap phase encodes each fragment (and its
/// reverse complement) once for all its candidate pairs.
///
/// Holds a view of the caller's characters (the traceback needs them for
/// match counting) plus an owned, zero-padded code buffer
/// (ScoringProfile::kCodePadding slack bytes, so SIMD kernels may overread
/// a full register past the end). The viewed string must outlive the
/// PreparedSeq. assign() reuses the code buffer's capacity, so a
/// thread-local PreparedSeq re-assigned per call allocates nothing in
/// steady state.
class PreparedSeq {
 public:
  PreparedSeq() = default;
  PreparedSeq(std::string_view seq, const ScoringProfile& profile) {
    assign(seq, profile);
  }

  /// Re-points at `seq` and re-encodes it under `profile`.
  void assign(std::string_view seq, const ScoringProfile& profile);

  [[nodiscard]] std::string_view chars() const { return chars_; }
  [[nodiscard]] const std::uint8_t* codes() const { return codes_.data(); }
  [[nodiscard]] std::size_t size() const { return chars_.size(); }
  [[nodiscard]] bool empty() const { return chars_.empty(); }

 private:
  std::string_view chars_;
  std::vector<std::uint8_t> codes_;
};

}  // namespace pga::align
