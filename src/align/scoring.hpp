// Protein substitution scoring (BLOSUM62) and BLAST-style statistics.
#pragma once

#include <string_view>

namespace pga::align {

/// BLOSUM62 substitution score between two residues (case-insensitive).
/// 'X' scores -1 against everything; '*' scores -4 against residues and +1
/// against itself — the NCBI conventions.
int blosum62(char a, char b);

/// Affine gap model: a gap of length L costs open + extend * L.
struct GapPenalties {
  int open = 11;    ///< gap-open cost (positive)
  int extend = 1;   ///< per-residue extension cost (positive)
};

/// Karlin–Altschul parameters for gapped BLOSUM62 with gap 11/1 — the
/// defaults BLASTX reports bit scores and E-values with.
struct KarlinAltschul {
  double lambda = 0.267;
  double k = 0.041;
};

/// Raw alignment score -> bit score: (lambda*S - ln K) / ln 2.
double bit_score(int raw_score, const KarlinAltschul& ka = {});

/// E-value for a bit score over a search space of query length m (residues)
/// times database length n (residues): E = m * n * 2^-bits.
double e_value(double bits, double query_residues, double db_residues);

/// Sum of pairwise BLOSUM62 scores of two equal-length words (no gaps);
/// the quantity thresholded by BLAST's two-hit word finder.
int word_score(std::string_view a, std::string_view b);

}  // namespace pga::align
