// Internals shared by the scalar and SIMD banded-Gotoh kernels.
//
// Both implementations fill the same packed traceback layout and report
// the same (best, best_i, best_j, cells) summary, so the public entry
// points in sw.cpp can run either kernel and share one traceback walk,
// one counter update and one result struct. Nothing here is public API.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "align/scoring.hpp"

// The AVX2 kernel is compiled (behind a runtime CPU check) whenever the
// toolchain targets x86-64 with GCC/Clang function-level target support.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PGA_HAVE_AVX2_KERNEL 1
#else
#define PGA_HAVE_AVX2_KERNEL 0
#endif

namespace pga::align::detail {

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

// Traceback states, packed one byte per in-band cell:
//   bits 0-1  M-state source (0 = local start, 1 = M, 2 = X, 3 = Y)
//   bit  2    X-state opened a gap here (else extended)
//   bit  3    Y-state opened a gap here (else extended)
constexpr unsigned char kMDirMask = 0x3;
constexpr unsigned char kDiagFromM = 1;
constexpr unsigned char kDiagFromX = 2;
constexpr unsigned char kYOpenBit = 0x8;
constexpr unsigned char kXOpenBit = 0x4;

/// The band of row i covers columns [row_lo, row_hi] (1-based, clamped to
/// [1, m]); empty when row_lo > row_hi.
inline long row_lo(long i, long diagonal, long band) {
  return i - diagonal - band < 1 ? 1 : i - diagonal - band;
}
inline long row_hi(long i, long diagonal, long band, long m) {
  return i - diagonal + band > m ? m : i - diagonal + band;
}

/// Traceback row width shared by both kernels: a band row never holds more
/// than min(m, 2*band+1) cells.
inline long tb_width(long m, long band) {
  return m < 2 * band + 1 ? m : 2 * band + 1;
}

/// Reused per-thread DP storage. `band_rows` are the scalar kernel's six
/// rolling band-compressed rows; `col_rows` are the SIMD kernel's six
/// rolling absolute-column rows (index = subject column, 16 ints of slack
/// for full-vector overreads/overstores past the band edge); `tb` is the
/// packed traceback band both kernels fill in the identical
/// [row * width + (col - row_lo)] layout. Capacity persists across
/// calls, so the steady-state kernels allocate nothing.
struct DpWorkspace {
  std::vector<int> band_rows[6];
  std::vector<int> col_rows[6];
  std::vector<unsigned char> tb;
};

/// One banded-Gotoh invocation, fully described. `band` is pre-clamped to
/// n + m; code pointers carry ScoringProfile::kCodePadding slack bytes.
struct KernelParams {
  const std::uint8_t* q_codes = nullptr;
  const std::uint8_t* s_codes = nullptr;
  long n = 0, m = 0;
  const ScoringProfile* profile = nullptr;
  int open_cost = 0;  ///< gaps.open + gaps.extend (cost of a length-1 gap)
  int extend = 0;
  long diagonal = 0, band = 0;
};

/// What a kernel reports back: the best substitution-state score, the
/// first cell attaining it in row-major scan order, and the number of
/// in-band cells evaluated (the DpCounters increment).
struct KernelSummary {
  int best = 0;
  long best_i = 0, best_j = 0;
  std::uint64_t cells = 0;
};

/// AVX2 row-vectorized kernel (sw_simd_avx2.cpp). Requires
/// tb_width(m, band) >= 8 and cpu_supports_avx2(); fills ws.tb when
/// `traceback`, cell-for-cell identical to the scalar kernel.
KernelSummary banded_kernel_avx2(const KernelParams& kp, DpWorkspace& ws,
                                 bool traceback);

/// True when banded_kernel_avx2 is compiled into this binary (the runtime
/// CPU check lives in cpu_supports_avx2()).
bool avx2_kernel_compiled();

}  // namespace pga::align::detail
