#include "align/kmer_index.hpp"

#include <mutex>

#include "align/scoring.hpp"
#include "bio/alphabet.hpp"
#include "common/error.hpp"

namespace pga::align {

namespace {

/// Decodes a word code back to residues (inverse of KmerIndex::encode).
void decode(std::uint32_t code, int k, char* out) {
  for (int i = 0; i < k; ++i) {
    out[i] = bio::kAminoAcids[code % 20];
    code /= 20;
  }
}

}  // namespace

KmerIndex::KmerIndex(const std::vector<bio::SeqRecord>& proteins, int k,
                     int threshold)
    : k_(k), threshold_(threshold) {
  if (k < 2 || k > 5) {
    throw common::InvalidArgument("KmerIndex: k must be in [2,5]");
  }
  table_size_ = 1;
  for (int i = 0; i < k; ++i) table_size_ *= 20;
  table_.resize(table_size_);
  neighbor_cache_.resize(table_size_);
  neighbor_cached_.assign(table_size_, false);

  subject_count_ = proteins.size();
  if (proteins.size() > 0xffffffffULL) {
    throw common::InvalidArgument("KmerIndex: too many subjects");
  }
  for (std::uint32_t s = 0; s < proteins.size(); ++s) {
    const std::string& seq = proteins[s].seq;
    total_residues_ += seq.size();
    if (seq.size() < static_cast<std::size_t>(k)) continue;
    for (std::size_t pos = 0; pos + static_cast<std::size_t>(k) <= seq.size(); ++pos) {
      const long code = encode(std::string_view(seq).substr(pos, static_cast<std::size_t>(k)));
      if (code < 0) continue;
      auto& bucket = table_[static_cast<std::size_t>(code)];
      if (bucket.empty()) occupied_codes_.push_back(static_cast<std::uint32_t>(code));
      bucket.push_back(WordHit{s, static_cast<std::uint32_t>(pos)});
    }
  }
  // Decode every occupied word once; neighborhood scans then compare raw
  // residue arrays instead of re-deriving each candidate word per query.
  occupied_residues_.resize(occupied_codes_.size() * static_cast<std::size_t>(k_));
  for (std::size_t i = 0; i < occupied_codes_.size(); ++i) {
    decode(occupied_codes_[i], k_,
           occupied_residues_.data() + i * static_cast<std::size_t>(k_));
  }
}

long KmerIndex::encode(std::string_view word) const {
  if (word.size() != static_cast<std::size_t>(k_)) return -1;
  long code = 0;
  long mult = 1;
  for (const char c : word) {
    const int idx = bio::amino_index(c);
    if (idx < 0) return -1;
    code += idx * mult;
    mult *= 20;
  }
  return code;
}

const std::vector<WordHit>& KmerIndex::exact(std::string_view word) const {
  static const std::vector<WordHit> kEmpty;
  const long code = encode(word);
  if (code < 0) return kEmpty;
  return table_[static_cast<std::size_t>(code)];
}

std::vector<std::uint32_t> KmerIndex::compute_neighbors(std::uint32_t code) const {
  std::vector<char> query(static_cast<std::size_t>(k_));
  decode(code, k_, query.data());
  std::vector<std::uint32_t> neighbors;
  const auto k = static_cast<std::size_t>(k_);
  const char* candidate = occupied_residues_.data();
  for (const std::uint32_t occupied : occupied_codes_) {
    int score = 0;
    for (std::size_t i = 0; i < k; ++i) {
      score += blosum62(query[i], candidate[i]);
    }
    if (score >= threshold_) neighbors.push_back(occupied);
    candidate += k;
  }
  return neighbors;
}

void KmerIndex::neighborhood(std::string_view word, std::vector<WordHit>& out) const {
  const long signed_code = encode(word);
  if (signed_code < 0) return;
  const auto code = static_cast<std::uint32_t>(signed_code);

  // One reserve covering every neighbour bucket, then raw appends — the
  // repeated insert() growth was measurable at word_size 3 where a query
  // word fans out to dozens of buckets.
  const auto append_buckets = [&](const std::vector<std::uint32_t>& neighbors) {
    std::size_t total = 0;
    for (const std::uint32_t n : neighbors) total += table_[n].size();
    out.reserve(out.size() + total);
    for (const std::uint32_t n : neighbors) {
      const auto& bucket = table_[n];
      out.insert(out.end(), bucket.begin(), bucket.end());
    }
  };

  {
    std::shared_lock lock(cache_mutex_);
    if (neighbor_cached_[code]) {
      append_buckets(neighbor_cache_[code]);
      return;
    }
  }
  // Compute outside any lock (pure function of immutable index state).
  std::vector<std::uint32_t> neighbors = compute_neighbors(code);
  {
    const std::unique_lock lock(cache_mutex_);
    if (!neighbor_cached_[code]) {
      neighbor_cache_[code] = neighbors;
      neighbor_cached_[code] = true;
    }
  }
  append_buckets(neighbors);
}

}  // namespace pga::align
