// BLAST tabular ("-outfmt 6") records — the interchange format between the
// alignment stage and blast2cap3, exactly as in the paper's
// "alignments.out" input file.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

namespace pga::align {

/// One line of BLAST outfmt-6: 12 tab-separated columns.
/// Query coordinates are 1-based nucleotide positions on the transcript;
/// for reverse-strand hits qstart > qend (the BLASTX convention).
struct TabularHit {
  std::string qseqid;   ///< query (transcript) id
  std::string sseqid;   ///< subject (protein) id
  double pident = 0;    ///< percent identity over the alignment
  long length = 0;      ///< alignment length (residues)
  long mismatch = 0;    ///< mismatched columns
  long gapopen = 0;     ///< gap openings
  long qstart = 0;      ///< 1-based query start (nucleotides)
  long qend = 0;        ///< 1-based query end
  long sstart = 0;      ///< 1-based subject start (residues)
  long send = 0;        ///< 1-based subject end
  double evalue = 0;    ///< expectation value
  double bitscore = 0;  ///< bit score

  friend bool operator==(const TabularHit&, const TabularHit&) = default;
};

/// Formats one hit as a tab-separated line (no trailing newline).
std::string format_tabular(const TabularHit& hit);

/// Parses one outfmt-6 line. Throws ParseError on malformed input.
TabularHit parse_tabular_line(const std::string& line);

/// Writes hits, one line each.
void write_tabular(std::ostream& out, const std::vector<TabularHit>& hits);

/// Writes hits to a file.
void write_tabular_file(const std::filesystem::path& path,
                        const std::vector<TabularHit>& hits);

/// Reads an entire tabular file. Blank lines and '#' comments are skipped.
std::vector<TabularHit> read_tabular_file(const std::filesystem::path& path);

/// Parses tabular text held in memory.
std::vector<TabularHit> parse_tabular(const std::string& text);

}  // namespace pga::align
