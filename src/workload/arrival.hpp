// Seeded arrival-process generator: multi-workflow request streams.
//
// The substrate for a WaaS-style control plane (ROADMAP item 1): instead of
// one workflow at t=0, a stream of WorkflowRequests — each a ShapeSpec plus
// an arrival time and tenant — drawn from either a Poisson process
// (exponential interarrivals, the classic open-arrival model) or a bursty
// one (tight trains of requests separated by long gaps, the "campus lab
// submits 30 workflows at once" pattern the paper's OSG runs absorbed).
//
// Deterministic in ArrivalParams: the same params yield byte-identical
// streams, and each request's spec gets a per-request folded seed so two
// requests for the same shape differ in costs, never in topology.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "workload/generator.hpp"

namespace pga::workload {

/// The interarrival law.
enum class ArrivalProcess { kPoisson, kBursty };

[[nodiscard]] const char* arrival_process_name(ArrivalProcess process);

/// Knobs for one request stream.
struct ArrivalParams {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  std::size_t count = 32;  ///< total requests to emit
  /// kPoisson: mean of the exponential interarrival gap. kBursty: ignored
  /// (gaps come from burst_gap_seconds / intra_burst_seconds below).
  double mean_interarrival_seconds = 600;
  std::size_t burst_size = 8;        ///< kBursty: requests per train
  double burst_gap_seconds = 3600;   ///< kBursty: mean gap between trains
  double intra_burst_seconds = 5;    ///< kBursty: mean gap within a train
  std::uint64_t seed = 42;
  /// Shapes cycled round-robin across requests; empty throws.
  std::vector<ShapeSpec> shapes = {ShapeSpec{}};
  std::size_t tenants = 1;  ///< requests are striped over this many tenants
  /// Emission horizon: requests that would arrive strictly after this time
  /// are dropped, so a stream can be bounded by time instead of (or as well
  /// as) count. The default (infinity) emits exactly `count` requests;
  /// 0 yields an empty stream (nothing can arrive by t=0 — interarrival
  /// gaps are strictly positive); negative or NaN throws.
  double horizon_seconds = std::numeric_limits<double>::infinity();
};

/// One workflow submission in the stream.
struct WorkflowRequest {
  std::size_t index = 0;          ///< position in the stream
  double arrival_seconds = 0;     ///< absolute arrival time (t=0 origin)
  std::size_t tenant = 0;         ///< owning tenant, index % tenants
  ShapeSpec spec;                 ///< shape with per-request folded seed
};

/// A dynamic producer of workflow requests — the pull side of event-
/// triggered pipelines (src/trigger/). Where generate_arrivals bakes the
/// whole stream ahead of time, a RequestSource synthesizes requests
/// while the fleet runs (e.g. a TriggerEngine turning storage events
/// into follow-on workflows), and the FleetController polls it each
/// admission round.
class RequestSource {
 public:
  virtual ~RequestSource() = default;
  /// Drains every pending request with arrival_seconds <= now, in
  /// synthesis order. Each request is returned exactly once.
  virtual std::vector<WorkflowRequest> poll(double now) = 0;
  /// Earliest arrival_seconds still pending (+infinity when none) — the
  /// fleet uses it to fence clock advancement, exactly like the next
  /// static arrival.
  [[nodiscard]] virtual double next_arrival() const = 0;
};

/// Generates the stream: arrival times are nondecreasing, specs cycle over
/// params.shapes with spec.seed folded per request. Defined edge cases
/// (unit-tested, never UB): count == 0 or horizon_seconds == 0 return an
/// empty stream; a single tenant puts every request on tenant 0. Throws
/// InvalidArgument on empty shapes, zero tenants, non-positive or
/// non-finite mean gaps, zero burst size, or a negative/NaN horizon.
[[nodiscard]] std::vector<WorkflowRequest> generate_arrivals(
    const ArrivalParams& params);

}  // namespace pga::workload
