// Streamed, pattern-compressed materialization of generated concrete
// workflows — the n=10^7 build path.
//
// plan_shape() is general but strings its way through an AbstractWorkflow:
// file-use lists, workflow_inputs scans, per-edge id lookups. For the
// regular shapes the whole concrete workflow is a closed form, so this
// builder emits it directly: begin_bulk() hands out the pre-sized job
// array, a ThreadPool::parallel_for fills the worker span in deterministic
// chunks (plain field writes into disjoint slots), finish_bulk() interns
// ids sequentially, and the 4n regular edges land as 4 EdgePatterns. The
// result is byte-identical to plan_shape(spec, site, cluster_size) — the
// identity tests in tests/wms_golden_log_test.cpp pin jobs, edges,
// adjacency and engine logs against the planner path.
#pragma once

#include <cstddef>
#include <cstdint>

#include "wms/planner.hpp"
#include "workload/generator.hpp"

namespace pga::common {
class ThreadPool;
}

namespace pga::workload {

/// Knobs for build_concrete_streamed.
struct StreamedBuildOptions {
  std::string site;  ///< "sandhills" or "osg" (generator_site_catalog)
  /// >1: horizontally cluster the worker span, cluster_size per concrete
  /// job, replicating plan()'s grouping exactly (ids, order, hints).
  std::size_t cluster_size = 1;
  /// Emit the regular edge families as patterns (O(1) storage) instead of
  /// materialized lists. Adjacency is identical either way.
  bool edge_patterns = true;
  /// Fills the worker span in parallel when set; sequential when null.
  common::ThreadPool* pool = nullptr;
  /// Jobs per parallel_for chunk (chunking is deterministic in n alone).
  std::size_t chunk = 65536;
};

/// Build-phase timing/shape breakdown, for the scale bench's JSON.
struct StreamedBuildStats {
  double model_seconds = 0;   ///< cost-model construction
  double fill_seconds = 0;    ///< bulk struct fill (the parallel span)
  double intern_seconds = 0;  ///< sequential id interning (finish_bulk)
  double wire_seconds = 0;    ///< edges/patterns + stage-job pricing
  std::size_t jobs = 0;
  std::size_t explicit_edges = 0;
  std::size_t pattern_edges = 0;
};

/// True when `spec` has a streamed closed form (currently blast2cap3,
/// the scale bench's shape). Unsupported specs fall back to plan_shape.
[[nodiscard]] bool streamed_build_supported(const ShapeSpec& spec);

/// Materializes plan_shape(spec, options.site, options.cluster_size)
/// without the abstract intermediate. Byte-identical output. Throws
/// InvalidArgument for unsupported specs/sites.
[[nodiscard]] wms::ConcreteWorkflow build_concrete_streamed(
    const ShapeSpec& spec, const StreamedBuildOptions& options,
    StreamedBuildStats* stats = nullptr);

/// generator_replica_catalog(build_workflow(spec), spec) without building
/// the abstract workflow — the streamed shapes' inputs are closed-form.
[[nodiscard]] wms::ReplicaCatalog streamed_replica_catalog(const ShapeSpec& spec);

}  // namespace pga::workload
