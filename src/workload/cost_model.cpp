#include "workload/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pga::workload {

const char* distribution_name(CostDistribution distribution) {
  switch (distribution) {
    case CostDistribution::kConstant: return "constant";
    case CostDistribution::kUniform: return "uniform";
    case CostDistribution::kZipf: return "zipf";
  }
  return "?";
}

namespace {

/// Zipf-shaped positive weights: (k+1)^-s with mild multiplicative noise —
/// the WorkloadModel cluster-size idiom, minus its final integer rounding.
std::vector<double> zipf_weights(common::Rng& rng, std::size_t count, double s,
                                 double noise_sigma) {
  std::vector<double> weights(count);
  for (std::size_t k = 0; k < count; ++k) {
    weights[k] = std::pow(static_cast<double>(k + 1), -s) *
                 (noise_sigma > 0 ? rng.lognormal(0.0, noise_sigma) : 1.0);
  }
  return weights;
}

void apply_order(std::vector<double>& values, CostOrder order, common::Rng& rng) {
  switch (order) {
    case CostOrder::kShuffled: rng.shuffle(values); break;
    case CostOrder::kAscending: std::sort(values.begin(), values.end()); break;
    case CostOrder::kDescending:
      std::sort(values.begin(), values.end(), std::greater<>());
      break;
  }
}

}  // namespace

CostModel::CostModel(const CostModelParams& params, std::size_t task_count,
                     std::size_t file_count)
    : params_(params) {
  if (params.cpu_mean_seconds <= 0 || params.io_mean_bytes == 0) {
    throw common::InvalidArgument("cost model: means must be positive");
  }
  if (params.cpu_min_seconds > params.cpu_max_seconds ||
      params.io_min_bytes > params.io_max_bytes) {
    throw common::InvalidArgument("cost model: min bound exceeds max bound");
  }
  if (params.cpu_beta < 1.0) {
    throw common::InvalidArgument("cost model: cpu_beta must be >= 1");
  }

  // Independent streams: task costs never shift when the file count
  // changes, and vice versa.
  common::Rng cpu_rng(params.seed);
  common::Rng io_rng(params.seed ^ 0xf11ebeefc0dec0deULL);

  task_seconds_.resize(task_count);
  switch (params.cpu) {
    case CostDistribution::kConstant:
      std::fill(task_seconds_.begin(), task_seconds_.end(),
                params.cpu_mean_seconds);
      break;
    case CostDistribution::kUniform:
      for (double& cost : task_seconds_) {
        cost = cpu_rng.uniform(params.cpu_min_seconds, params.cpu_max_seconds);
      }
      apply_order(task_seconds_, params.cpu_order, cpu_rng);
      break;
    case CostDistribution::kZipf: {
      // cost_k = alpha * w_k^beta with alpha calibrated so the total hits
      // mean * count — the WorkloadModel calibration with an explicit
      // target instead of the paper's serial_cap3_seconds.
      const auto weights = zipf_weights(cpu_rng, task_count, params.cpu_zipf_s,
                                        params.cpu_noise_sigma);
      double unscaled = 0;
      for (const double w : weights) unscaled += std::pow(w, params.cpu_beta);
      const double alpha =
          unscaled > 0
              ? params.cpu_mean_seconds * static_cast<double>(task_count) / unscaled
              : 0.0;
      for (std::size_t k = 0; k < task_count; ++k) {
        task_seconds_[k] = alpha * std::pow(weights[k], params.cpu_beta);
      }
      apply_order(task_seconds_, params.cpu_order, cpu_rng);
      break;
    }
  }
  for (const double cost : task_seconds_) total_seconds_ += cost;

  file_bytes_.resize(file_count);
  switch (params.io) {
    case CostDistribution::kConstant:
      std::fill(file_bytes_.begin(), file_bytes_.end(), params.io_mean_bytes);
      break;
    case CostDistribution::kUniform:
      for (std::uint64_t& bytes : file_bytes_) {
        bytes = static_cast<std::uint64_t>(
            io_rng.uniform(static_cast<double>(params.io_min_bytes),
                           static_cast<double>(params.io_max_bytes)));
      }
      break;
    case CostDistribution::kZipf: {
      // Noiseless rank law calibrated to the mean: a few big references,
      // a long tail of small per-chunk files.
      double unscaled = 0;
      for (std::size_t k = 0; k < file_count; ++k) {
        unscaled += std::pow(static_cast<double>(k + 1), -params.io_zipf_s);
      }
      const double alpha =
          unscaled > 0 ? static_cast<double>(params.io_mean_bytes) *
                             static_cast<double>(file_count) / unscaled
                       : 0.0;
      for (std::size_t k = 0; k < file_count; ++k) {
        file_bytes_[k] = static_cast<std::uint64_t>(std::max(
            1.0, alpha * std::pow(static_cast<double>(k + 1), -params.io_zipf_s)));
      }
      break;
    }
  }
  for (const std::uint64_t bytes : file_bytes_) total_bytes_ += bytes;
}

double CostModel::task_seconds(std::size_t rank) const {
  if (rank >= task_seconds_.size()) {
    throw common::InvalidArgument("cost model: task rank out of range");
  }
  return task_seconds_[rank];
}

std::uint64_t CostModel::file_bytes(std::size_t rank) const {
  if (rank >= file_bytes_.size()) {
    throw common::InvalidArgument("cost model: file rank out of range");
  }
  return file_bytes_[rank];
}

}  // namespace pga::workload
