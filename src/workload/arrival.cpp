#include "workload/arrival.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pga::workload {

const char* arrival_process_name(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kBursty: return "bursty";
  }
  return "?";
}

namespace {

/// SplitMix64 step, matching the generator's seed folding.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::vector<WorkflowRequest> generate_arrivals(const ArrivalParams& params) {
  if (params.shapes.empty()) {
    throw common::InvalidArgument("arrival stream: shapes must be non-empty");
  }
  if (params.tenants == 0) {
    throw common::InvalidArgument("arrival stream: tenants must be >= 1");
  }
  if (params.process == ArrivalProcess::kPoisson &&
      params.mean_interarrival_seconds <= 0) {
    throw common::InvalidArgument(
        "arrival stream: mean_interarrival_seconds must be positive");
  }
  if (params.process == ArrivalProcess::kBursty &&
      (params.burst_size == 0 || params.burst_gap_seconds <= 0 ||
       params.intra_burst_seconds <= 0)) {
    throw common::InvalidArgument(
        "arrival stream: bursty gaps must be positive and burst_size >= 1");
  }

  common::Rng rng(params.seed);
  std::vector<WorkflowRequest> requests;
  requests.reserve(params.count);
  double clock = 0;
  for (std::size_t i = 0; i < params.count; ++i) {
    switch (params.process) {
      case ArrivalProcess::kPoisson:
        clock += rng.exponential(params.mean_interarrival_seconds);
        break;
      case ArrivalProcess::kBursty:
        // A long exponential gap opens each train; within it, requests
        // land a few seconds apart.
        clock += rng.exponential(i % params.burst_size == 0
                                     ? params.burst_gap_seconds
                                     : params.intra_burst_seconds);
        break;
    }
    WorkflowRequest request;
    request.index = i;
    request.arrival_seconds = clock;
    request.tenant = i % params.tenants;
    request.spec = params.shapes[i % params.shapes.size()];
    // Per-request seed fold: same topology family, independent costs.
    request.spec.seed = mix64(params.seed ^ (request.spec.seed + i));
    requests.push_back(std::move(request));
  }
  return requests;
}

}  // namespace pga::workload
