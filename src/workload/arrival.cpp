#include "workload/arrival.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pga::workload {

const char* arrival_process_name(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kBursty: return "bursty";
  }
  return "?";
}

namespace {

/// True for a usable mean gap: positive and finite. Written as a positive
/// assertion so NaN (for which every comparison is false) is rejected too.
bool valid_mean(double seconds) {
  return std::isfinite(seconds) && seconds > 0;
}

}  // namespace

std::vector<WorkflowRequest> generate_arrivals(const ArrivalParams& params) {
  if (params.shapes.empty()) {
    throw common::InvalidArgument("arrival stream: shapes must be non-empty");
  }
  if (params.tenants == 0) {
    throw common::InvalidArgument("arrival stream: tenants must be >= 1");
  }
  if (params.process == ArrivalProcess::kPoisson &&
      !valid_mean(params.mean_interarrival_seconds)) {
    throw common::InvalidArgument(
        "arrival stream: mean_interarrival_seconds must be positive and finite");
  }
  if (params.process == ArrivalProcess::kBursty &&
      (params.burst_size == 0 || !valid_mean(params.burst_gap_seconds) ||
       !valid_mean(params.intra_burst_seconds))) {
    throw common::InvalidArgument(
        "arrival stream: bursty gaps must be positive and finite and "
        "burst_size >= 1");
  }
  // NaN horizon fails both comparisons below and would silently emit the
  // full stream; reject it alongside negative horizons.
  if (std::isnan(params.horizon_seconds) || params.horizon_seconds < 0) {
    throw common::InvalidArgument(
        "arrival stream: horizon_seconds must be >= 0 (0 = empty stream)");
  }

  common::Rng rng(params.seed);
  std::vector<WorkflowRequest> requests;
  requests.reserve(params.count);
  double clock = 0;
  for (std::size_t i = 0; i < params.count; ++i) {
    switch (params.process) {
      case ArrivalProcess::kPoisson:
        clock += rng.exponential(params.mean_interarrival_seconds);
        break;
      case ArrivalProcess::kBursty:
        // A long exponential gap opens each train; within it, requests
        // land a few seconds apart.
        clock += rng.exponential(i % params.burst_size == 0
                                     ? params.burst_gap_seconds
                                     : params.intra_burst_seconds);
        break;
    }
    // Horizon cut: the clock only moves forward, so the first request past
    // the horizon ends the stream (a 0 horizon is an empty stream).
    if (clock > params.horizon_seconds) break;
    WorkflowRequest request;
    request.index = i;
    request.arrival_seconds = clock;
    request.tenant = i % params.tenants;
    request.spec = params.shapes[i % params.shapes.size()];
    // Per-request seed fold: same topology family, independent costs.
    request.spec.seed = common::mix64(params.seed ^ (request.spec.seed + i));
    requests.push_back(std::move(request));
  }
  return requests;
}

}  // namespace pga::workload
