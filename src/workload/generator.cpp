#include "workload/generator.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pga::workload {

using wms::AbstractJob;
using wms::AbstractWorkflow;
using wms::FileUse;
using wms::LinkType;

const char* shape_name(Shape shape) {
  switch (shape) {
    case Shape::kChain: return "chain";
    case Shape::kFan: return "fan";
    case Shape::kDiamond: return "diamond";
    case Shape::kMontage: return "montage";
    case Shape::kNgsPipeline: return "ngs";
    case Shape::kBlast2cap3: return "blast2cap3";
  }
  return "?";
}

Shape parse_shape(const std::string& name) {
  for (const Shape shape : all_shapes()) {
    if (name == shape_name(shape)) return shape;
  }
  throw common::InvalidArgument("unknown workflow shape: " + name);
}

std::vector<Shape> all_shapes() {
  return {Shape::kChain,   Shape::kFan,         Shape::kDiamond,
          Shape::kMontage, Shape::kNgsPipeline, Shape::kBlast2cap3};
}

namespace {

using common::mix64;

/// Zero-padded index so id sort order == build order at any size (job ids
/// order release and adjacency iteration; unpadded "10" < "2" would make
/// orderings size-dependent).
std::string tag(std::size_t i, std::size_t count) {
  std::string digits = std::to_string(i);
  const std::size_t width = std::to_string(count > 0 ? count - 1 : 0).size();
  if (digits.size() < width) digits.insert(0, width - digits.size(), '0');
  return digits;
}

/// Leaves under the fan's gateways: sum of (1 + i*step).
std::size_t fan_leaves(std::size_t n, std::size_t step) {
  return n + step * (n * (n - 1) / 2);
}

void check_size(const ShapeSpec& spec) {
  const std::size_t minimum = spec.shape == Shape::kMontage ? 2 : 1;
  if (spec.size < minimum) {
    throw common::InvalidArgument(std::string("shape ") + shape_name(spec.shape) +
                                  ": size must be >= " + std::to_string(minimum));
  }
  if (spec.shape == Shape::kDiamond && spec.diamond_stages == 0) {
    throw common::InvalidArgument("diamond: diamond_stages must be >= 1");
  }
}

/// Appends one job; the caller wires edges by the returned handle.
struct Builder {
  AbstractWorkflow& wf;
  const CostModel& model;
  std::size_t rank = 0;

  std::uint32_t add(std::string id, std::string transformation,
                    std::vector<FileUse> uses) {
    AbstractJob job;
    job.id = std::move(id);
    job.transformation = std::move(transformation);
    job.uses = std::move(uses);
    job.cpu_seconds_hint = model.task_seconds(rank++);
    return wf.add_job(std::move(job));
  }
};

}  // namespace

ShapeCounts closed_form_counts(const ShapeSpec& spec) {
  check_size(spec);
  const std::size_t n = spec.size;
  ShapeCounts counts;
  switch (spec.shape) {
    case Shape::kChain:
      counts = {.jobs = n, .edges = n - 1, .inputs = 1, .outputs = 1};
      break;
    case Shape::kFan: {
      if (spec.fan_arity_step == 0) {
        counts = {.jobs = n + 2, .edges = 2 * n, .inputs = 1, .outputs = 1};
      } else {
        const std::size_t leaves = fan_leaves(n, spec.fan_arity_step);
        counts = {.jobs = 2 + n + leaves,
                  .edges = n + 2 * leaves,
                  .inputs = 1,
                  .outputs = 1};
      }
      break;
    }
    case Shape::kDiamond: {
      const std::size_t s = spec.diamond_stages;
      counts = {.jobs = 1 + s * (n + 1),
                .edges = 2 * s * n,
                .inputs = 1,
                .outputs = 1};
      break;
    }
    case Shape::kMontage:
      // n project + (n-1) diff + n background + concat/bg_model/img_tbl/
      // m_add/m_shrink/m_jpeg.
      counts = {.jobs = 3 * n + 5, .edges = 6 * n + 1, .inputs = n, .outputs = 1};
      break;
    case Shape::kNgsPipeline:
      counts = {.jobs = 4 * n + 2,
                .edges = 4 * n + 1,
                .inputs = n + 1,
                .outputs = 1};
      break;
    case Shape::kBlast2cap3:
      counts = {.jobs = n + 6, .edges = 4 * n + 4, .inputs = 2, .outputs = 1};
      break;
  }
  return counts;
}

std::string spec_name(const ShapeSpec& spec) {
  return std::string(shape_name(spec.shape)) + "-n" + std::to_string(spec.size) +
         "-s" + std::to_string(spec.seed);
}

CostModel cost_model_for(const ShapeSpec& spec) {
  const ShapeCounts counts = closed_form_counts(spec);
  CostModelParams params = spec.cost;
  params.seed = params.seed ^ mix64(spec.seed);
  return CostModel(params, counts.jobs, counts.inputs + counts.outputs);
}

wms::AbstractWorkflow build_workflow(const ShapeSpec& spec) {
  check_size(spec);
  const CostModel model = cost_model_for(spec);
  const std::size_t n = spec.size;
  const ShapeCounts counts = closed_form_counts(spec);
  AbstractWorkflow wf(spec_name(spec));
  // Ids average well under 24 bytes across every shape; the estimate only
  // sizes the interner's arena, overshoot is harmless.
  wf.reserve(counts.jobs, counts.jobs * 24);
  Builder b{wf, model};
  // Patterns reference dst handles, so they are recorded after every job
  // of the family exists (jobs add in the same order either way — the
  // cost-model ranks, and hence every hint, are unchanged by the knob).
  const bool patterns = spec.edge_patterns;

  switch (spec.shape) {
    case Shape::kChain: {
      std::uint32_t previous = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::vector<FileUse> uses;
        if (i == 0) {
          uses.push_back({"chain_input.dat", LinkType::kInput});
        } else {
          uses.push_back({"chain_" + tag(i - 1, n) + ".dat", LinkType::kInput});
        }
        if (i + 1 == n) {
          uses.push_back({"chain_result.dat", LinkType::kOutput});
        } else {
          uses.push_back({"chain_" + tag(i, n) + ".dat", LinkType::kOutput});
        }
        const std::uint32_t step = b.add("step_" + tag(i, n), "chain_step",
                                         std::move(uses));
        if (!patterns && i > 0) wf.add_dependency(previous, step);
        previous = step;
      }
      if (patterns && n > 1) {
        wf.add_edge_pattern({.src_begin = 0,
                             .dst_begin = 1,
                             .count = static_cast<std::uint32_t>(n - 1),
                             .src_stride = 1,
                             .dst_stride = 1});
      }
      break;
    }

    case Shape::kFan: {
      const std::size_t step = spec.fan_arity_step;
      const std::uint32_t source =
          b.add("source", "fan_source",
                {{"fan_input.dat", LinkType::kInput},
                 {"fanned.dat", LinkType::kOutput}});
      std::vector<FileUse> sink_uses;
      std::vector<std::uint32_t> sink_parents;
      for (std::size_t i = 0; i < n; ++i) {
        const std::string gateway_out = "gate_" + tag(i, n) + ".dat";
        const std::uint32_t gateway = b.add(
            (step == 0 ? "worker_" : "gateway_") + tag(i, n),
            step == 0 ? "fan_worker" : "fan_gateway",
            {{"fanned.dat", LinkType::kInput}, {gateway_out, LinkType::kOutput}});
        if (!(patterns && step == 0)) wf.add_dependency(source, gateway);
        if (step == 0) {
          sink_uses.push_back({gateway_out, LinkType::kInput});
          sink_parents.push_back(gateway);
          continue;
        }
        const std::size_t arity = 1 + i * step;
        for (std::size_t j = 0; j < arity; ++j) {
          const std::string leaf_out =
              "leaf_" + tag(i, n) + "_" + tag(j, arity) + ".dat";
          const std::uint32_t leaf =
              b.add("leaf_" + tag(i, n) + "_" + tag(j, arity), "fan_leaf",
                    {{gateway_out, LinkType::kInput},
                     {leaf_out, LinkType::kOutput}});
          wf.add_dependency(gateway, leaf);
          sink_uses.push_back({leaf_out, LinkType::kInput});
          sink_parents.push_back(leaf);
        }
      }
      sink_uses.push_back({"fan_result.dat", LinkType::kOutput});
      const std::uint32_t sink = b.add("sink", "fan_sink", std::move(sink_uses));
      if (patterns && step == 0) {
        // source -> workers 1..n, workers -> sink; the fan-heavy variant
        // (step > 0) keeps explicit edges — its leaf arities are irregular.
        const auto count = static_cast<std::uint32_t>(n);
        wf.add_edge_pattern({.src_begin = source,
                             .dst_begin = 1,
                             .count = count,
                             .src_stride = 0,
                             .dst_stride = 1});
        wf.add_edge_pattern({.src_begin = 1,
                             .dst_begin = sink,
                             .count = count,
                             .src_stride = 1,
                             .dst_stride = 0});
      } else {
        for (const std::uint32_t parent : sink_parents) {
          wf.add_dependency(parent, sink);
        }
      }
      break;
    }

    case Shape::kDiamond: {
      const std::size_t stages = spec.diamond_stages;
      // Two patterns per stage; past the pattern cap (very deep diamonds)
      // the explicit path takes over transparently.
      const bool stage_patterns =
          patterns && 2 * stages <= wms::WorkflowGraph::kMaxPatterns;
      const std::uint32_t source =
          b.add("source", "diamond_source",
                {{"diamond_input.dat", LinkType::kInput},
                 {"stage_" + tag(0, stages + 1) + ".dat", LinkType::kOutput}});
      std::uint32_t gate = source;
      for (std::size_t t = 0; t < stages; ++t) {
        const std::string stage_in = "stage_" + tag(t, stages + 1) + ".dat";
        std::vector<FileUse> join_uses;
        std::vector<std::uint32_t> mids;
        for (std::size_t j = 0; j < n; ++j) {
          const std::string mid_out =
              "mid_" + tag(t, stages) + "_" + tag(j, n) + ".dat";
          const std::uint32_t mid =
              b.add("mid_" + tag(t, stages) + "_" + tag(j, n), "diamond_work",
                    {{stage_in, LinkType::kInput}, {mid_out, LinkType::kOutput}});
          if (!stage_patterns) wf.add_dependency(gate, mid);
          join_uses.push_back({mid_out, LinkType::kInput});
          mids.push_back(mid);
        }
        join_uses.push_back(
            {t + 1 == stages ? "diamond_result.dat"
                             : "stage_" + tag(t + 1, stages + 1) + ".dat",
             LinkType::kOutput});
        const std::uint32_t join =
            b.add("join_" + tag(t, stages), "diamond_join", std::move(join_uses));
        if (stage_patterns) {
          const auto count = static_cast<std::uint32_t>(n);
          wf.add_edge_pattern({.src_begin = gate,
                               .dst_begin = mids.front(),
                               .count = count,
                               .src_stride = 0,
                               .dst_stride = 1});
          wf.add_edge_pattern({.src_begin = mids.front(),
                               .dst_begin = join,
                               .count = count,
                               .src_stride = 1,
                               .dst_stride = 0});
        } else {
          for (const std::uint32_t mid : mids) wf.add_dependency(mid, join);
        }
        gate = join;
      }
      break;
    }

    case Shape::kMontage: {
      std::vector<std::uint32_t> projects;
      for (std::size_t i = 0; i < n; ++i) {
        projects.push_back(b.add(
            "project_" + tag(i, n), "m_project",
            {{"raw_" + tag(i, n) + ".fits", LinkType::kInput},
             {"proj_" + tag(i, n) + ".fits", LinkType::kOutput}}));
      }
      std::vector<FileUse> concat_uses;
      std::vector<std::uint32_t> diffs;
      for (std::size_t i = 0; i + 1 < n; ++i) {
        const std::string fit = "fit_" + tag(i, n - 1) + ".txt";
        const std::uint32_t diff = b.add(
            "diff_" + tag(i, n - 1), "m_diff_fit",
            {{"proj_" + tag(i, n) + ".fits", LinkType::kInput},
             {"proj_" + tag(i + 1, n) + ".fits", LinkType::kInput},
             {fit, LinkType::kOutput}});
        wf.add_dependency(projects[i], diff);
        wf.add_dependency(projects[i + 1], diff);
        concat_uses.push_back({fit, LinkType::kInput});
        diffs.push_back(diff);
      }
      concat_uses.push_back({"fits.tbl", LinkType::kOutput});
      const std::uint32_t concat =
          b.add("concat_fit", "m_concat_fit", std::move(concat_uses));
      for (const std::uint32_t diff : diffs) wf.add_dependency(diff, concat);
      const std::uint32_t bg_model =
          b.add("bg_model", "m_bg_model",
                {{"fits.tbl", LinkType::kInput},
                 {"corrections.tbl", LinkType::kOutput}});
      wf.add_dependency(concat, bg_model);
      std::vector<FileUse> tbl_uses;
      std::vector<std::uint32_t> backgrounds;
      for (std::size_t i = 0; i < n; ++i) {
        const std::string corr = "corr_" + tag(i, n) + ".fits";
        const std::uint32_t background = b.add(
            "background_" + tag(i, n), "m_background",
            {{"proj_" + tag(i, n) + ".fits", LinkType::kInput},
             {"corrections.tbl", LinkType::kInput},
             {corr, LinkType::kOutput}});
        wf.add_dependency(bg_model, background);
        wf.add_dependency(projects[i], background);
        tbl_uses.push_back({corr, LinkType::kInput});
        backgrounds.push_back(background);
      }
      tbl_uses.push_back({"images.tbl", LinkType::kOutput});
      const std::uint32_t img_tbl =
          b.add("img_tbl", "m_img_tbl", std::move(tbl_uses));
      for (const std::uint32_t background : backgrounds) {
        wf.add_dependency(background, img_tbl);
      }
      const std::uint32_t m_add = b.add("m_add", "m_add",
                                        {{"images.tbl", LinkType::kInput},
                                         {"mosaic.fits", LinkType::kOutput}});
      wf.add_dependency(img_tbl, m_add);
      const std::uint32_t shrink =
          b.add("m_shrink", "m_shrink",
                {{"mosaic.fits", LinkType::kInput},
                 {"mosaic_small.fits", LinkType::kOutput}});
      wf.add_dependency(m_add, shrink);
      const std::uint32_t jpeg = b.add("m_jpeg", "m_jpeg",
                                       {{"mosaic_small.fits", LinkType::kInput},
                                        {"mosaic.jpg", LinkType::kOutput}});
      wf.add_dependency(shrink, jpeg);
      break;
    }

    case Shape::kNgsPipeline: {
      std::vector<FileUse> joint_uses;
      std::vector<std::uint32_t> calls;
      for (std::size_t i = 0; i < n; ++i) {
        const std::string s = tag(i, n);
        const std::uint32_t align = b.add(
            "align_" + s, "ngs_align",
            {{"reads_" + s + ".fastq", LinkType::kInput},
             {"reference.fasta", LinkType::kInput},
             {"aligned_" + s + ".bam", LinkType::kOutput}});
        const std::uint32_t sort = b.add(
            "sort_" + s, "ngs_sort",
            {{"aligned_" + s + ".bam", LinkType::kInput},
             {"sorted_" + s + ".bam", LinkType::kOutput}});
        const std::uint32_t dedup = b.add(
            "dedup_" + s, "ngs_dedup",
            {{"sorted_" + s + ".bam", LinkType::kInput},
             {"dedup_" + s + ".bam", LinkType::kOutput}});
        const std::uint32_t call = b.add(
            "call_" + s, "ngs_call",
            {{"dedup_" + s + ".bam", LinkType::kInput},
             {"variants_" + s + ".vcf", LinkType::kOutput}});
        wf.add_dependency(align, sort);
        wf.add_dependency(sort, dedup);
        wf.add_dependency(dedup, call);
        joint_uses.push_back({"variants_" + s + ".vcf", LinkType::kInput});
        calls.push_back(call);
      }
      joint_uses.push_back({"cohort.vcf", LinkType::kOutput});
      const std::uint32_t joint =
          b.add("joint_genotype", "ngs_joint_genotype", std::move(joint_uses));
      for (const std::uint32_t call : calls) wf.add_dependency(call, joint);
      const std::uint32_t report =
          b.add("report", "ngs_report",
                {{"cohort.vcf", LinkType::kInput},
                 {"cohort_report.txt", LinkType::kOutput}});
      wf.add_dependency(joint, report);
      break;
    }

    case Shape::kBlast2cap3: {
      const std::uint32_t transcripts = b.add(
          "create_transcripts_list", "create_list",
          {{"transcripts.fasta", LinkType::kInput},
           {"transcripts_dict.txt", LinkType::kOutput}});
      const std::uint32_t alignments = b.add(
          "create_alignments_list", "create_list",
          {{"alignments.out", LinkType::kInput},
           {"alignments_list.txt", LinkType::kOutput}});
      std::vector<FileUse> split_uses{{"alignments_list.txt", LinkType::kInput}};
      for (std::size_t i = 0; i < n; ++i) {
        split_uses.push_back({"protein_" + tag(i, n) + ".txt", LinkType::kOutput});
      }
      const std::uint32_t split =
          b.add("split", "split_alignments", std::move(split_uses));
      wf.add_dependency(alignments, split);
      std::vector<FileUse> merge_uses;
      std::vector<FileUse> unjoined_uses{{"transcripts_dict.txt", LinkType::kInput}};
      std::vector<std::uint32_t> workers;
      for (std::size_t i = 0; i < n; ++i) {
        const std::string s = tag(i, n);
        const std::uint32_t worker = b.add(
            "run_cap3_" + s, "run_cap3",
            {{"transcripts_dict.txt", LinkType::kInput},
             {"protein_" + s + ".txt", LinkType::kInput},
             {"joined_" + s + ".fasta", LinkType::kOutput},
             {"members_" + s + ".txt", LinkType::kOutput}});
        if (!patterns) {
          wf.add_dependency(transcripts, worker);
          wf.add_dependency(split, worker);
        }
        merge_uses.push_back({"joined_" + s + ".fasta", LinkType::kInput});
        unjoined_uses.push_back({"members_" + s + ".txt", LinkType::kInput});
        workers.push_back(worker);
      }
      merge_uses.push_back({"joined.fasta", LinkType::kOutput});
      const std::uint32_t merge =
          b.add("merge_joined", "merge_joined", std::move(merge_uses));
      unjoined_uses.push_back({"unjoined.fasta", LinkType::kOutput});
      const std::uint32_t unjoined =
          b.add("find_unjoined", "find_unjoined", std::move(unjoined_uses));
      wf.add_dependency(transcripts, unjoined);
      if (patterns) {
        // The 4n regular edges as 4 patterns: {split, transcripts} fan out
        // to the workers, the workers fan in to {merge, unjoined}.
        const std::uint32_t first_worker = workers.front();
        const auto count = static_cast<std::uint32_t>(n);
        wf.add_edge_pattern({.src_begin = split,
                             .dst_begin = first_worker,
                             .count = count,
                             .src_stride = 0,
                             .dst_stride = 1});
        wf.add_edge_pattern({.src_begin = transcripts,
                             .dst_begin = first_worker,
                             .count = count,
                             .src_stride = 0,
                             .dst_stride = 1});
        wf.add_edge_pattern({.src_begin = first_worker,
                             .dst_begin = merge,
                             .count = count,
                             .src_stride = 1,
                             .dst_stride = 0});
        wf.add_edge_pattern({.src_begin = first_worker,
                             .dst_begin = unjoined,
                             .count = count,
                             .src_stride = 1,
                             .dst_stride = 0});
      } else {
        for (const std::uint32_t worker : workers) {
          wf.add_dependency(worker, merge);
          wf.add_dependency(worker, unjoined);
        }
      }
      const std::uint32_t final_merge =
          b.add("final_merge", "final_merge",
                {{"joined.fasta", LinkType::kInput},
                 {"unjoined.fasta", LinkType::kInput},
                 {"assembly.fasta", LinkType::kOutput}});
      wf.add_dependency(merge, final_merge);
      wf.add_dependency(unjoined, final_merge);
      break;
    }
  }

  wf.validate();
  return wf;
}

wms::SiteCatalog generator_site_catalog() {
  wms::SiteCatalog sites;
  sites.add({"sandhills", 64, /*software_preinstalled=*/true,
             "/work/group/scratch", /*stage_bandwidth_bps=*/100e6});
  sites.add({"osg", 150, /*software_preinstalled=*/false, "/tmp/osg-scratch",
             /*stage_bandwidth_bps=*/10e6});
  return sites;
}

wms::TransformationCatalog generator_transformation_catalog(
    const wms::AbstractWorkflow& workflow) {
  wms::TransformationCatalog tc;
  const std::uint64_t osg_bundle_bytes = 350ull * 1024 * 1024;
  std::vector<std::string> seen;
  for (const auto& job : workflow.jobs()) {
    if (std::find(seen.begin(), seen.end(), job.transformation) != seen.end()) {
      continue;
    }
    seen.push_back(job.transformation);
    tc.add(job.transformation, "sandhills",
           {"/util/opt/" + job.transformation, /*installed=*/true});
    tc.add(job.transformation, "osg",
           {"http://stash/workload/" + job.transformation + ".tar.gz",
            /*installed=*/false, osg_bundle_bytes});
  }
  return tc;
}

wms::ReplicaCatalog generator_replica_catalog(const wms::AbstractWorkflow& workflow,
                                              const ShapeSpec& spec) {
  const CostModel model = cost_model_for(spec);
  wms::ReplicaCatalog rc;
  std::size_t rank = 0;
  for (const auto& lfn : workflow.workflow_inputs()) {
    rc.add(lfn, {"/data/" + lfn, "local", model.file_bytes(rank++)});
  }
  return rc;
}

std::uint64_t expected_output_bytes(const ShapeSpec& spec) {
  const ShapeCounts counts = closed_form_counts(spec);
  const CostModel model = cost_model_for(spec);
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < counts.outputs; ++i) {
    bytes += model.file_bytes(counts.inputs + i);
  }
  return bytes;
}

wms::ConcreteWorkflow plan_shape(const ShapeSpec& spec, const std::string& site,
                                 std::size_t cluster_factor) {
  const auto workflow = build_workflow(spec);
  wms::PlannerOptions options;
  options.target_site = site;
  options.cluster_factor = cluster_factor;
  options.expected_output_bytes = expected_output_bytes(spec);
  return wms::plan(workflow, generator_site_catalog(),
                   generator_transformation_catalog(workflow),
                   generator_replica_catalog(workflow, spec), options);
}

}  // namespace pga::workload
