// Per-task CPU and per-file IO cost models for generated workflows.
//
// Reuses the calibration idiom of pga::core::WorkloadParams (workload.cpp):
// Zipf-shaped weights with mild lognormal noise, raised to a superlinear
// exponent and scaled by a calibrated alpha so the *total* hits an explicit
// target — here `mean * count` instead of the paper's 100-hour serial run.
// That keeps totals comparable across distributions: switching kConstant ->
// kZipf redistributes work over tasks without changing the aggregate, so a
// policy-ablation delta is a scheduling effect, never a workload-size one.
//
// Everything is deterministic in (params, task_count, file_count): the CPU
// and IO streams are seeded independently, so changing the file count never
// shifts task costs and vice versa.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pga::workload {

/// How per-task (or per-file) costs are drawn.
enum class CostDistribution { kConstant, kUniform, kZipf };

[[nodiscard]] const char* distribution_name(CostDistribution distribution);

/// How drawn CPU costs map onto task ranks (== DAG build order). Shuffled
/// is the realistic default; ascending makes rank 0 the cheapest task —
/// the adversarial layout for FIFO release order, since greedy policies
/// then pay the straggler tail a cost-aware policy avoids.
enum class CostOrder { kShuffled, kAscending, kDescending };

/// Knobs for one workflow's cost model.
struct CostModelParams {
  // ----------------------------------------------------------- CPU model
  CostDistribution cpu = CostDistribution::kZipf;
  double cpu_mean_seconds = 300;  ///< calibration target: mean per task
  double cpu_min_seconds = 60;    ///< kUniform draw bounds
  double cpu_max_seconds = 600;
  double cpu_zipf_s = 0.40;       ///< rank skew (WorkloadParams::zipf_s idiom)
  double cpu_beta = 1.6;          ///< superlinear cost exponent (cost_beta)
  double cpu_noise_sigma = 0.25;  ///< lognormal wobble on the Zipf weights
  CostOrder cpu_order = CostOrder::kShuffled;

  // ------------------------------------------------------------ IO model
  /// Per-file bytes: ranks follow the lexicographic order of the DAX's
  /// workflow_inputs() followed by its workflow_outputs(). These drive
  /// replica sizes, hence the planner's stage-in/out pricing and the
  /// PR-3 data layer's modeled transfers.
  CostDistribution io = CostDistribution::kUniform;
  std::uint64_t io_mean_bytes = 64ull * 1024 * 1024;
  std::uint64_t io_min_bytes = 8ull * 1024 * 1024;
  std::uint64_t io_max_bytes = 128ull * 1024 * 1024;
  double io_zipf_s = 0.40;

  std::uint64_t seed = 42;
};

/// Deterministic per-rank cost lookup, drawn once at construction.
class CostModel {
 public:
  /// Throws InvalidArgument on non-positive means, inverted uniform
  /// bounds, or cpu_beta < 1 (matching WorkloadModel's contract).
  CostModel(const CostModelParams& params, std::size_t task_count,
            std::size_t file_count);

  [[nodiscard]] const CostModelParams& params() const { return params_; }

  /// CPU-seconds of the task at `rank` (its position in DAG build order).
  [[nodiscard]] double task_seconds(std::size_t rank) const;
  /// Bytes of the file at `rank` (inputs first, then outputs).
  [[nodiscard]] std::uint64_t file_bytes(std::size_t rank) const;

  [[nodiscard]] std::size_t task_count() const { return task_seconds_.size(); }
  [[nodiscard]] std::size_t file_count() const { return file_bytes_.size(); }
  [[nodiscard]] double total_task_seconds() const { return total_seconds_; }
  [[nodiscard]] std::uint64_t total_file_bytes() const { return total_bytes_; }

 private:
  CostModelParams params_;
  std::vector<double> task_seconds_;
  std::vector<std::uint64_t> file_bytes_;
  double total_seconds_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace pga::workload
