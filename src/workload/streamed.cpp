#include "workload/streamed.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace pga::workload {

using common::InvalidArgument;
using common::WorkflowError;

namespace {

using Clock = std::chrono::steady_clock;

/// Seconds since `mark`, advancing `mark` to now.
double lap(Clock::time_point& mark) {
  const auto now = Clock::now();
  const double s = std::chrono::duration<double>(now - mark).count();
  mark = now;
  return s;
}

/// generator.cpp's zero-padded tag: sort order == build order at any size.
std::string tag(std::size_t i, std::size_t count) {
  std::string digits = std::to_string(i);
  const std::size_t width = std::to_string(count > 0 ? count - 1 : 0).size();
  if (digits.size() < width) digits.insert(0, width - digits.size(), '0');
  return digits;
}

std::uint32_t u32(std::size_t v) { return static_cast<std::uint32_t>(v); }

}  // namespace

bool streamed_build_supported(const ShapeSpec& spec) {
  return spec.shape == Shape::kBlast2cap3;
}

wms::ConcreteWorkflow build_concrete_streamed(const ShapeSpec& spec,
                                              const StreamedBuildOptions& options,
                                              StreamedBuildStats* stats) {
  if (!streamed_build_supported(spec)) {
    throw InvalidArgument(std::string("no streamed closed form for shape ") +
                          shape_name(spec.shape));
  }
  if (options.cluster_size == 0) {
    throw InvalidArgument("cluster_size must be >= 1");
  }
  const wms::SiteCatalog sites = generator_site_catalog();
  if (!sites.has(options.site)) {
    throw WorkflowError("unknown target site: " + options.site);
  }
  const wms::SiteEntry& site = sites.site(options.site);

  Clock::time_point mark = Clock::now();
  const std::size_t n = spec.size;
  const CostModel model = cost_model_for(spec);
  StreamedBuildStats local;
  StreamedBuildStats& out = stats != nullptr ? *stats : local;
  out = {};
  out.model_seconds = lap(mark);

  // Everything below bakes in the generator catalogs' shape, so the result
  // matches plan_shape() exactly: transformations are installed wherever
  // software is preinstalled and a ~350 MB stageable bundle elsewhere; the
  // replica catalog holds one local copy per input, sized by IO rank.
  const bool needs_setup = !site.software_preinstalled;
  const std::uint64_t software_bytes =
      needs_setup ? 350ull * 1024 * 1024 : 0;
  // File ranks follow sorted workflow_inputs() then outputs():
  // alignments.out=0, transcripts.fasta=1, assembly.fasta=2.
  const std::uint64_t in_bytes = model.file_bytes(0) + model.file_bytes(1);
  const std::uint64_t out_bytes = model.file_bytes(2);
  const double bw = site.stage_bandwidth_bps;
  const wms::PlannerOptions defaults;
  const double stage_in_hint =
      defaults.stage_in_seconds +
      (bw > 0 ? static_cast<double>(in_bytes) / bw : 0.0);
  const double stage_out_hint =
      defaults.stage_out_seconds +
      (out_bytes > 0 && bw > 0 ? static_cast<double>(out_bytes) / bw : 0.0);

  const auto fill_compute = [&](wms::ConcreteJob& job, std::string id,
                                const char* transformation, std::size_t rank) {
    job.id = std::move(id);
    job.transformation = transformation;
    job.cpu_seconds_hint = model.task_seconds(rank);
    job.needs_software_setup = needs_setup;
    job.software_bytes = software_bytes;
  };
  const auto fill_stage_in = [&](wms::ConcreteJob& job) {
    job.id = "stage_in_0";
    job.transformation = "pegasus::transfer";
    job.kind = wms::JobKind::kStageIn;
    job.args = {"alignments.out", "transcripts.fasta"};
    job.staged_bytes = in_bytes;
    job.cpu_seconds_hint = stage_in_hint;
  };
  const auto fill_stage_out = [&](wms::ConcreteJob& job) {
    job.id = "stage_out_0";
    job.transformation = "pegasus::transfer";
    job.kind = wms::JobKind::kStageOut;
    job.args = {"assembly.fasta"};
    job.staged_bytes = out_bytes;
    job.cpu_seconds_hint = stage_out_hint;
  };
  const std::size_t width = std::to_string(n - 1).size();

  if (options.cluster_size == 1) {
    // ------------------------------------------------- unclustered stream
    // Concrete handle layout (== plan()'s add order): transcripts=0,
    // alignments=1, split=2, workers 3..n+2, merge=n+3, unjoined=n+4,
    // final=n+5, stage_in_0=n+6, stage_out_0=n+7.
    const std::size_t jobs = n + 8;
    wms::ConcreteWorkflow concrete(spec_name(spec), site.name);
    concrete.reserve(jobs, n * (10 + width) + 160);
    wms::ConcreteJob* arr = concrete.begin_bulk(jobs);
    fill_compute(arr[0], "create_transcripts_list", "create_list", 0);
    fill_compute(arr[1], "create_alignments_list", "create_list", 1);
    fill_compute(arr[2], "split", "split_alignments", 2);
    const auto fill_workers = [&](std::size_t begin, std::size_t end,
                                  std::size_t) {
      for (std::size_t i = begin; i < end; ++i) {
        fill_compute(arr[3 + i], "run_cap3_" + tag(i, n), "run_cap3", 3 + i);
      }
    };
    if (options.pool != nullptr && n > options.chunk) {
      options.pool->parallel_for(n, options.chunk, fill_workers);
    } else {
      fill_workers(0, n, 0);
    }
    fill_compute(arr[n + 3], "merge_joined", "merge_joined", n + 3);
    fill_compute(arr[n + 4], "find_unjoined", "find_unjoined", n + 4);
    fill_compute(arr[n + 5], "final_merge", "final_merge", n + 5);
    fill_stage_in(arr[n + 6]);
    fill_stage_out(arr[n + 7]);
    out.fill_seconds = lap(mark);

    concrete.finish_bulk();
    out.intern_seconds = lap(mark);

    if (options.edge_patterns) {
      // Same pattern order plan() propagates from the abstract workflow.
      concrete.add_edge_pattern({.src_begin = 2,
                                 .dst_begin = 3,
                                 .count = u32(n),
                                 .src_stride = 0,
                                 .dst_stride = 1});
      concrete.add_edge_pattern({.src_begin = 0,
                                 .dst_begin = 3,
                                 .count = u32(n),
                                 .src_stride = 0,
                                 .dst_stride = 1});
      concrete.add_edge_pattern({.src_begin = 3,
                                 .dst_begin = u32(n + 3),
                                 .count = u32(n),
                                 .src_stride = 1,
                                 .dst_stride = 0});
      concrete.add_edge_pattern({.src_begin = 3,
                                 .dst_begin = u32(n + 4),
                                 .count = u32(n),
                                 .src_stride = 1,
                                 .dst_stride = 0});
      out.pattern_edges = 4 * n;
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t worker = u32(3 + i);
        concrete.add_dependency(2, worker);
        concrete.add_dependency(0, worker);
        concrete.add_dependency(worker, u32(n + 3));
        concrete.add_dependency(worker, u32(n + 4));
      }
    }
    concrete.add_dependency(1, 2);                    // alignments -> split
    concrete.add_dependency(0, u32(n + 4));           // transcripts -> unjoined
    concrete.add_dependency(u32(n + 3), u32(n + 5));  // merge -> final
    concrete.add_dependency(u32(n + 4), u32(n + 5));  // unjoined -> final
    concrete.add_dependency(u32(n + 6), 0);           // stage_in -> transcripts
    concrete.add_dependency(u32(n + 6), 1);           // stage_in -> alignments
    concrete.add_dependency(u32(n + 5), u32(n + 7));  // final -> stage_out
    out.wire_seconds = lap(mark);
    out.jobs = jobs;
    out.explicit_edges = concrete.edge_count() - out.pattern_edges;
    return concrete;
  }

  // --------------------------------------------------- clustered stream
  // plan()'s grouping for blast2cap3: {create_transcripts_list,
  // create_alignments_list} share signature "create_list|" -> cluster_0;
  // split/merge/unjoined/final are lone in their groups; the workers chunk
  // into cluster_1.. with a trailing lone member (n % k == 1) staying an
  // ordinary compute job. Cluster ids are not zero-padded, so this path
  // wires explicit cluster-level edges only (4W + 6 of them).
  const std::size_t k = options.cluster_size;
  const std::size_t chunks = (n + k - 1) / k;  // worker chunks (W)
  const std::size_t jobs = chunks + 7;
  wms::ConcreteWorkflow concrete(spec_name(spec), site.name);
  concrete.reserve(jobs, chunks * 12 + 160);
  wms::ConcreteJob* arr = concrete.begin_bulk(jobs);

  arr[0].id = "cluster_0";
  arr[0].transformation = "create_list";
  arr[0].kind = wms::JobKind::kClustered;
  arr[0].cpu_seconds_hint = model.task_seconds(0) + model.task_seconds(1);
  arr[0].needs_software_setup = needs_setup;
  arr[0].software_bytes = software_bytes;
  fill_compute(arr[1], "split", "split_alignments", 2);
  const auto fill_chunks = [&](std::size_t begin, std::size_t end,
                               std::size_t) {
    for (std::size_t c = begin; c < end; ++c) {
      const std::size_t start = c * k;
      const std::size_t stop = std::min(n, start + k);
      wms::ConcreteJob& job = arr[2 + c];
      if (stop - start == 1) {
        fill_compute(job, "run_cap3_" + tag(start, n), "run_cap3", 3 + start);
        continue;
      }
      job.id = "cluster_" + std::to_string(1 + c);
      job.transformation = "run_cap3";
      job.kind = wms::JobKind::kClustered;
      job.needs_software_setup = needs_setup;
      job.software_bytes = software_bytes;
      // Ascending member order, like plan()'s += over the group slice.
      double hint = 0;
      for (std::size_t i = start; i < stop; ++i) hint += model.task_seconds(3 + i);
      job.cpu_seconds_hint = hint;
    }
  };
  const std::size_t chunk_jobs = std::max<std::size_t>(1, options.chunk / k);
  if (options.pool != nullptr && chunks > chunk_jobs) {
    options.pool->parallel_for(chunks, chunk_jobs, fill_chunks);
  } else {
    fill_chunks(0, chunks, 0);
  }
  fill_compute(arr[2 + chunks], "merge_joined", "merge_joined", n + 3);
  fill_compute(arr[3 + chunks], "find_unjoined", "find_unjoined", n + 4);
  fill_compute(arr[4 + chunks], "final_merge", "final_merge", n + 5);
  fill_stage_in(arr[5 + chunks]);
  fill_stage_out(arr[6 + chunks]);
  out.fill_seconds = lap(mark);

  concrete.finish_bulk();
  concrete.set_constituents(
      0, {"create_transcripts_list", "create_alignments_list"});
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t start = c * k;
    const std::size_t stop = std::min(n, start + k);
    if (stop - start > 1) {
      concrete.set_cluster_range(
          u32(2 + c), {"run_cap3_", start, stop - start, n});
    }
  }
  out.intern_seconds = lap(mark);

  concrete.add_dependency(0, 1);  // cluster_0 -> split
  concrete.add_dependency(0, u32(3 + chunks));  // cluster_0 -> unjoined
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::uint32_t worker = u32(2 + c);
    concrete.add_dependency(0, worker);
    concrete.add_dependency(1, worker);
    concrete.add_dependency(worker, u32(2 + chunks));  // -> merge
    concrete.add_dependency(worker, u32(3 + chunks));  // -> unjoined
  }
  concrete.add_dependency(u32(2 + chunks), u32(4 + chunks));  // merge -> final
  concrete.add_dependency(u32(3 + chunks), u32(4 + chunks));  // unjoined -> final
  concrete.add_dependency(u32(5 + chunks), 0);  // stage_in -> cluster_0
  concrete.add_dependency(u32(4 + chunks), u32(6 + chunks));  // final -> out
  out.wire_seconds = lap(mark);
  out.jobs = jobs;
  out.explicit_edges = concrete.edge_count();
  return concrete;
}

wms::ReplicaCatalog streamed_replica_catalog(const ShapeSpec& spec) {
  if (!streamed_build_supported(spec)) {
    throw InvalidArgument(std::string("no streamed closed form for shape ") +
                          shape_name(spec.shape));
  }
  const CostModel model = cost_model_for(spec);
  wms::ReplicaCatalog rc;
  rc.add("alignments.out", {"/data/alignments.out", "local", model.file_bytes(0)});
  rc.add("transcripts.fasta",
         {"/data/transcripts.fasta", "local", model.file_bytes(1)});
  return rc;
}

}  // namespace pga::workload
