// Parameterized workflow-topology generator, in the spirit of WfBench
// (Coleman et al., PAPERS.md): every scheduler and data-layer claim in this
// repo was demonstrated on one DAG shape — the paper's blast2cap3
// split/merge pipeline — so this module generates *families* of shapes
// through one API to test whether those claims generalize.
//
// Six topologies, every one emitted through the PR-4 handle-indexed fast
// path (handle-returning add_job + add_dependency(u32,u32), no string
// lookups on edges), with per-task CPU hints and per-file bytes drawn from
// a CostModel so the planner prices stage-in/out realistically and the
// PR-3 data layer sees genuine transfer volumes:
//
//   chain       t0 -> t1 -> ... -> t_{n-1}
//   fan         source -> n gateways -> (arity_i leaves each) -> sink;
//               arity_i = 1 + i*fan_arity_step (step 0: the classic
//               fan-out/fan-in with no leaf level)
//   diamond     source -> [n mids -> join] x diamond_stages
//   montage     Montage-like level structure (Berriman et al.):
//               n mProject -> n-1 mDiffFit -> mConcatFit -> mBgModel ->
//               n mBackground -> mImgtbl -> mAdd -> mShrink -> mJPEG
//   ngs         NGS-pipeline-like per-sample chains (Schiefer et al.):
//               n x (align -> sort -> dedup -> call) -> joint_genotype ->
//               report — "chain-heavy"
//   blast2cap3  the paper's pipeline expressed through this API
//
// Node/edge/input/output counts have closed forms (closed_form_counts) so
// property tests can assert structure exactly for any (shape, size, seed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "wms/catalog.hpp"
#include "wms/dax.hpp"
#include "wms/planner.hpp"
#include "workload/cost_model.hpp"

namespace pga::workload {

/// The generator's shape taxonomy.
enum class Shape { kChain, kFan, kDiamond, kMontage, kNgsPipeline, kBlast2cap3 };

[[nodiscard]] const char* shape_name(Shape shape);
/// Inverse of shape_name; throws InvalidArgument on unknown names.
[[nodiscard]] Shape parse_shape(const std::string& name);
/// Every shape, in a fixed sweep order.
[[nodiscard]] std::vector<Shape> all_shapes();

/// One generated-workflow request: a shape, its scale knob and cost model.
struct ShapeSpec {
  Shape shape = Shape::kDiamond;
  /// The scale knob ("n"): workers per level (fan/diamond), tiles
  /// (montage), samples (ngs), chunks (blast2cap3), chain length.
  std::size_t size = 100;
  std::size_t diamond_stages = 2;  ///< parallel stages in the diamond
  /// Fan: gateway i carries 1 + i*step leaf tasks. 0 = plain
  /// fan-out/fan-in; >0 = "fan-heavy" with ascending widths, the
  /// adversarial layout for width-blind release order.
  std::size_t fan_arity_step = 0;
  /// Instance seed, folded into the cost model's stream so two specs
  /// differing only in seed share topology but not costs.
  std::uint64_t seed = 42;
  CostModelParams cost{};
  /// Emit the regular fan-out/fan-in families as EdgePattern records
  /// (O(1) storage per family) instead of materialized edge lists. The
  /// adjacency every consumer observes is identical either way (the ids
  /// are zero-padded, so arithmetic handle runs are name-monotonic);
  /// chain, fan (step 0), diamond (<= 32 stages) and blast2cap3 compress,
  /// montage/ngs and fan-heavy keep explicit edges.
  bool edge_patterns = false;
};

/// Closed-form structure of build_workflow(spec)'s result.
struct ShapeCounts {
  std::size_t jobs = 0;
  std::size_t edges = 0;
  std::size_t inputs = 0;   ///< external inputs (need replicas)
  std::size_t outputs = 0;  ///< final outputs (stage-out targets)
};
/// Throws InvalidArgument when `spec.size` is below the shape's minimum
/// (montage needs >= 2, everything else >= 1).
[[nodiscard]] ShapeCounts closed_form_counts(const ShapeSpec& spec);

/// "<shape>-n<size>-s<seed>", the generated workflow's name.
[[nodiscard]] std::string spec_name(const ShapeSpec& spec);

/// The spec's cost model, sized from the closed forms with the instance
/// seed folded in. Task ranks follow DAG build order; file ranks follow
/// workflow_inputs() then workflow_outputs().
[[nodiscard]] CostModel cost_model_for(const ShapeSpec& spec);

/// Builds the abstract workflow: topology via the handle fast path, file
/// uses for planner staging, CPU hints from the cost model. Validated and
/// acyclic by construction.
[[nodiscard]] wms::AbstractWorkflow build_workflow(const ShapeSpec& spec);

/// The paper's two sites (campus cluster with preinstalled software at
/// 100 MB/s; opportunistic grid staging at 10 MB/s), so generated shapes
/// run on the same platform pair every blast2cap3 result used.
[[nodiscard]] wms::SiteCatalog generator_site_catalog();

/// Every transformation of `workflow` on both sites: installed on
/// sandhills, a stageable ~350 MB bundle on osg (the Fig. 3 overhead).
[[nodiscard]] wms::TransformationCatalog generator_transformation_catalog(
    const wms::AbstractWorkflow& workflow);

/// One "local" (submit-host) replica per external input, sized from the
/// spec's IO model — this is where the data layer gets its stage-in bytes.
[[nodiscard]] wms::ReplicaCatalog generator_replica_catalog(
    const wms::AbstractWorkflow& workflow, const ShapeSpec& spec);

/// Expected bytes of the final outputs (the IO model's output ranks);
/// plumbed into PlannerOptions::expected_output_bytes so stage-out is
/// priced like stage-in.
[[nodiscard]] std::uint64_t expected_output_bytes(const ShapeSpec& spec);

/// Convenience: build + catalogs + plan for `site` ("sandhills"/"osg").
[[nodiscard]] wms::ConcreteWorkflow plan_shape(const ShapeSpec& spec,
                                               const std::string& site,
                                               std::size_t cluster_factor = 1);

}  // namespace pga::workload
