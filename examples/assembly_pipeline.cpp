// The general transcriptome assembly pipeline of the paper's Fig. 1:
//
//   raw reads -> preprocessing (quality trim/filter) -> de novo assembly
//   -> redundancy reduction (blast2cap3, protein-guided) -> validation
//
// All stages run for real on synthetic data with ground truth, so the
// final validation can measure what the paper's §II cites from Krasileva
// et al.: protein-guided merging reduces the transcript catalogue and
// avoids artificially fused sequences.
//
//   ./assembly_pipeline [seed]
#include <algorithm>
#include <cstdio>
#include <map>

#include "align/blastx.hpp"
#include "assembly/cap3.hpp"
#include "assembly/metrics.hpp"
#include "assembly/validation.hpp"
#include "b2c3/cluster.hpp"
#include "bio/fastq.hpp"
#include "bio/transcriptome.hpp"
#include "common/rng.hpp"

int main(int argc, char** argv) {
  using namespace pga;
  const std::uint64_t seed = argc > 1 ? std::stoull(argv[1]) : 11;

  std::printf("== Fig. 1 transcriptome assembly pipeline ==\n\n");

  // Ground-truth gene models.
  bio::TranscriptomeParams params;
  params.families = 10;
  params.protein_min = 100;
  params.protein_max = 200;
  params.fragment_min_frac = 0.6;
  params.seed = seed;
  const auto txm = bio::generate_transcriptome(params);

  // --- Stage 1: sequencing + preprocessing (data cleaning) -------------
  common::Rng rng(seed);
  const auto raw_reads = bio::simulate_reads(txm, /*reads_per_gene=*/30,
                                             /*read_length=*/100, rng);
  bio::QcParams qc;
  bio::QcReport qc_report;
  const auto clean_reads = bio::preprocess(raw_reads, qc, &qc_report);
  std::printf("preprocessing: %zu raw reads -> %zu passed "
              "(%zu too short, %zu N-rich, %zu bases trimmed)\n",
              qc_report.input_reads, qc_report.passed_reads,
              qc_report.dropped_short, qc_report.dropped_n,
              qc_report.bases_trimmed);

  // --- Stage 2: de novo assembly of reads into transcripts -------------
  assembly::AssemblyOptions read_asm;
  read_asm.overlap.min_overlap = 40;
  read_asm.overlap.min_identity = 92;
  read_asm.prefix = "DeNovo";
  const auto de_novo = assembly::assemble(clean_reads, read_asm);
  std::printf("de novo assembly: %zu reads -> %zu contigs + %zu singlets\n",
              clean_reads.size(), de_novo.contigs.size(), de_novo.singlets.size());

  // The draft transcript catalogue the paper starts from is the redundant
  // fragment set; use the generator's transcripts (they play the role of
  // the 236,529-entry transcripts.fasta).
  const auto& transcripts = txm.transcripts;

  // --- Stage 3a: baseline — whole-dataset CAP3 (nucleotide-only) -------
  const auto cap3_only = assembly::assemble(transcripts);
  const auto cap3_metrics =
      assembly::compute_metrics(transcripts.size(), cap3_only, txm.transcript_gene);

  // --- Stage 3b: blast2cap3 — protein-guided merging -------------------
  const align::BlastxSearch search(txm.proteins);
  const auto hits = search.search_all(transcripts);
  const auto clusters = b2c3::cluster_by_best_hit(hits);
  assembly::AssemblyResult guided;
  std::map<std::string, const bio::SeqRecord*> by_id;
  for (const auto& t : transcripts) by_id[t.id] = &t;
  std::size_t clustered_inputs = 0;
  for (const auto& cluster : clusters.clusters) {
    std::vector<bio::SeqRecord> members;
    for (const auto& id : cluster.transcripts) members.push_back(*by_id.at(id));
    clustered_inputs += members.size();
    assembly::AssemblyOptions opt;
    opt.prefix = cluster.protein_id + ".Contig";
    auto result = assembly::assemble(members, opt);
    for (auto& c : result.contigs) guided.contigs.push_back(std::move(c));
    for (auto& s : result.singlets) guided.singlets.push_back(std::move(s));
  }
  // Transcripts with no hit pass through unmerged.
  for (const auto& t : transcripts) {
    bool in_cluster = false;
    for (const auto& cluster : clusters.clusters) {
      if (std::binary_search(cluster.transcripts.begin(), cluster.transcripts.end(),
                             t.id)) {
        in_cluster = true;
        break;
      }
    }
    if (!in_cluster) guided.singlets.push_back(t);
  }
  const auto guided_metrics =
      assembly::compute_metrics(transcripts.size(), guided, txm.transcript_gene);

  // --- Stage 4: validation against ground truth ------------------------
  std::printf("\n%-28s %12s %12s\n", "redundancy reduction", "CAP3-only",
              "blast2cap3");
  std::printf("%-28s %12zu %12zu\n", "input transcripts",
              cap3_metrics.input_sequences, guided_metrics.input_sequences);
  std::printf("%-28s %12zu %12zu\n", "output sequences",
              cap3_metrics.output_sequences, guided_metrics.output_sequences);
  std::printf("%-28s %11.1f%% %11.1f%%\n", "reduction",
              cap3_metrics.reduction_percent, guided_metrics.reduction_percent);
  std::printf("%-28s %12zu %12zu\n", "artificially fused contigs",
              cap3_metrics.fused_contigs, guided_metrics.fused_contigs);
  std::printf("%-28s %12zu %12zu\n", "artificially fused sequences",
              cap3_metrics.fused_sequences, guided_metrics.fused_sequences);
  std::printf("%-28s %12zu %12zu\n", "N50 (bases)", cap3_metrics.consensus_n50,
              guided_metrics.consensus_n50);

  // Gene-recovery validation (how much of the ground truth either
  // assembly reconstructs).
  std::vector<bio::SeqRecord> guided_records;
  for (const auto& c : guided.contigs) guided_records.push_back({c.id, "", c.consensus});
  for (const auto& s : guided.singlets) guided_records.push_back(s);
  const auto cap3_validation = assembly::validate_assembly(
      txm, cap3_only.all_records(), {.min_identity = 90.0, .min_coverage = 0.8});
  const auto guided_validation = assembly::validate_assembly(
      txm, guided_records, {.min_identity = 90.0, .min_coverage = 0.8});
  std::printf("%-28s %10.0f%% %10.0f%%\n", "genes recovered (>=80% cov)",
              100.0 * cap3_validation.recovery_rate(),
              100.0 * guided_validation.recovery_rate());
  std::printf("%-28s %10.0f%% %10.0f%%\n", "mean gene coverage",
              100.0 * cap3_validation.mean_coverage,
              100.0 * guided_validation.mean_coverage);

  std::printf("\npaper claim (§II): blast2cap3 'generates fewer artificially fused\n"
              "sequences compared to assembling the entire dataset with CAP3' -> %s\n",
              guided_metrics.fused_sequences <= cap3_metrics.fused_sequences
                  ? "REPRODUCED"
                  : "NOT reproduced");
  return 0;
}
