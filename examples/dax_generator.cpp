// DAX generator: emits the abstract blast2cap3 workflow as DAX XML (the
// format Pegasus plans from) and shows the concrete plan for a site —
// the Fig. 2 (Sandhills) vs. Fig. 3 (OSG) difference made visible.
//
//   ./dax_generator [--platform sandhills|osg] [--setup-jobs] [--dot] [n] [out]
//
// With --dot the concrete plan is emitted as Graphviz DOT instead of the
// abstract DAX XML (pipe through `dot -Tpng` to draw Fig. 2/Fig. 3).
#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/fsutil.hpp"
#include "core/b2c3_workflow.hpp"
#include "wms/dax_xml.hpp"
#include "wms/dot.hpp"

int main(int argc, char** argv) {
  using namespace pga;
  std::string platform = "sandhills";
  std::size_t n = 10;
  std::string out_path;
  bool explicit_setup = false;
  bool emit_dot = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--platform") == 0 && i + 1 < argc) {
      platform = argv[++i];
    } else if (std::strcmp(argv[i], "--setup-jobs") == 0) {
      explicit_setup = true;
    } else if (std::strcmp(argv[i], "--dot") == 0) {
      emit_dot = true;
    } else if (out_path.empty() && std::isdigit(static_cast<unsigned char>(argv[i][0]))) {
      n = std::stoul(argv[i]);
    } else {
      out_path = argv[i];
    }
  }

  const core::B2c3WorkflowSpec spec{.n = n};
  const auto dax = core::build_blast2cap3_dax(spec);

  // Plan it for the chosen site — the paper's planning stage.
  wms::PlannerOptions options;
  options.target_site = platform;
  options.explicit_setup_jobs = explicit_setup;
  const auto concrete =
      wms::plan(dax, core::paper_site_catalog(), core::paper_transformation_catalog(),
                core::paper_replica_catalog(spec), options);

  const std::string output = emit_dot ? wms::to_dot(concrete) : wms::to_dax_xml(dax);
  if (out_path.empty()) {
    std::printf("%s\n", output.c_str());
  } else {
    pga::common::write_file(out_path, output);
    std::printf("wrote %s (%zu jobs, %zu edges)\n", out_path.c_str(),
                dax.jobs().size(), dax.edge_count());
  }

  std::size_t flagged = 0;
  for (const auto& job : concrete.jobs()) {
    if (job.needs_software_setup) ++flagged;
  }
  std::fprintf(stderr,
               "\nplanned for site '%s': %zu jobs (%zu compute, %zu stage-in, "
               "%zu stage-out, %zu setup), %zu tasks carry a download/install "
               "step%s\n",
               platform.c_str(), concrete.jobs().size(),
               concrete.count(wms::JobKind::kCompute),
               concrete.count(wms::JobKind::kStageIn),
               concrete.count(wms::JobKind::kStageOut),
               concrete.count(wms::JobKind::kSetup), flagged,
               platform == "osg" ? " (the Fig. 3 red rectangles)" : "");
  return 0;
}
