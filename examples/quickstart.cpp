// Quickstart: the full blast2cap3 workflow, end to end, on real data.
//
// Generates a small synthetic transcriptome (the stand-in for the paper's
// wheat dataset), aligns it with the built-in BLASTX-style search, then
// runs the Pegasus-style blast2cap3 workflow for real on a thread pool —
// the same DAG the paper deployed on Sandhills, at laptop scale.
//
//   ./quickstart [n_chunks] [seed]
#include <cstdio>
#include <filesystem>
#include <string>

#include "align/blastx.hpp"
#include "align/tabular.hpp"
#include "bio/fasta.hpp"
#include "bio/transcriptome.hpp"
#include "common/fsutil.hpp"
#include "common/strings.hpp"
#include "core/local_run.hpp"

int main(int argc, char** argv) {
  using namespace pga;
  const std::size_t n = argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 4;
  const std::uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 7;

  std::printf("== blast2cap3 quickstart (n=%zu chunks) ==\n\n", n);

  // 1. Synthetic transcriptome: redundant transcript fragments + a
  //    related-organism protein database, with ground truth.
  bio::TranscriptomeParams params;
  params.families = 8;
  params.protein_min = 100;
  params.protein_max = 200;
  params.fragment_min_frac = 0.6;
  params.seed = seed;
  const auto txm = bio::generate_transcriptome(params);
  std::printf("generated %zu transcripts from %zu genes (%zu protein families)\n",
              txm.transcripts.size(), txm.genes.size(), txm.proteins.size());

  common::ScratchDir dir("quickstart");
  const auto transcripts = dir.file("transcripts.fasta");
  const auto alignments = dir.file("alignments.out");
  bio::write_fasta_file(transcripts, txm.transcripts);

  // 2. BLASTX-style alignment against the protein database.
  const align::BlastxSearch search(txm.proteins);
  const auto hits = search.search_all(txm.transcripts);
  align::write_tabular_file(alignments, hits);
  std::printf("BLASTX: %zu tabular hits written to alignments.out\n\n", hits.size());

  // 3. The Pegasus-style workflow, executed for real on a thread pool.
  core::LocalRunConfig config;
  config.workspace = dir.path() / "workspace";
  std::filesystem::create_directories(config.workspace);
  config.n = n;
  config.slots = 4;
  const auto result = core::run_blast2cap3_locally(transcripts, alignments, config);

  std::printf("%s\n", result.stats.render("workflow statistics (real run)").c_str());

  const auto assembly = bio::read_fasta_file(result.output);
  std::printf("\nassembly.fasta: %zu records (down from %zu transcripts, %.1f%% reduction)\n",
              assembly.size(), txm.transcripts.size(),
              100.0 * (1.0 - static_cast<double>(assembly.size()) /
                                 static_cast<double>(txm.transcripts.size())));
  std::printf("workflow %s\n", result.report.success ? "succeeded" : "FAILED");
  return result.report.success ? 0 : 1;
}
