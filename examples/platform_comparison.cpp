// Simulated platform comparison at paper scale: Sandhills vs. OSG (and,
// with --cloud, the §VII future-work cloud profile) for a chosen n.
//
//   ./platform_comparison [--cloud] [n] [repetitions]
#include <cstdio>
#include <cstring>
#include <string>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace pga;
  bool include_cloud = false;
  std::size_t n = 300;
  std::size_t repetitions = 3;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cloud") == 0) {
      include_cloud = true;
    } else if (positional == 0) {
      n = std::stoul(argv[i]);
      ++positional;
    } else {
      repetitions = std::stoul(argv[i]);
      ++positional;
    }
  }

  core::ExperimentConfig config;
  config.n_values = {n};
  config.repetitions = repetitions;
  config.include_cloud = include_cloud;

  std::printf("== simulated blast2cap3 at paper scale: n=%zu, %zu repetition(s) ==\n\n",
              n, repetitions);
  const auto results = core::run_platform_sweep(config);
  std::printf("serial baseline: %s (%.0f s)\n\n",
              common::format_duration(results.serial_seconds).c_str(),
              results.serial_seconds);

  common::Table table({"platform", "wall (s)", "wall", "kickstart (s)",
                       "waiting (s)", "install (s)", "retries"});
  for (const auto& point : results.points) {
    table.add_row({point.platform, common::format_fixed(point.mean_wall(), 0),
                   common::format_duration(point.mean_wall()),
                   common::format_fixed(point.stats.cumulative_kickstart(), 0),
                   common::format_fixed(point.stats.cumulative_waiting(), 0),
                   common::format_fixed(point.stats.cumulative_install(), 0),
                   std::to_string(point.stats.retries())});
  }
  std::printf("%s\n", table.render().c_str());

  for (const auto& point : results.points) {
    const double reduction =
        100.0 * (1.0 - point.mean_wall() / results.serial_seconds);
    std::printf("%s: %.1f%% faster than serial\n", point.platform.c_str(), reduction);
  }
  return 0;
}
