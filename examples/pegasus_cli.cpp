// A pegasus-style command-line front end for the blast2cap3 workflow,
// wiring together the whole tool suite the paper's §III describes:
// pegasus-plan, pegasus-run, pegasus-status, pegasus-statistics,
// pegasus-analyzer and pegasus-plots equivalents.
//
//   pegasus_cli generate  <dir> [seed]      make synthetic paper-shaped inputs
//   pegasus_cli plan      <n> <site> [out.dax]   plan and describe a workflow
//   pegasus_cli run       <dir> <n>         really execute (thread pool) with
//                                           live status, then statistics,
//                                           timeline and a trace CSV
//   pegasus_cli simulate  <site> <n>        paper-scale simulated run
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "align/blastx.hpp"
#include "align/tabular.hpp"
#include "bio/fasta.hpp"
#include "bio/transcriptome.hpp"
#include "common/fsutil.hpp"
#include "core/experiment.hpp"
#include "core/local_run.hpp"
#include "wms/analyzer.hpp"
#include "wms/dax_xml.hpp"
#include "wms/kickstart.hpp"

namespace {

namespace fs = std::filesystem;
using namespace pga;

int cmd_generate(const fs::path& dir, std::uint64_t seed) {
  fs::create_directories(dir);
  bio::TranscriptomeParams params;
  params.families = 10;
  params.protein_min = 100;
  params.protein_max = 200;
  params.fragment_min_frac = 0.6;
  params.seed = seed;
  const auto txm = bio::generate_transcriptome(params);
  bio::write_fasta_file(dir / "transcripts.fasta", txm.transcripts);
  bio::write_fasta_file(dir / "proteins.fasta", txm.proteins);
  const align::BlastxSearch search(txm.proteins);
  const auto hits = search.search_all(txm.transcripts);
  align::write_tabular_file(dir / "alignments.out", hits);
  std::printf("wrote %zu transcripts, %zu proteins, %zu hits under %s\n",
              txm.transcripts.size(), txm.proteins.size(), hits.size(),
              dir.string().c_str());
  return 0;
}

int cmd_plan(std::size_t n, const std::string& site, const std::string& out) {
  const core::B2c3WorkflowSpec spec{.n = n};
  const core::WorkloadModel workload;
  const auto dax = core::build_blast2cap3_dax(spec, &workload);
  if (!out.empty()) {
    wms::write_dax_file(out, dax);
    std::printf("abstract workflow -> %s (%zu jobs, %zu edges)\n", out.c_str(),
                dax.jobs().size(), dax.edge_count());
  }
  const auto concrete = core::plan_for_site(dax, site, spec);
  std::printf("planned '%s' for site '%s':\n", concrete.name().c_str(),
              site.c_str());
  std::printf("  jobs        : %zu (%zu compute, %zu transfer)\n",
              concrete.jobs().size(), concrete.count(wms::JobKind::kCompute),
              concrete.count(wms::JobKind::kStageIn) +
                  concrete.count(wms::JobKind::kStageOut));
  std::size_t setup = 0;
  std::uint64_t staged = 0;
  for (const auto& job : concrete.jobs()) {
    if (job.needs_software_setup) ++setup;
    staged += job.staged_bytes;
  }
  std::printf("  setup steps : %zu tasks download/install software\n", setup);
  std::printf("  staged data : %.1f MB\n", static_cast<double>(staged) / 1e6);
  return 0;
}

int cmd_run(const fs::path& dir, std::size_t n) {
  core::LocalRunConfig config;
  config.workspace = dir / "workspace";
  fs::create_directories(config.workspace);
  config.n = n;
  config.slots = 4;

  // Live pegasus-status monitoring from a side thread.
  wms::StatusBoard board;
  config.status = &board;
  std::atomic<bool> done{false};
  std::thread monitor([&] {
    while (!done.load()) {
      std::printf("\rpegasus-status: %s   ", board.snapshot().render().c_str());
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });
  const auto result = core::run_blast2cap3_locally(dir / "transcripts.fasta",
                                                   dir / "alignments.out", config);
  done.store(true);
  monitor.join();
  std::printf("\rpegasus-status: %s\n\n", board.snapshot().render().c_str());

  std::printf("%s\n", result.stats.render("pegasus-statistics").c_str());
  std::printf("\n%s\n",
              wms::render_timeline(result.report, {.width = 64}).c_str());
  const auto csv = dir / "trace.csv";
  common::write_file(csv, wms::attempts_csv(result.report));
  std::printf("trace -> %s\n", csv.string().c_str());
  std::printf("assembly -> %s\n", result.output.string().c_str());
  return result.report.success ? 0 : 1;
}

int cmd_simulate(const std::string& site, std::size_t n) {
  core::ExperimentConfig config;
  config.n_values = {n};
  config.include_cloud = site == "cloud";
  const auto point = core::run_sim_point(config, site, n);
  std::printf("%s\n",
              point.stats
                  .render("simulated " + site + " at paper scale, n=" +
                          std::to_string(n))
                  .c_str());
  if (point.preemptions > 0) {
    std::printf("preemptions observed: %zu\n", point.preemptions);
  }
  return 0;
}

int cmd_analyze(const fs::path& dir) {
  const fs::path records_dir = dir / "workspace" / "kickstart";
  if (!fs::exists(records_dir)) {
    std::fprintf(stderr, "no kickstart records under %s (run `pegasus_cli run` first)\n",
                 records_dir.string().c_str());
    return 1;
  }
  const auto records = wms::read_invocation_records(records_dir);
  const auto report = wms::report_from_records(records, dir.filename().string());
  const auto stats = wms::WorkflowStatistics::from_run(report);
  std::printf("%zu invocation records -> %zu jobs\n\n", records.size(),
              report.jobs_total);
  std::printf("%s\n", stats.render("pegasus-statistics (from provenance)").c_str());
  std::printf("\n%s\n", wms::render_timeline(report, {.width = 64}).c_str());
  return 0;
}

void usage() {
  std::printf("usage:\n"
              "  pegasus_cli generate <dir> [seed]\n"
              "  pegasus_cli plan <n> <sandhills|osg> [out.dax]\n"
              "  pegasus_cli run <dir> <n>\n"
              "  pegasus_cli simulate <sandhills|osg|cloud> <n>\n"
              "  pegasus_cli analyze <dir>\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate" && argc >= 3) {
      return cmd_generate(argv[2], argc > 3 ? std::stoull(argv[3]) : 7);
    }
    if (cmd == "plan" && argc >= 4) {
      return cmd_plan(std::stoul(argv[2]), argv[3], argc > 4 ? argv[4] : "");
    }
    if (cmd == "run" && argc >= 4) {
      return cmd_run(argv[2], std::stoul(argv[3]));
    }
    if (cmd == "simulate" && argc >= 4) {
      return cmd_simulate(argv[2], std::stoul(argv[3]));
    }
    if (cmd == "analyze" && argc >= 3) {
      return cmd_analyze(argv[2]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
