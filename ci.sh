#!/usr/bin/env bash
# Tier-1 CI: configure, build and run the test suite twice —
#   1. default (Release-ish) build in build/
#   2. ThreadSanitizer build (-DPGA_SANITIZE=thread) in build-tsan/,
#      catching data races in LocalService / htc::LocalExecutor and the
#      chaos suite's concurrent paths.
# Usage: ./ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")"

jobs="${1:-$(nproc)}"

run_suite() {
  local dir="$1"; shift
  echo "==> configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@"
  echo "==> build ${dir}"
  cmake --build "${dir}" -j "${jobs}"
  echo "==> ctest ${dir}"
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_suite build
run_suite build-tsan -DPGA_SANITIZE=thread

echo "==> CI OK (default + tsan)"
