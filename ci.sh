#!/usr/bin/env bash
# Tier-1 CI: configure, build and run the tier-1 suite three times —
#   1. default (Release-ish) build in build/
#   2. ASan+UBSan build (-DPGA_SANITIZE=address) in build-asan/, catching
#      lifetime bugs in the event-observer wiring (borrowed EngineObserver
#      pointers, the kAttemptFinished result pointer that is only valid
#      during the callback) and UB anywhere in the suite.
#   3. ThreadSanitizer build (-DPGA_SANITIZE=thread) in build-tsan/,
#      catching data races in LocalService / htc::LocalExecutor and the
#      chaos suite's concurrent paths.
# Every test carries a tier1* ctest label; the chaos suite additionally
# matches -L chaos (see tests/CMakeLists.txt).
# Usage: ./ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")"

jobs="${1:-$(nproc)}"

run_suite() {
  local dir="$1"; shift
  echo "==> configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@"
  echo "==> build ${dir}"
  cmake --build "${dir}" -j "${jobs}"
  echo "==> ctest ${dir} (-L tier1)"
  # Explicit per-test timeout: a wedged simulation (staging deadlock, hung
  # chaos run) fails the leg instead of stalling CI forever.
  ctest --test-dir "${dir}" -L tier1 --timeout 300 --output-on-failure -j "${jobs}"
}

run_suite build
run_suite build-asan -DPGA_SANITIZE=address
run_suite build-tsan -DPGA_SANITIZE=thread

# Perf smoke: run the scale benchmark at n=10^4 in the default (Release)
# build. --smoke asserts four machine-independent guards: the streamed
# builder's closed-form job/edge counts (jobs = n+8, edges = 4n+7 with
# the 4n regular edges pattern-compressed), an event-count envelope
# (exactly one READY / SUBMIT / ATTEMPT_FINISHED / SUCCEEDED per job on
# a clean run, plus the run bracket), a 512 MB peak-RSS memory envelope
# (catches any reintroduced O(n) blowup: materialized regular edges,
# per-job report rosters), and a patterns-vs-explicit double run whose
# lean jobstate digests must match byte-for-byte. A complexity or memory
# regression fails deterministically without depending on machine speed.
# BENCH_scale.json in the repo root is the committed full-sweep
# trajectory baseline (n up to 10^7); regenerate it with
# `build/bench/scale_dag` when the layout changes.
echo "==> perf smoke (scale_dag --smoke, n=10^4)"
cmake --build build -j "${jobs}" --target scale_dag
build/bench/scale_dag --smoke --out build/BENCH_scale_smoke.json

# Align perf smoke: machine-independent guards on the science kernels —
# banded DP cell counts match the closed-form in-band envelope (so a band
# or layout regression that reintroduces quadratic work fails), score-only
# and traceback kernels agree, the AVX2 and scalar kernels are
# byte-equivalent, and the parallel overlap phase is bit-identical to
# serial. Runs twice — dispatch forced scalar, then auto (AVX2 where the
# CPU has it) — so both code paths stay green on every CI run.
# BENCH_align.json in the repo root is the committed full benchmark;
# regenerate with `build/bench/align_e2e`.
echo "==> perf smoke (align_e2e --smoke, forced-scalar + auto dispatch)"
cmake --build build -j "${jobs}" --target align_e2e
PGA_SW_DISPATCH=scalar build/bench/align_e2e --smoke \
  --out build/BENCH_align_smoke_scalar.json
build/bench/align_e2e --smoke --out build/BENCH_align_smoke.json

# Shape perf smoke: the workload generator's whole taxonomy through
# planner + engine on the campus backend. Machine-independent guards:
# planned job counts equal the closed forms + 2 stage jobs, engine event
# counts stay in the per-job envelope, all four policies complete identical
# job sets, and critical-path still beats FIFO on the adversarial
# chain-heavy shape. BENCH_shapes.json in the repo root is the committed
# full two-platform sweep; regenerate with `build/bench/shape_ablation`.
echo "==> perf smoke (shape_ablation --smoke)"
cmake --build build -j "${jobs}" --target shape_ablation
build/bench/shape_ablation --smoke --out build/BENCH_shapes_smoke.json

# WaaS perf smoke: a 200-workflow burst through the multi-tenant fleet
# controller, both platforms on one clock. Machine-independent guards:
# every workflow completes with the closed-form job count, two runs are
# byte-identical (fleet digest + event count), and the event count stays
# in a deterministic envelope. BENCH_waas.json in the repo root is the
# committed full sweep (bursts up to 10^4 workflows / ~1.3M jobs);
# regenerate with `build/bench/waas_bench`.
echo "==> perf smoke (waas_bench --smoke)"
cmake --build build -j "${jobs}" --target waas_bench
build/bench/waas_bench --smoke --out build/BENCH_waas_smoke.json

# Trigger perf smoke: the event-triggered pipeline + sharded replica
# catalog. Machine-independent guards: the sharded catalog answers every
# membership / replica-order / best_for_site / entries()-order question
# exactly like a reference std::map, the triggered pipeline completes the
# closed-form workflow count with double-run byte identity, and the
# data-locality-vs-FIFO stage-in byte counts hit their closed forms on the
# LRU-bounded element. BENCH_trigger.json in the repo root is the
# committed full run (1e6-replica catalog race asserting the >= 5x lookup
# claim); regenerate with `build/bench/trigger_bench`.
echo "==> perf smoke (trigger_bench --smoke)"
cmake --build build -j "${jobs}" --target trigger_bench
build/bench/trigger_bench --smoke --out build/BENCH_trigger_smoke.json

echo "==> CI OK (default + asan/ubsan + tsan + perf smokes)"
